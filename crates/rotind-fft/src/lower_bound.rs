//! The Fourier-magnitude lower bound for rotation-invariant Euclidean
//! distance (Section 4.2 of the paper, citing \[4\] and \[38\]).
//!
//! With the Parseval-normalised spectrum, a circular shift of `C` only
//! rotates the phase of each coefficient, so for every shift `s`:
//!
//! ```text
//! ED²(Q, rot_s(C)) = Σ_k |Q_k − C_k·e^{iθ_k s}|² ≥ Σ_k (|Q_k| − |C_k|)²
//! ```
//!
//! by the reverse triangle inequality per bin. The right-hand side is a
//! plain Euclidean distance between magnitude vectors — a true metric —
//! which makes it usable both as a scan-time filter (the `FFT` baseline
//! of Figures 19/21/22) and as the vantage-point-tree metric of the disk
//! index (Figure 24). Truncating to the first `D` bins drops non-negative
//! terms, so every prefix is still admissible.

use crate::spectrum::magnitudes;
use rotind_ts::StepCounter;

/// Euclidean distance between two (possibly truncated) magnitude vectors;
/// an admissible lower bound to the rotation-invariant Euclidean distance
/// between the underlying series. One step is charged per coefficient.
pub fn magnitude_distance(qm: &[f64], cm: &[f64], counter: &mut StepCounter) -> f64 {
    let d = qm.len().min(cm.len());
    let mut acc = 0.0;
    for k in 0..d {
        let diff = qm[k] - cm[k];
        acc += diff * diff;
        counter.tick();
    }
    acc.sqrt()
}

/// The paper's cost model for one FFT-lower-bound test: `n·log₂(n)` steps
/// (Section 5.3: *"The cost model for the FFT lower bound is nlogn
/// steps"*). Charged by the `FFT` baseline per database item.
pub fn fft_cost_model(n: usize) -> u64 {
    if n <= 1 {
        return 1;
    }
    (n as f64 * (n as f64).log2()).ceil() as u64
}

/// Convenience: the full-spectrum Fourier lower bound between two raw
/// series. Computes both spectra (charging the cost model for each) and
/// returns the magnitude distance.
pub fn fourier_lower_bound(q: &[f64], c: &[f64], counter: &mut StepCounter) -> f64 {
    assert_eq!(q.len(), c.len(), "fourier_lower_bound: length mismatch");
    counter.add(2 * fft_cost_model(q.len()));
    let qm = magnitudes(q);
    let cm = magnitudes(c);
    let mut scratch = StepCounter::new();
    let lb = magnitude_distance(&qm, &cm, &mut scratch);
    // Debug-only soundness check: the bound claims to be below
    // ED(Q, rot_s(C)) for *every* shift s, so in particular the shift-0
    // Euclidean distance — computable right here — must dominate it.
    debug_assert!(
        {
            let ed0 = q
                .iter()
                .zip(c)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            !(lb.is_finite() && ed0.is_finite()) || lb <= ed0 + 1e-6
        },
        "unsound Fourier bound: lb {lb} exceeds the shift-0 distance"
    );
    lb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrum::magnitude_features;
    use rotind_ts::rotate::rotated;

    fn euclidean(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    fn min_rotation_ed(q: &[f64], c: &[f64]) -> f64 {
        (0..c.len())
            .map(|s| euclidean(q, &rotated(c, s)))
            .fold(f64::INFINITY, f64::min)
    }

    fn signal(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|j| (j as f64 * 0.53 + phase).sin() + 0.25 * (j as f64 * 0.19 + phase).cos())
            .collect()
    }

    #[test]
    fn lower_bounds_min_rotation_distance() {
        for n in [8usize, 31, 64, 251] {
            let q = signal(n, 0.2);
            let c = signal(n, 1.9);
            let lb = fourier_lower_bound(&q, &c, &mut StepCounter::new());
            let exact = min_rotation_ed(&q, &c);
            assert!(lb <= exact + 1e-7, "n = {n}: lb {lb} exceeds exact {exact}");
        }
    }

    #[test]
    fn truncated_features_still_lower_bound() {
        let n = 64;
        let q = signal(n, 0.0);
        let c = signal(n, 2.4);
        let exact = min_rotation_ed(&q, &c);
        let mut last = 0.0;
        for d in [1usize, 2, 4, 8, 16, 32, 64] {
            let qm = magnitude_features(&q, d);
            let cm = magnitude_features(&c, d);
            let lb = magnitude_distance(&qm, &cm, &mut StepCounter::new());
            assert!(lb <= exact + 1e-7, "d = {d}");
            assert!(lb + 1e-9 >= last, "prefix bound is monotone in d");
            last = lb;
        }
    }

    #[test]
    fn zero_for_pure_rotations() {
        let c = signal(40, 0.0);
        let q = rotated(&c, 13);
        let lb = fourier_lower_bound(&q, &c, &mut StepCounter::new());
        assert!(lb < 1e-9, "rotations share magnitudes exactly");
    }

    #[test]
    fn magnitude_distance_is_a_metric_sample() {
        // Triangle inequality spot check on feature vectors.
        let a = magnitude_features(&signal(32, 0.1), 8);
        let b = magnitude_features(&signal(32, 1.1), 8);
        let c = magnitude_features(&signal(32, 2.1), 8);
        let mut s = StepCounter::new();
        let ab = magnitude_distance(&a, &b, &mut s);
        let bc = magnitude_distance(&b, &c, &mut s);
        let ac = magnitude_distance(&a, &c, &mut s);
        assert!(ac <= ab + bc + 1e-12);
    }

    #[test]
    fn cost_model() {
        assert_eq!(fft_cost_model(1), 1);
        assert_eq!(fft_cost_model(1024), 10 * 1024);
        assert!(fft_cost_model(251) >= 251 * 7);
    }

    #[test]
    fn step_accounting() {
        let mut s = StepCounter::new();
        magnitude_distance(&[1.0, 2.0, 3.0], &[1.0, 1.0, 1.0], &mut s);
        assert_eq!(s.steps(), 3);
        let mut s2 = StepCounter::new();
        fourier_lower_bound(&signal(64, 0.0), &signal(64, 1.0), &mut s2);
        assert_eq!(s2.steps(), 2 * fft_cost_model(64));
    }
}
