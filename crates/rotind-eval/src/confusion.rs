//! Confusion-matrix reporting for the classification experiments.
//!
//! Table 8 reports only error rates; when a synthetic stand-in dataset
//! behaves unexpectedly, the confusion matrix shows *which* classes
//! collide — the diagnostic used while calibrating the generators (see
//! `EXPERIMENTS.md`).

use crate::report::Table;
use rotind_distance::measure::Measure;
use rotind_index::engine::{Invariance, RotationQuery};
use rotind_shape::Dataset;

/// A square confusion matrix: `counts[true][predicted]`.
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
    class_names: Vec<String>,
}

impl ConfusionMatrix {
    /// Leave-one-out 1-NN confusion matrix of `dataset` under `measure`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid dataset or fewer than two items.
    pub fn one_nn(dataset: &Dataset, measure: Measure) -> Self {
        assert!(dataset.validate(), "invalid dataset {}", dataset.name);
        assert!(dataset.len() >= 2, "need at least two items");
        let k = dataset.num_classes();
        let mut counts = vec![vec![0usize; k]; k];
        for i in 0..dataset.len() {
            let engine =
                RotationQuery::with_measure(&dataset.items[i], Invariance::Rotation, measure)
                    .expect("valid series");
            let hits = engine
                .k_nearest(&dataset.items, 2)
                .expect("non-empty database");
            let neighbor = hits
                .iter()
                .find(|h| h.index != i)
                .expect("a non-self neighbour exists");
            counts[dataset.labels[i]][dataset.labels[neighbor.index]] += 1;
        }
        ConfusionMatrix {
            counts,
            class_names: dataset.class_names.clone(),
        }
    }

    /// `counts[true][predicted]`.
    pub fn counts(&self) -> &[Vec<usize>] {
        &self.counts
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// Total items classified.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall error rate (off-diagonal fraction).
    pub fn error_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.num_classes()).map(|c| self.counts[c][c]).sum();
        1.0 - correct as f64 / total as f64
    }

    /// Per-class recall (diagonal over row sum); `None` for empty classes.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: usize = self.counts[class].iter().sum();
        (row > 0).then(|| self.counts[class][class] as f64 / row as f64)
    }

    /// The most confused class pairs `(true, predicted, count)`,
    /// descending, excluding the diagonal.
    pub fn top_confusions(&self, limit: usize) -> Vec<(usize, usize, usize)> {
        let mut pairs: Vec<(usize, usize, usize)> = Vec::new();
        for t in 0..self.num_classes() {
            for p in 0..self.num_classes() {
                if t != p && self.counts[t][p] > 0 {
                    pairs.push((t, p, self.counts[t][p]));
                }
            }
        }
        pairs.sort_by_key(|p| std::cmp::Reverse(p.2));
        pairs.truncate(limit);
        pairs
    }

    /// Render per-class recall and the top confusions as a table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(["class", "recall", "most confused with"]);
        for c in 0..self.num_classes() {
            let worst = (0..self.num_classes())
                .filter(|&p| p != c)
                .max_by_key(|&p| self.counts[c][p])
                .filter(|&p| self.counts[c][p] > 0);
            table.push_row([
                self.class_names[c].clone(),
                self.recall(c)
                    .map_or("-".to_string(), |r| format!("{:.1}%", 100.0 * r)),
                worst.map_or("-".to_string(), |p| {
                    format!("{} ({})", self.class_names[p], self.counts[c][p])
                }),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rotind_ts::rotate::rotated;

    fn two_class_dataset(m: usize, n: usize, separable: bool) -> Dataset {
        let mut rng = StdRng::seed_from_u64(9);
        let mut items = Vec::new();
        let mut labels = Vec::new();
        for i in 0..m {
            let label = i % 2;
            let freq = if label == 0 || !separable { 1.0 } else { 3.0 };
            let base: Vec<f64> = (0..n)
                .map(|j| (freq * std::f64::consts::TAU * j as f64 / n as f64).sin())
                .collect();
            let noisy: Vec<f64> = base
                .iter()
                .map(|v| v + 0.01 * rng.random_range(-1.0..1.0))
                .collect();
            items.push(rotated(&noisy, rng.random_range(0..n)));
            labels.push(label);
        }
        Dataset {
            name: "two-class".to_string(),
            items,
            labels,
            class_names: vec!["a".into(), "b".into()],
        }
    }

    #[test]
    fn perfect_separation_is_diagonal() {
        let ds = two_class_dataset(16, 32, true);
        let cm = ConfusionMatrix::one_nn(&ds, Measure::Euclidean);
        assert_eq!(cm.error_rate(), 0.0);
        assert_eq!(cm.total(), 16);
        assert_eq!(cm.recall(0), Some(1.0));
        assert_eq!(cm.recall(1), Some(1.0));
        assert!(cm.top_confusions(5).is_empty());
    }

    #[test]
    fn identical_classes_confuse_heavily() {
        let ds = two_class_dataset(16, 32, false);
        let cm = ConfusionMatrix::one_nn(&ds, Measure::Euclidean);
        assert!(cm.error_rate() > 0.2, "error {}", cm.error_rate());
        assert!(!cm.top_confusions(5).is_empty());
    }

    #[test]
    fn agrees_with_one_nn_error() {
        let ds = two_class_dataset(20, 24, true);
        let cm = ConfusionMatrix::one_nn(&ds, Measure::Euclidean);
        let r = crate::onenn::one_nn_error(&ds, Measure::Euclidean);
        assert!((cm.error_rate() - r.error_rate()).abs() < 1e-12);
    }

    #[test]
    fn table_renders() {
        let ds = two_class_dataset(12, 24, false);
        let text = ConfusionMatrix::one_nn(&ds, Measure::Euclidean)
            .to_table()
            .render();
        assert!(text.contains("class"));
        assert!(text.contains('a') && text.contains('b'));
    }
}
