//! Empirical complexity fitting (the paper's `O(n^{1.06})` claim).
//!
//! Section 1: *"we can take the O(n³) approach of \[1\] and on real world
//! problems bring the average complexity down to O(n^{1.06})"*. The
//! exponent is estimated by sweeping the series length `n`, measuring
//! the wedge method's average steps per item comparison, and fitting a
//! line in log-log space.

use rotind_ts::stats::linear_fit;

/// One point of a scaling sweep: series length and average steps per
/// comparison at that length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Series length `n`.
    pub n: usize,
    /// Average steps per item comparison.
    pub steps_per_comparison: f64,
}

/// Least-squares exponent `p` of `steps ≈ c·n^p` over the sweep points
/// (slope of log(steps) on log(n)).
///
/// # Panics
///
/// Panics with fewer than two points or non-positive measurements.
pub fn empirical_exponent(points: &[ScalingPoint]) -> f64 {
    assert!(points.len() >= 2, "need at least two points to fit");
    let xs: Vec<f64> = points
        .iter()
        .map(|p| {
            assert!(p.n > 0, "n must be positive");
            (p.n as f64).ln()
        })
        .collect();
    let ys: Vec<f64> = points
        .iter()
        .map(|p| {
            assert!(p.steps_per_comparison > 0.0, "steps must be positive");
            p.steps_per_comparison.ln()
        })
        .collect();
    linear_fit(&xs, &ys).0
}

/// Convenience: average steps per item comparison for one query scan
/// (total steps divided by the database size).
pub fn steps_per_comparison(total_steps: u64, database_size: usize) -> f64 {
    assert!(database_size > 0);
    total_steps as f64 / database_size as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(pairs: &[(usize, f64)]) -> Vec<ScalingPoint> {
        pairs
            .iter()
            .map(|&(n, s)| ScalingPoint {
                n,
                steps_per_comparison: s,
            })
            .collect()
    }

    #[test]
    fn exact_power_laws() {
        // steps = n² → exponent 2.
        let quad = pts(&[(16, 256.0), (32, 1024.0), (64, 4096.0)]);
        assert!((empirical_exponent(&quad) - 2.0).abs() < 1e-9);
        // steps = 7·n → exponent 1.
        let lin = pts(&[(16, 112.0), (32, 224.0), (128, 896.0)]);
        assert!((empirical_exponent(&lin) - 1.0).abs() < 1e-9);
        // Constant → exponent 0.
        let flat = pts(&[(16, 50.0), (64, 50.0), (256, 50.0)]);
        assert!(empirical_exponent(&flat).abs() < 1e-9);
    }

    #[test]
    fn noisy_power_law_recovers_exponent() {
        let noisy = pts(&[
            (64, 64f64.powf(1.06) * 1.05),
            (128, 128f64.powf(1.06) * 0.97),
            (256, 256f64.powf(1.06) * 1.02),
            (512, 512f64.powf(1.06) * 0.99),
        ]);
        let p = empirical_exponent(&noisy);
        assert!((p - 1.06).abs() < 0.05, "fit {p}");
    }

    #[test]
    fn steps_per_comparison_division() {
        assert_eq!(steps_per_comparison(1000, 10), 100.0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_panics() {
        empirical_exponent(&pts(&[(16, 1.0)]));
    }
}
