//! Leave-one-out 1-NN classification (Table 8).
//!
//! The paper measures *"the error rate of one-nearest neighbor
//! classification as measured using leaving-one-out evaluation"*, with
//! rotation-invariant distances. Every query uses the wedge engine —
//! the exactness property tests guarantee this equals the brute-force
//! classifier, and it is what makes 500+-item LOO sweeps affordable.

use rotind_distance::measure::Measure;
use rotind_index::engine::{Invariance, RotationQuery};
use rotind_shape::Dataset;

/// Outcome of a leave-one-out classification run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassificationResult {
    /// Correctly classified items.
    pub correct: usize,
    /// Total items evaluated.
    pub total: usize,
}

impl ClassificationResult {
    /// Error rate in `[0, 1]`.
    pub fn error_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            1.0 - self.correct as f64 / self.total as f64
        }
    }

    /// Accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        1.0 - self.error_rate()
    }
}

/// Leave-one-out 1-NN error of `dataset` under `measure` with full
/// rotation invariance.
///
/// # Panics
///
/// Panics on an invalid dataset (mismatched lengths/labels).
pub fn one_nn_error(dataset: &Dataset, measure: Measure) -> ClassificationResult {
    assert!(dataset.validate(), "invalid dataset {}", dataset.name);
    let mut correct = 0usize;
    for i in 0..dataset.len() {
        let engine = RotationQuery::with_measure(&dataset.items[i], Invariance::Rotation, measure)
            .expect("dataset series are valid");
        // k = 2: the item itself is its own 0-distance neighbour; take the
        // best hit that is not the query (ties broken by database order,
        // matching a brute-force scan that skips index i).
        let hits = engine
            .k_nearest(&dataset.items, 2)
            .expect("non-empty database");
        let neighbor = hits
            .iter()
            .find(|h| h.index != i)
            .expect("k = 2 over a database of >= 2 items yields a non-self hit");
        if dataset.labels[neighbor.index] == dataset.labels[i] {
            correct += 1;
        }
    }
    ClassificationResult {
        correct,
        total: dataset.len(),
    }
}

/// Table 8's DTW protocol: the band `R` is *"learned by looking only at
/// the training data"*. Evaluate each candidate band on a stratified
/// subsample (the training surrogate) and return the best band with its
/// full-dataset error.
pub fn one_nn_error_dtw_learned_band(
    dataset: &Dataset,
    candidate_bands: &[usize],
    train_fraction: f64,
    seed: u64,
) -> (usize, ClassificationResult) {
    assert!(!candidate_bands.is_empty(), "no candidate bands");
    let train_size = ((dataset.len() as f64 * train_fraction).round() as usize)
        .clamp(2.min(dataset.len()), dataset.len());
    let train = dataset.subsample(train_size, seed);
    let mut best_band = candidate_bands[0];
    let mut best_err = f64::INFINITY;
    for &band in candidate_bands {
        let r = one_nn_error(&train, Measure::Dtw(rotind_distance::DtwParams::new(band)));
        if r.error_rate() < best_err {
            best_err = r.error_rate();
            best_band = band;
        }
    }
    let full = one_nn_error(
        dataset,
        Measure::Dtw(rotind_distance::DtwParams::new(best_band)),
    );
    (best_band, full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rotind_ts::rotate::rotated;

    /// Two clean sinusoid classes under random rotations: trivially
    /// separable, so LOO error must be 0.
    fn easy_dataset(m: usize, n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(3);
        let mut items = Vec::new();
        let mut labels = Vec::new();
        for i in 0..m {
            let label = i % 2;
            let freq = if label == 0 { 1.0 } else { 3.0 };
            let base: Vec<f64> = (0..n)
                .map(|j| (freq * std::f64::consts::TAU * j as f64 / n as f64).sin())
                .collect();
            let shift = rng.random_range(0..n);
            items.push(rotated(&base, shift));
            labels.push(label);
        }
        Dataset {
            name: "easy".to_string(),
            items,
            labels,
            class_names: vec!["sine-1".into(), "sine-3".into()],
        }
    }

    #[test]
    fn perfect_on_separable_classes() {
        let ds = easy_dataset(20, 32);
        let r = one_nn_error(&ds, Measure::Euclidean);
        assert_eq!(r.correct, 20);
        assert_eq!(r.error_rate(), 0.0);
        assert_eq!(r.accuracy(), 1.0);
    }

    #[test]
    fn rotation_invariance_is_essential() {
        // Same data WITHOUT rotation invariance (plain ED 1-NN) errs:
        // verify by brute-force plain 1-NN for contrast.
        let ds = easy_dataset(20, 32);
        let mut plain_correct = 0;
        for i in 0..ds.len() {
            let mut best = (f64::INFINITY, 0usize);
            for j in 0..ds.len() {
                if j == i {
                    continue;
                }
                let d: f64 = ds.items[i]
                    .iter()
                    .zip(&ds.items[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if d < best.0 {
                    best = (d, j);
                }
            }
            if ds.labels[best.1] == ds.labels[i] {
                plain_correct += 1;
            }
        }
        // Plain matching still works here because sinusoid classes are
        // phase-families of themselves... unless the shift decorrelates
        // them. The key check: the invariant classifier is at least as
        // good.
        let invariant = one_nn_error(&ds, Measure::Euclidean);
        assert!(invariant.correct >= plain_correct);
    }

    #[test]
    fn dtw_matches_euclidean_on_clean_data() {
        let ds = easy_dataset(12, 24);
        let e = one_nn_error(&ds, Measure::Euclidean);
        let d = one_nn_error(&ds, Measure::Dtw(rotind_distance::DtwParams::new(2)));
        assert_eq!(e.error_rate(), 0.0);
        assert_eq!(d.error_rate(), 0.0);
    }

    #[test]
    fn learned_band_returns_candidate() {
        let ds = easy_dataset(16, 24);
        let (band, result) = one_nn_error_dtw_learned_band(&ds, &[1, 2, 3], 0.5, 7);
        assert!([1, 2, 3].contains(&band));
        assert_eq!(result.total, 16);
    }

    #[test]
    fn error_rate_degenerate() {
        let r = ClassificationResult {
            correct: 0,
            total: 0,
        };
        assert_eq!(r.error_rate(), 0.0);
    }
}
