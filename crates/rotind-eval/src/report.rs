//! Aligned-table and CSV emission for the figure binaries.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned text table with CSV export.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn push_row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        write_row(&mut out, &sep);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Render as CSV (naive quoting: fields containing commas or quotes
    /// are double-quoted).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let mut emit = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&self.headers);
        for row in &self.rows {
            emit(row);
        }
        out
    }

    /// Write the CSV to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

/// Format a ratio for figure output (4 significant decimals).
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.4}")
}

/// Format a percentage (2 decimals, `%` suffix).
pub fn fmt_percent(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["m", "wedge", "fft"]);
        t.push_row(["32", "0.91", "1.02"]);
        t.push_row(["16000", "0.0071", "0.11"]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("m"));
        assert!(lines[1].starts_with("-----"));
        assert!(lines[3].starts_with("16000"));
        // Column 2 aligned: "wedge" and values start at the same offset.
        let col = lines[0].find("wedge").unwrap();
        assert_eq!(lines[2].find("0.91").unwrap(), col);
    }

    #[test]
    fn csv_round_trip_fields() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("m,wedge,fft\n"));
        assert!(csv.contains("16000,0.0071,0.11\n"));
    }

    #[test]
    fn csv_quoting() {
        let mut t = Table::new(["a"]);
        t.push_row(["hello, \"world\""]);
        assert!(t.to_csv().contains("\"hello, \"\"world\"\"\""));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains("only"));
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("rotind-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sub/out.csv");
        sample().write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("wedge"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ratio(0.123456), "0.1235");
        assert_eq!(fmt_percent(0.0384), "3.84%");
    }
}
