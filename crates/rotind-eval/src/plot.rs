//! Dependency-free SVG line plots for the figure binaries.
//!
//! The paper's efficiency results are *figures* (log-scale series over
//! database size); this module renders the sweep tables as standalone
//! SVG files next to the CSVs, so `results/fig19.svg` is a directly
//! comparable artefact.

use std::fmt::Write as _;
use std::path::Path;

/// Canvas geometry (pixels).
const WIDTH: f64 = 680.0;
const HEIGHT: f64 = 440.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 160.0;
const MARGIN_T: f64 = 46.0;
const MARGIN_B: f64 = 52.0;

/// Series palette (colour-blind-safe-ish).
const PALETTE: [&str; 6] = [
    "#0072b2", "#d55e00", "#009e73", "#cc79a7", "#56b4e9", "#e69f00",
];

/// A simple multi-series line plot with optional log axes.
#[derive(Debug, Clone)]
pub struct LinePlot {
    /// Plot title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Log-scale the x axis.
    pub log_x: bool,
    /// Log-scale the y axis.
    pub log_y: bool,
    /// Named series of `(x, y)` points.
    pub series: Vec<(String, Vec<(f64, f64)>)>,
}

fn axis_transform(value: f64, lo: f64, hi: f64, log: bool, out_lo: f64, out_hi: f64) -> f64 {
    let (v, lo, hi) = if log {
        (
            value.max(1e-12).log10(),
            lo.max(1e-12).log10(),
            hi.max(1e-12).log10(),
        )
    } else {
        (value, lo, hi)
    };
    let t = if (hi - lo).abs() < 1e-12 {
        0.5
    } else {
        (v - lo) / (hi - lo)
    };
    out_lo + t * (out_hi - out_lo)
}

/// "Nice" tick positions covering `[lo, hi]` (log axes tick at powers of
/// ten; linear axes at 5 even divisions).
fn ticks(lo: f64, hi: f64, log: bool) -> Vec<f64> {
    if log {
        let lo10 = lo.max(1e-12).log10().floor() as i32;
        let hi10 = hi.max(1e-12).log10().ceil() as i32;
        (lo10..=hi10).map(|e| 10f64.powi(e)).collect()
    } else {
        (0..=5).map(|i| lo + (hi - lo) * i as f64 / 5.0).collect()
    }
}

fn fmt_tick(v: f64) -> String {
    // rotind-lint: allow(float-eq) exact-zero sentinel
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

impl LinePlot {
    /// Render the plot as a standalone SVG document.
    ///
    /// Returns `None` when there is nothing to draw (no series or no
    /// finite points).
    pub fn to_svg(&self) -> Option<String> {
        let points: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if points.is_empty() {
            return None;
        }
        let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &points {
            x_lo = x_lo.min(x);
            x_hi = x_hi.max(x);
            y_lo = y_lo.min(y);
            y_hi = y_hi.max(y);
        }
        if self.log_y {
            y_lo = y_lo.max(1e-9);
        }
        if self.log_x {
            x_lo = x_lo.max(1e-9);
        }

        let px = |x: f64| axis_transform(x, x_lo, x_hi, self.log_x, MARGIN_L, WIDTH - MARGIN_R);
        let py = |y: f64| axis_transform(y, y_lo, y_hi, self.log_y, HEIGHT - MARGIN_B, MARGIN_T);

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
        );
        svg.push_str(r#"<rect width="100%" height="100%" fill="white"/>"#);
        let _ = write!(
            svg,
            r#"<text x="{}" y="24" font-family="sans-serif" font-size="15" font-weight="bold">{}</text>"#,
            MARGIN_L,
            xml_escape(&self.title)
        );

        // Axes.
        let (x0, x1) = (MARGIN_L, WIDTH - MARGIN_R);
        let (y0, y1) = (HEIGHT - MARGIN_B, MARGIN_T);
        let _ = write!(
            svg,
            r#"<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/><line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="black"/>"#
        );
        for t in ticks(x_lo, x_hi, self.log_x) {
            if t < x_lo * 0.999 || t > x_hi * 1.001 {
                continue;
            }
            let x = px(t);
            let _ = write!(
                svg,
                r#"<line x1="{x}" y1="{y0}" x2="{x}" y2="{}" stroke="black"/><text x="{x}" y="{}" font-family="sans-serif" font-size="11" text-anchor="middle">{}</text>"#,
                y0 + 5.0,
                y0 + 18.0,
                fmt_tick(t)
            );
        }
        for t in ticks(y_lo, y_hi, self.log_y) {
            if t < y_lo * 0.999 || t > y_hi * 1.001 {
                continue;
            }
            let y = py(t);
            let _ = write!(
                svg,
                r##"<line x1="{}" y1="{y}" x2="{x0}" y2="{y}" stroke="black"/><line x1="{x0}" y1="{y}" x2="{x1}" y2="{y}" stroke="#dddddd"/><text x="{}" y="{}" font-family="sans-serif" font-size="11" text-anchor="end">{}</text>"##,
                x0 - 5.0,
                x0 - 8.0,
                y + 4.0,
                fmt_tick(t)
            );
        }
        // Axis labels.
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="12" text-anchor="middle">{}</text>"#,
            (x0 + x1) / 2.0,
            HEIGHT - 14.0,
            xml_escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="16" y="{}" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            (y0 + y1) / 2.0,
            (y0 + y1) / 2.0,
            xml_escape(&self.y_label)
        );

        // Series + legend.
        for (s, (name, pts)) in self.series.iter().enumerate() {
            let colour = PALETTE[s % PALETTE.len()];
            let path: Vec<String> = pts
                .iter()
                .filter(|(x, y)| x.is_finite() && y.is_finite())
                .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
                .collect();
            if path.len() > 1 {
                let _ = write!(
                    svg,
                    r#"<polyline points="{}" fill="none" stroke="{colour}" stroke-width="2"/>"#,
                    path.join(" ")
                );
            }
            for p in &path {
                let mut it = p.split(',');
                let (cx, cy) = (it.next().unwrap_or("0"), it.next().unwrap_or("0"));
                let _ = write!(
                    svg,
                    r#"<circle cx="{cx}" cy="{cy}" r="3" fill="{colour}"/>"#
                );
            }
            let ly = MARGIN_T + 16.0 * s as f64;
            let _ = write!(
                svg,
                r#"<rect x="{}" y="{}" width="12" height="12" fill="{colour}"/><text x="{}" y="{}" font-family="sans-serif" font-size="12">{}</text>"#,
                WIDTH - MARGIN_R + 12.0,
                ly - 10.0,
                WIDTH - MARGIN_R + 30.0,
                ly,
                xml_escape(name)
            );
        }
        svg.push_str("</svg>");
        Some(svg)
    }

    /// Write the SVG to `path` (creating parent directories); no-op when
    /// there is nothing to draw.
    pub fn write_svg(&self, path: impl AsRef<Path>) -> std::io::Result<bool> {
        match self.to_svg() {
            None => Ok(false),
            Some(svg) => {
                let path = path.as_ref();
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent)?;
                }
                std::fs::write(path, svg)?;
                Ok(true)
            }
        }
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Interpret a sweep-style [`Table`] (first column = numeric x, every
/// other column = one series of numeric y values) as a line plot. Rows
/// with non-numeric cells are skipped, so summary rows coexist with the
/// data. Returns `None` when fewer than two data rows parse.
pub fn line_plot_from_table(
    table_csv: &str,
    title: &str,
    log_x: bool,
    log_y: bool,
) -> Option<LinePlot> {
    let mut lines = table_csv.lines();
    let headers: Vec<&str> = lines.next()?.split(',').collect();
    if headers.len() < 2 {
        return None;
    }
    let mut series: Vec<(String, Vec<(f64, f64)>)> = headers[1..]
        .iter()
        .map(|h| (h.to_string(), Vec::new()))
        .collect();
    for line in lines {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != headers.len() {
            continue;
        }
        let Ok(x) = cells[0].trim().parse::<f64>() else {
            continue;
        };
        for (s, cell) in cells[1..].iter().enumerate() {
            // Cells like "0.0316" parse; "19.96% {1}" take the leading number.
            let token = cell.trim().split([' ', '%']).next().unwrap_or("");
            if let Ok(y) = token.parse::<f64>() {
                series[s].1.push((x, y));
            }
        }
    }
    series.retain(|(_, pts)| pts.len() >= 2);
    if series.is_empty() {
        return None;
    }
    Some(LinePlot {
        title: title.to_string(),
        x_label: headers[0].to_string(),
        y_label: "ratio".to_string(),
        log_x,
        log_y,
        series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plot() -> LinePlot {
        LinePlot {
            title: "fig19".into(),
            x_label: "m".into(),
            y_label: "steps ratio".into(),
            log_x: true,
            log_y: true,
            series: vec![
                (
                    "wedge".into(),
                    vec![(32.0, 0.19), (1000.0, 0.02), (16000.0, 0.012)],
                ),
                (
                    "fft".into(),
                    vec![(32.0, 0.05), (1000.0, 0.034), (16000.0, 0.032)],
                ),
            ],
        }
    }

    #[test]
    fn svg_structure() {
        let svg = sample_plot().to_svg().expect("drawable");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("wedge") && svg.contains("fft"));
        assert!(svg.contains("fig19"));
        // 6 data points → 6 circles.
        assert_eq!(svg.matches("<circle").count(), 6);
    }

    #[test]
    fn empty_plot_is_none() {
        let p = LinePlot {
            title: "x".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            log_x: false,
            log_y: false,
            series: vec![],
        };
        assert!(p.to_svg().is_none());
    }

    #[test]
    fn axis_transform_linear_and_log() {
        // Linear: midpoint maps to midpoint.
        let mid = axis_transform(5.0, 0.0, 10.0, false, 100.0, 200.0);
        assert!((mid - 150.0).abs() < 1e-9);
        // Log: 10 is midway between 1 and 100.
        let mid = axis_transform(10.0, 1.0, 100.0, true, 0.0, 2.0);
        assert!((mid - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ticks_log_and_linear() {
        assert_eq!(ticks(1.0, 1000.0, true), vec![1.0, 10.0, 100.0, 1000.0]);
        let lin = ticks(0.0, 10.0, false);
        assert_eq!(lin.len(), 6);
        assert_eq!(lin[0], 0.0);
        assert_eq!(lin[5], 10.0);
    }

    #[test]
    fn from_table_csv() {
        let csv = "m,fft,wedge\n32,0.05,0.19\n1000,0.034,0.02\nsummary,x,y\n16000,0.032,0.012\n";
        let plot = line_plot_from_table(csv, "fig", true, true).expect("parses");
        assert_eq!(plot.series.len(), 2);
        assert_eq!(plot.series[0].1.len(), 3, "summary row skipped");
        assert!(plot.to_svg().is_some());
    }

    #[test]
    fn from_table_rejects_unplottable() {
        assert!(line_plot_from_table("a\nx\n", "t", false, false).is_none());
        assert!(line_plot_from_table("a,b\nx,y\n", "t", false, false).is_none());
    }

    #[test]
    fn write_svg_roundtrip() {
        let dir = std::env::temp_dir().join("rotind-plot-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("fig.svg");
        assert!(sample_plot().write_svg(&path).unwrap());
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("<svg"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn xml_escaping() {
        let mut p = sample_plot();
        p.title = "a<b & c>".into();
        let svg = p.to_svg().unwrap();
        assert!(svg.contains("a&lt;b &amp; c&gt;"));
    }

    #[test]
    fn percent_cells_parse() {
        let csv = "m,err\n10,19.96% {1}\n20,10.00% {2}\n";
        let plot = line_plot_from_table(csv, "t", false, false).expect("parses");
        assert_eq!(plot.series[0].1, vec![(10.0, 19.96), (20.0, 10.0)]);
    }
}
