//! Steps-ratio sweeps over database size (Figures 19–23).
//!
//! The paper's protocol (Section 5.3): for each database size `m`,
//! average over repeated runs *"with the query object randomly chosen
//! and removed from the dataset"* the number of steps each algorithm
//! needs for a 1-NN scan, and report it **relative to brute force**.
//! Brute force performs a deterministic number of steps
//! (`m · rotations · steps-per-pair`), so its denominator is computed
//! analytically — running it at `m = 16,000`, `n = 251` would add
//! nothing but hours.
//!
//! For the wedge method the paper *"include\[s\] a startup cost of O(n²),
//! which is the time required to build the wedges"*; here that charge is
//! `n² + 4·rotations·n` steps per query (shift profiles + envelope
//! materialisation), amortised into the query's total.

use rotind_distance::measure::Measure;
use rotind_index::baselines::{
    brute_force_scan, convolution_scan, early_abandon_scan_observed, fft_scan_observed,
};
use rotind_index::engine::{Invariance, RotationQuery};
use rotind_obs::{LogHistogram, NoopObserver, QueryTrace, SearchObserver};
use rotind_ts::rotate::RotationMatrix;
use rotind_ts::StepCounter;

/// The rival search algorithms of the paper's efficiency figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchAlgorithm {
    /// Full distances for every rotation of every item (the 1.0 line).
    BruteForce,
    /// Tables 1–3: early abandoning with best-so-far threading.
    EarlyAbandon,
    /// Fourier magnitude filter at `n·log₂n` per item (Euclidean only).
    Fft,
    /// The paper's contribution: hierarchical wedges + H-Merge.
    Wedge,
    /// Exact min-shift distance via circular correlation (Euclidean
    /// only; Section 2.4's astronomy trick).
    Convolution,
}

impl SearchAlgorithm {
    /// Display name used in figure output.
    pub fn name(&self) -> &'static str {
        match self {
            SearchAlgorithm::BruteForce => "brute-force",
            SearchAlgorithm::EarlyAbandon => "early-abandon",
            SearchAlgorithm::Fft => "fft",
            SearchAlgorithm::Wedge => "wedge",
            SearchAlgorithm::Convolution => "convolution",
        }
    }
}

/// Steps one exact distance computation performs on length-`n` series —
/// deterministic per measure (band-limited cell counts for the DP
/// measures). Established by running the measure once.
pub fn steps_per_pair(n: usize, measure: Measure) -> u64 {
    let zeros = vec![0.0; n];
    let mut counter = StepCounter::new();
    measure.distance(&zeros, &zeros, &mut counter);
    counter.steps()
}

/// Analytical brute-force scan cost: `m` items × `rotations` × steps per
/// pair, with no abandoning anywhere.
pub fn brute_force_steps(m: usize, n: usize, rotations: usize, measure: Measure) -> u64 {
    m as u64 * rotations as u64 * steps_per_pair(n, measure)
}

/// The per-query wedge-build startup charge (see module docs).
pub fn wedge_startup_steps(n: usize, rotations: usize) -> u64 {
    (n * n + 4 * rotations * n) as u64
}

/// Steps used by `algorithm` for one 1-NN query over `db`.
///
/// # Panics
///
/// Panics when the algorithm/measure combination is unsupported (FFT and
/// convolution are Euclidean-only) or the database is malformed.
pub fn scan_steps(
    db: &[Vec<f64>],
    query: &[f64],
    algorithm: SearchAlgorithm,
    measure: Measure,
) -> u64 {
    scan_steps_observed(db, query, algorithm, measure, &mut NoopObserver)
}

/// [`scan_steps`] with every wedge test, leaf distance, early abandon
/// and K-change reported to `observer`. Brute force and convolution
/// fire no events (they have no pruning structure to report); early
/// abandon reports improving leaf distances; FFT reports its magnitude
/// filter as level-0 wedge tests. The observer never changes the step
/// count — `scan_steps_observed(.., &mut NoopObserver)` and a recording
/// observer return identical totals.
pub fn scan_steps_observed<O: SearchObserver>(
    db: &[Vec<f64>],
    query: &[f64],
    algorithm: SearchAlgorithm,
    measure: Measure,
    observer: &mut O,
) -> u64 {
    let mut counter = StepCounter::new();
    match algorithm {
        SearchAlgorithm::BruteForce => {
            let matrix = RotationMatrix::full(query).expect("valid query");
            brute_force_scan(&matrix, db, measure, &mut counter).expect("valid database");
        }
        SearchAlgorithm::EarlyAbandon => {
            let matrix = RotationMatrix::full(query).expect("valid query");
            early_abandon_scan_observed(&matrix, db, measure, &mut counter, observer)
                .expect("valid database");
        }
        SearchAlgorithm::Fft => {
            assert_eq!(measure, Measure::Euclidean, "FFT filter is Euclidean-only");
            let matrix = RotationMatrix::full(query).expect("valid query");
            fft_scan_observed(&matrix, db, &mut counter, observer).expect("valid database");
        }
        SearchAlgorithm::Convolution => {
            assert_eq!(measure, Measure::Euclidean, "convolution is Euclidean-only");
            let matrix = RotationMatrix::full(query).expect("valid query");
            convolution_scan(&matrix, db, &mut counter).expect("valid database");
        }
        SearchAlgorithm::Wedge => {
            let engine = RotationQuery::with_measure(query, Invariance::Rotation, measure)
                .expect("valid query");
            engine
                .nearest_observed(db, &mut counter, observer)
                .expect("valid database");
            counter.add(wedge_startup_steps(query.len(), engine.tree().max_k()));
        }
    }
    counter.steps()
}

/// Run one wedge 1-NN scan and return its full [`QueryTrace`] alongside
/// the step total (startup charge included, as in [`scan_steps`]).
pub fn wedge_query_trace(db: &[Vec<f64>], query: &[f64], measure: Measure) -> (QueryTrace, u64) {
    let mut trace = QueryTrace::new(query.len());
    let steps = scan_steps_observed(db, query, SearchAlgorithm::Wedge, measure, &mut trace);
    (trace, steps)
}

/// Wall-clock nanoseconds for one 1-NN query under `algorithm` — the
/// paper's final sanity check (Section 5.3: *"we also measured the wall
/// clock time of our best implementation of all methods. The results
/// are essentially identical"*). Includes the wedge build for the wedge
/// method, mirroring the step accounting.
pub fn scan_wall_nanos(
    db: &[Vec<f64>],
    query: &[f64],
    algorithm: SearchAlgorithm,
    measure: Measure,
) -> u128 {
    let start = std::time::Instant::now();
    // Brute force must actually run here (no analytic shortcut for time).
    let mut counter = StepCounter::new();
    match algorithm {
        SearchAlgorithm::BruteForce => {
            let matrix = RotationMatrix::full(query).expect("valid query");
            brute_force_scan(&matrix, db, measure, &mut counter).expect("valid database");
        }
        _ => {
            let _ = scan_steps(db, query, algorithm, measure);
        }
    }
    start.elapsed().as_nanos()
}

/// Wall-clock nanoseconds for one **parallel** wedge 1-NN query at
/// `threads` worker threads (`0` = auto, honouring `ROTIND_THREADS`).
/// Includes the wedge build, mirroring [`scan_wall_nanos`] for the
/// wedge method, so single-thread numbers are directly comparable.
pub fn scan_wall_nanos_parallel(
    db: &[Vec<f64>],
    query: &[f64],
    measure: Measure,
    threads: usize,
) -> u128 {
    let start = std::time::Instant::now();
    // Bench harness, not serving code: a malformed workload should stop
    // the experiment immediately rather than report bogus timings.
    let engine =
        // rotind-lint: allow(no-panic)
        RotationQuery::with_measure(query, Invariance::Rotation, measure).expect("valid query");
    engine
        .nearest_parallel(db, threads)
        // rotind-lint: allow(no-panic)
        .expect("valid database");
    start.elapsed().as_nanos()
}

/// One row of a [`thread_sweep`]: median wall-clock at one thread count
/// and the speedup relative to the sweep's single-thread row, plus
/// latency quantiles over the row's repeats (streamed through a
/// [`LogHistogram`], so each is within 6.25% of a sampled value).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThreadSweepPoint {
    /// Worker threads used for this row.
    pub threads: usize,
    /// Median wall-clock nanoseconds over the sweep's repeats.
    pub wall_nanos: u128,
    /// `baseline / wall_nanos` where baseline is the 1-thread median
    /// (> 1.0 means the parallel scan is faster).
    pub speedup: f64,
    /// 50th-percentile wall-clock nanoseconds over the repeats.
    pub p50_nanos: u64,
    /// 95th-percentile wall-clock nanoseconds over the repeats.
    pub p95_nanos: u64,
    /// 99th-percentile wall-clock nanoseconds over the repeats.
    pub p99_nanos: u64,
}

/// Median-of-`repeats` parallel scan wall-clock at each requested
/// thread count, with speedups relative to a 1-thread baseline measured
/// the same way (the baseline is always measured, whether or not `1` is
/// in `thread_counts`). Answers are identical across rows by the
/// parallel scan's determinism guarantee, so only time varies.
///
/// # Panics
/// Panics when `repeats == 0` or the database is empty/malformed.
pub fn thread_sweep(
    db: &[Vec<f64>],
    query: &[f64],
    measure: Measure,
    thread_counts: &[usize],
    repeats: usize,
) -> Vec<ThreadSweepPoint> {
    assert!(repeats > 0, "thread_sweep needs at least one repeat");
    let sample = |threads: usize| -> (u128, LogHistogram) {
        let mut samples: Vec<u128> = (0..repeats)
            .map(|_| scan_wall_nanos_parallel(db, query, measure, threads))
            .collect();
        let mut hist = LogHistogram::new();
        for &s in &samples {
            hist.observe(u64::try_from(s).unwrap_or(u64::MAX));
        }
        samples.sort_unstable();
        // `repeats > 0` is asserted above, so the median index is valid.
        // rotind-lint: allow(no-index)
        (samples[samples.len() / 2], hist)
    };
    let (baseline, baseline_hist) = sample(1);
    let baseline = baseline.max(1);
    thread_counts
        .iter()
        .map(|&threads| {
            let (wall_nanos, hist) = if threads == 1 {
                (baseline, baseline_hist.clone())
            } else {
                sample(threads)
            };
            // `repeats > 0`, so every quantile is Some.
            let q = |p: f64| hist.quantile(p).unwrap_or(0);
            ThreadSweepPoint {
                threads,
                wall_nanos,
                speedup: baseline as f64 / wall_nanos.max(1) as f64,
                p50_nanos: q(0.5),
                p95_nanos: q(0.95),
                p99_nanos: q(0.99),
            }
        })
        .collect()
}

/// One row of a Figure 19–23 sweep: the database size and, per
/// algorithm, the step ratio to brute force (≤ 1.0 means faster).
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Database size `m`.
    pub m: usize,
    /// `(algorithm, steps / brute_force_steps)` pairs.
    pub ratios: Vec<(SearchAlgorithm, f64)>,
}

/// Run the full sweep. `pool` supplies both databases (prefixes of the
/// given sizes) and queries (`queries_per_size` items taken from beyond
/// the largest size, wrapping if the pool is tight — the paper removes
/// the query from the dataset).
pub fn speedup_sweep(
    pool: &[Vec<f64>],
    sizes: &[usize],
    queries_per_size: usize,
    measure: Measure,
    algorithms: &[SearchAlgorithm],
) -> Vec<SweepPoint> {
    speedup_sweep_traced(pool, sizes, queries_per_size, measure, algorithms)
        .into_iter()
        .map(|(point, _)| point)
        .collect()
}

/// [`speedup_sweep`] that also returns, per sweep point, the merged
/// [`QueryTrace`] of every wedge query run at that point (per-level
/// prune counts, LB-tightness, abandon depths, K timeline). When
/// [`SearchAlgorithm::Wedge`] is not among `algorithms` the trace is
/// empty.
pub fn speedup_sweep_traced(
    pool: &[Vec<f64>],
    sizes: &[usize],
    queries_per_size: usize,
    measure: Measure,
    algorithms: &[SearchAlgorithm],
) -> Vec<(SweepPoint, QueryTrace)> {
    assert!(!pool.is_empty() && queries_per_size > 0);
    let n = pool[0].len();
    let max_size = sizes.iter().copied().max().unwrap_or(0);
    assert!(max_size <= pool.len(), "pool smaller than largest size");
    sizes
        .iter()
        .map(|&m| {
            let db = &pool[..m];
            // Queries from beyond the database prefix when possible.
            let queries: Vec<&[f64]> = (0..queries_per_size)
                .map(|q| {
                    let idx = if max_size + q < pool.len() {
                        max_size + q
                    } else {
                        // Tight pool: reuse spread-out items (still
                        // excluded? they are in the db — acceptable for a
                        // self-query benchmark and noted by callers).
                        (q * 7919) % pool.len()
                    };
                    pool[idx].as_slice()
                })
                .collect();
            let brute = brute_force_steps(m, n, n, measure) as f64;
            let mut point_trace = QueryTrace::new(n);
            let mut ratios = Vec::with_capacity(algorithms.len());
            for &alg in algorithms {
                let ratio = if alg == SearchAlgorithm::BruteForce {
                    1.0
                } else {
                    let total: u64 = queries
                        .iter()
                        .map(|q| {
                            if alg == SearchAlgorithm::Wedge {
                                let (trace, steps) = wedge_query_trace(db, q, measure);
                                point_trace.merge(&trace);
                                steps
                            } else {
                                scan_steps(db, q, alg, measure)
                            }
                        })
                        .sum();
                    (total as f64 / queries.len() as f64) / brute
                };
                ratios.push((alg, ratio));
            }
            (SweepPoint { m, ratios }, point_trace)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_distance::DtwParams;

    fn signal(n: usize, k: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * (0.1 + 0.013 * (k % 13) as f64)).sin() + (k as f64 * 0.7).cos())
            .collect()
    }

    fn pool(m: usize, n: usize) -> Vec<Vec<f64>> {
        (0..m).map(|k| signal(n, k)).collect()
    }

    #[test]
    fn steps_per_pair_values() {
        assert_eq!(steps_per_pair(32, Measure::Euclidean), 32);
        let d = steps_per_pair(32, Measure::Dtw(DtwParams::new(0)));
        assert_eq!(d, 32, "R = 0 visits the diagonal only");
        let d5 = steps_per_pair(32, Measure::Dtw(DtwParams::new(5)));
        assert!(d5 > 32 && d5 <= 32 * 11);
    }

    #[test]
    fn analytical_brute_matches_measured() {
        let db = pool(6, 16);
        let query = signal(16, 99);
        let measured = scan_steps(&db, &query, SearchAlgorithm::BruteForce, Measure::Euclidean);
        assert_eq!(measured, brute_force_steps(6, 16, 16, Measure::Euclidean));
        let m2 = Measure::Dtw(DtwParams::new(3));
        let measured_dtw = scan_steps(&db, &query, SearchAlgorithm::BruteForce, m2);
        assert_eq!(measured_dtw, brute_force_steps(6, 16, 16, m2));
    }

    #[test]
    fn all_algorithms_cost_at_most_brute_force_asymptotically() {
        let db = pool(40, 32);
        let query = signal(32, 123);
        let brute = brute_force_steps(40, 32, 32, Measure::Euclidean);
        for alg in [SearchAlgorithm::EarlyAbandon, SearchAlgorithm::Wedge] {
            let s = scan_steps(&db, &query, alg, Measure::Euclidean);
            assert!(s < brute, "{}: {s} !< {brute}", alg.name());
        }
    }

    #[test]
    fn sweep_structure() {
        let p = pool(50, 24);
        let points = speedup_sweep(
            &p,
            &[8, 16, 32],
            3,
            Measure::Euclidean,
            &[
                SearchAlgorithm::BruteForce,
                SearchAlgorithm::EarlyAbandon,
                SearchAlgorithm::Wedge,
            ],
        );
        assert_eq!(points.len(), 3);
        for pt in &points {
            assert_eq!(pt.ratios.len(), 3);
            let brute = pt
                .ratios
                .iter()
                .find(|(a, _)| *a == SearchAlgorithm::BruteForce)
                .unwrap();
            assert_eq!(brute.1, 1.0);
            for (alg, ratio) in &pt.ratios {
                assert!(ratio.is_finite() && *ratio > 0.0, "{}", alg.name());
            }
        }
        // Early abandon improves (or holds) as the database grows.
        let ea = |pt: &SweepPoint| {
            pt.ratios
                .iter()
                .find(|(a, _)| *a == SearchAlgorithm::EarlyAbandon)
                .unwrap()
                .1
        };
        assert!(ea(&points[2]) <= ea(&points[0]) * 1.5);
    }

    #[test]
    fn wedge_ratio_improves_with_database_size() {
        let p = pool(300, 32);
        let points = speedup_sweep(
            &p,
            &[16, 256],
            4,
            Measure::Euclidean,
            &[SearchAlgorithm::Wedge],
        );
        let small = points[0].ratios[0].1;
        let large = points[1].ratios[0].1;
        assert!(
            large < small,
            "wedge ratio should shrink with m: {small} -> {large}"
        );
    }

    #[test]
    fn dtw_sweep_works() {
        let p = pool(40, 24);
        let m = Measure::Dtw(DtwParams::new(2));
        let points = speedup_sweep(
            &p,
            &[20],
            2,
            m,
            &[SearchAlgorithm::EarlyAbandon, SearchAlgorithm::Wedge],
        );
        for (_, r) in &points[0].ratios {
            assert!(*r < 1.0, "DTW optimisations must beat brute force");
        }
    }

    #[test]
    fn observed_scan_steps_match_plain() {
        let db = pool(30, 32);
        let query = signal(32, 77);
        for alg in [
            SearchAlgorithm::EarlyAbandon,
            SearchAlgorithm::Fft,
            SearchAlgorithm::Wedge,
        ] {
            let plain = scan_steps(&db, &query, alg, Measure::Euclidean);
            let mut trace = QueryTrace::new(query.len());
            let observed = scan_steps_observed(&db, &query, alg, Measure::Euclidean, &mut trace);
            assert_eq!(plain, observed, "{}: observer changed the cost", alg.name());
        }
    }

    #[test]
    fn traced_sweep_matches_plain_and_collects_traces() {
        let p = pool(60, 24);
        let algs = [SearchAlgorithm::BruteForce, SearchAlgorithm::Wedge];
        let plain = speedup_sweep(&p, &[16, 48], 2, Measure::Euclidean, &algs);
        let traced = speedup_sweep_traced(&p, &[16, 48], 2, Measure::Euclidean, &algs);
        assert_eq!(plain.len(), traced.len());
        for (a, (b, trace)) in plain.iter().zip(&traced) {
            assert_eq!(a.m, b.m);
            for ((alg_a, ra), (alg_b, rb)) in a.ratios.iter().zip(&b.ratios) {
                assert_eq!(alg_a, alg_b);
                assert_eq!(ra, rb, "trace recording must not change step ratios");
            }
            assert!(
                trace.wedges_tested() > 0,
                "wedge trace collected at m = {}",
                a.m
            );
            assert!(trace.prune_rate_from(0).is_some());
        }
        // Without the wedge algorithm the trace stays empty.
        let (_, empty) = speedup_sweep_traced(
            &p,
            &[16],
            2,
            Measure::Euclidean,
            &[SearchAlgorithm::EarlyAbandon],
        )
        .pop()
        .unwrap();
        assert_eq!(empty.wedges_tested(), 0);
    }

    #[test]
    fn wedge_trace_has_pruning_activity() {
        let db = pool(60, 32);
        let query = signal(32, 200);
        let (trace, steps) = wedge_query_trace(&db, &query, Measure::Euclidean);
        assert_eq!(
            steps,
            scan_steps(&db, &query, SearchAlgorithm::Wedge, Measure::Euclidean)
        );
        assert!(trace.wedges_tested() > 0);
        assert!(trace.leaf_distances() > 0);
    }

    #[test]
    fn thread_sweep_shape_and_determinism() {
        let db = pool(30, 24);
        let query = signal(24, 55);
        let points = thread_sweep(&db, &query, Measure::Euclidean, &[1, 2, 4], 3);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].threads, 1);
        assert!(
            (points[0].speedup - 1.0).abs() < 1e-12,
            "1-thread row is its own baseline"
        );
        for pt in &points {
            assert!(pt.wall_nanos > 0);
            assert!(pt.speedup.is_finite() && pt.speedup > 0.0);
            assert!(pt.p50_nanos > 0, "repeats > 0 populate every quantile");
            assert!(pt.p50_nanos <= pt.p95_nanos && pt.p95_nanos <= pt.p99_nanos);
        }
        // Determinism: parallel answers equal sequential at every count.
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let sequential = engine.nearest(&db).unwrap();
        for threads in [1, 2, 4] {
            assert_eq!(engine.nearest_parallel(&db, threads).unwrap(), sequential);
        }
    }

    #[test]
    fn parallel_wall_nanos_is_positive() {
        let db = pool(10, 16);
        let query = signal(16, 3);
        assert!(scan_wall_nanos_parallel(&db, &query, Measure::Euclidean, 2) > 0);
        assert!(scan_wall_nanos_parallel(&db, &query, Measure::Euclidean, 0) > 0);
    }

    #[test]
    #[should_panic(expected = "Euclidean-only")]
    fn fft_rejects_dtw() {
        let db = pool(4, 16);
        scan_steps(
            &db,
            &signal(16, 9),
            SearchAlgorithm::Fft,
            Measure::Dtw(DtwParams::new(2)),
        );
    }
}
