//! Steps-ratio sweeps over database size (Figures 19–23).
//!
//! The paper's protocol (Section 5.3): for each database size `m`,
//! average over repeated runs *"with the query object randomly chosen
//! and removed from the dataset"* the number of steps each algorithm
//! needs for a 1-NN scan, and report it **relative to brute force**.
//! Brute force performs a deterministic number of steps
//! (`m · rotations · steps-per-pair`), so its denominator is computed
//! analytically — running it at `m = 16,000`, `n = 251` would add
//! nothing but hours.
//!
//! For the wedge method the paper *"include\[s\] a startup cost of O(n²),
//! which is the time required to build the wedges"*; here that charge is
//! `n² + 4·rotations·n` steps per query (shift profiles + envelope
//! materialisation), amortised into the query's total.

use rotind_distance::measure::Measure;
use rotind_index::baselines::{
    brute_force_scan, convolution_scan, early_abandon_scan, fft_scan,
};
use rotind_index::engine::{Invariance, RotationQuery};
use rotind_ts::rotate::RotationMatrix;
use rotind_ts::StepCounter;

/// The rival search algorithms of the paper's efficiency figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchAlgorithm {
    /// Full distances for every rotation of every item (the 1.0 line).
    BruteForce,
    /// Tables 1–3: early abandoning with best-so-far threading.
    EarlyAbandon,
    /// Fourier magnitude filter at `n·log₂n` per item (Euclidean only).
    Fft,
    /// The paper's contribution: hierarchical wedges + H-Merge.
    Wedge,
    /// Exact min-shift distance via circular correlation (Euclidean
    /// only; Section 2.4's astronomy trick).
    Convolution,
}

impl SearchAlgorithm {
    /// Display name used in figure output.
    pub fn name(&self) -> &'static str {
        match self {
            SearchAlgorithm::BruteForce => "brute-force",
            SearchAlgorithm::EarlyAbandon => "early-abandon",
            SearchAlgorithm::Fft => "fft",
            SearchAlgorithm::Wedge => "wedge",
            SearchAlgorithm::Convolution => "convolution",
        }
    }
}

/// Steps one exact distance computation performs on length-`n` series —
/// deterministic per measure (band-limited cell counts for the DP
/// measures). Established by running the measure once.
pub fn steps_per_pair(n: usize, measure: Measure) -> u64 {
    let zeros = vec![0.0; n];
    let mut counter = StepCounter::new();
    measure.distance(&zeros, &zeros, &mut counter);
    counter.steps()
}

/// Analytical brute-force scan cost: `m` items × `rotations` × steps per
/// pair, with no abandoning anywhere.
pub fn brute_force_steps(m: usize, n: usize, rotations: usize, measure: Measure) -> u64 {
    m as u64 * rotations as u64 * steps_per_pair(n, measure)
}

/// The per-query wedge-build startup charge (see module docs).
pub fn wedge_startup_steps(n: usize, rotations: usize) -> u64 {
    (n * n + 4 * rotations * n) as u64
}

/// Steps used by `algorithm` for one 1-NN query over `db`.
///
/// # Panics
///
/// Panics when the algorithm/measure combination is unsupported (FFT and
/// convolution are Euclidean-only) or the database is malformed.
pub fn scan_steps(db: &[Vec<f64>], query: &[f64], algorithm: SearchAlgorithm, measure: Measure) -> u64 {
    let mut counter = StepCounter::new();
    match algorithm {
        SearchAlgorithm::BruteForce => {
            let matrix = RotationMatrix::full(query).expect("valid query");
            brute_force_scan(&matrix, db, measure, &mut counter).expect("valid database");
        }
        SearchAlgorithm::EarlyAbandon => {
            let matrix = RotationMatrix::full(query).expect("valid query");
            early_abandon_scan(&matrix, db, measure, &mut counter).expect("valid database");
        }
        SearchAlgorithm::Fft => {
            assert_eq!(measure, Measure::Euclidean, "FFT filter is Euclidean-only");
            let matrix = RotationMatrix::full(query).expect("valid query");
            fft_scan(&matrix, db, &mut counter).expect("valid database");
        }
        SearchAlgorithm::Convolution => {
            assert_eq!(measure, Measure::Euclidean, "convolution is Euclidean-only");
            let matrix = RotationMatrix::full(query).expect("valid query");
            convolution_scan(&matrix, db, &mut counter).expect("valid database");
        }
        SearchAlgorithm::Wedge => {
            let engine = RotationQuery::with_measure(query, Invariance::Rotation, measure)
                .expect("valid query");
            engine
                .nearest_with_steps(db, &mut counter)
                .expect("valid database");
            counter.add(wedge_startup_steps(query.len(), engine.tree().max_k()));
        }
    }
    counter.steps()
}

/// Wall-clock nanoseconds for one 1-NN query under `algorithm` — the
/// paper's final sanity check (Section 5.3: *"we also measured the wall
/// clock time of our best implementation of all methods. The results
/// are essentially identical"*). Includes the wedge build for the wedge
/// method, mirroring the step accounting.
pub fn scan_wall_nanos(
    db: &[Vec<f64>],
    query: &[f64],
    algorithm: SearchAlgorithm,
    measure: Measure,
) -> u128 {
    let start = std::time::Instant::now();
    // Brute force must actually run here (no analytic shortcut for time).
    let mut counter = StepCounter::new();
    match algorithm {
        SearchAlgorithm::BruteForce => {
            let matrix = RotationMatrix::full(query).expect("valid query");
            brute_force_scan(&matrix, db, measure, &mut counter).expect("valid database");
        }
        _ => {
            let _ = scan_steps(db, query, algorithm, measure);
        }
    }
    start.elapsed().as_nanos()
}

/// One row of a Figure 19–23 sweep: the database size and, per
/// algorithm, the step ratio to brute force (≤ 1.0 means faster).
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Database size `m`.
    pub m: usize,
    /// `(algorithm, steps / brute_force_steps)` pairs.
    pub ratios: Vec<(SearchAlgorithm, f64)>,
}

/// Run the full sweep. `pool` supplies both databases (prefixes of the
/// given sizes) and queries (`queries_per_size` items taken from beyond
/// the largest size, wrapping if the pool is tight — the paper removes
/// the query from the dataset).
pub fn speedup_sweep(
    pool: &[Vec<f64>],
    sizes: &[usize],
    queries_per_size: usize,
    measure: Measure,
    algorithms: &[SearchAlgorithm],
) -> Vec<SweepPoint> {
    assert!(!pool.is_empty() && queries_per_size > 0);
    let n = pool[0].len();
    let max_size = sizes.iter().copied().max().unwrap_or(0);
    assert!(max_size <= pool.len(), "pool smaller than largest size");
    sizes
        .iter()
        .map(|&m| {
            let db = &pool[..m];
            // Queries from beyond the database prefix when possible.
            let queries: Vec<&[f64]> = (0..queries_per_size)
                .map(|q| {
                    let idx = if max_size + q < pool.len() {
                        max_size + q
                    } else {
                        // Tight pool: reuse spread-out items (still
                        // excluded? they are in the db — acceptable for a
                        // self-query benchmark and noted by callers).
                        (q * 7919) % pool.len()
                    };
                    pool[idx].as_slice()
                })
                .collect();
            let brute = brute_force_steps(m, n, n, measure) as f64;
            let ratios = algorithms
                .iter()
                .map(|&alg| {
                    let ratio = if alg == SearchAlgorithm::BruteForce {
                        1.0
                    } else {
                        let total: u64 = queries
                            .iter()
                            .map(|q| scan_steps(db, q, alg, measure))
                            .sum();
                        (total as f64 / queries.len() as f64) / brute
                    };
                    (alg, ratio)
                })
                .collect();
            SweepPoint { m, ratios }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_distance::DtwParams;

    fn signal(n: usize, k: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * (0.1 + 0.013 * (k % 13) as f64)).sin() + (k as f64 * 0.7).cos())
            .collect()
    }

    fn pool(m: usize, n: usize) -> Vec<Vec<f64>> {
        (0..m).map(|k| signal(n, k)).collect()
    }

    #[test]
    fn steps_per_pair_values() {
        assert_eq!(steps_per_pair(32, Measure::Euclidean), 32);
        let d = steps_per_pair(32, Measure::Dtw(DtwParams::new(0)));
        assert_eq!(d, 32, "R = 0 visits the diagonal only");
        let d5 = steps_per_pair(32, Measure::Dtw(DtwParams::new(5)));
        assert!(d5 > 32 && d5 <= 32 * 11);
    }

    #[test]
    fn analytical_brute_matches_measured() {
        let db = pool(6, 16);
        let query = signal(16, 99);
        let measured = scan_steps(&db, &query, SearchAlgorithm::BruteForce, Measure::Euclidean);
        assert_eq!(measured, brute_force_steps(6, 16, 16, Measure::Euclidean));
        let m2 = Measure::Dtw(DtwParams::new(3));
        let measured_dtw = scan_steps(&db, &query, SearchAlgorithm::BruteForce, m2);
        assert_eq!(measured_dtw, brute_force_steps(6, 16, 16, m2));
    }

    #[test]
    fn all_algorithms_cost_at_most_brute_force_asymptotically() {
        let db = pool(40, 32);
        let query = signal(32, 123);
        let brute = brute_force_steps(40, 32, 32, Measure::Euclidean);
        for alg in [SearchAlgorithm::EarlyAbandon, SearchAlgorithm::Wedge] {
            let s = scan_steps(&db, &query, alg, Measure::Euclidean);
            assert!(s < brute, "{}: {s} !< {brute}", alg.name());
        }
    }

    #[test]
    fn sweep_structure() {
        let p = pool(50, 24);
        let points = speedup_sweep(
            &p,
            &[8, 16, 32],
            3,
            Measure::Euclidean,
            &[
                SearchAlgorithm::BruteForce,
                SearchAlgorithm::EarlyAbandon,
                SearchAlgorithm::Wedge,
            ],
        );
        assert_eq!(points.len(), 3);
        for pt in &points {
            assert_eq!(pt.ratios.len(), 3);
            let brute = pt.ratios.iter().find(|(a, _)| *a == SearchAlgorithm::BruteForce).unwrap();
            assert_eq!(brute.1, 1.0);
            for (alg, ratio) in &pt.ratios {
                assert!(ratio.is_finite() && *ratio > 0.0, "{}", alg.name());
            }
        }
        // Early abandon improves (or holds) as the database grows.
        let ea = |pt: &SweepPoint| {
            pt.ratios
                .iter()
                .find(|(a, _)| *a == SearchAlgorithm::EarlyAbandon)
                .unwrap()
                .1
        };
        assert!(ea(&points[2]) <= ea(&points[0]) * 1.5);
    }

    #[test]
    fn wedge_ratio_improves_with_database_size() {
        let p = pool(300, 32);
        let points = speedup_sweep(
            &p,
            &[16, 256],
            4,
            Measure::Euclidean,
            &[SearchAlgorithm::Wedge],
        );
        let small = points[0].ratios[0].1;
        let large = points[1].ratios[0].1;
        assert!(
            large < small,
            "wedge ratio should shrink with m: {small} -> {large}"
        );
    }

    #[test]
    fn dtw_sweep_works() {
        let p = pool(40, 24);
        let m = Measure::Dtw(DtwParams::new(2));
        let points = speedup_sweep(
            &p,
            &[20],
            2,
            m,
            &[SearchAlgorithm::EarlyAbandon, SearchAlgorithm::Wedge],
        );
        for (_, r) in &points[0].ratios {
            assert!(*r < 1.0, "DTW optimisations must beat brute force");
        }
    }

    #[test]
    #[should_panic(expected = "Euclidean-only")]
    fn fft_rejects_dtw() {
        let db = pool(4, 16);
        scan_steps(
            &db,
            &signal(16, 9),
            SearchAlgorithm::Fft,
            Measure::Dtw(DtwParams::new(2)),
        );
    }
}
