//! # rotind-eval — experiment harness
//!
//! The machinery that regenerates the paper's evaluation (Section 5):
//!
//! * [`onenn`] — leave-one-out one-nearest-neighbour classification
//!   error under any measure, with the paper's train-data band selection
//!   for DTW (Table 8);
//! * [`confusion`] — confusion matrices and per-class recall, the
//!   diagnostic behind the synthetic-dataset calibration;
//! * [`speedup`] — the steps-ratio-to-brute-force sweeps over database
//!   size that draw Figures 19–23, with the brute-force denominator
//!   computed analytically (step counts of the unoptimised scans are
//!   deterministic);
//! * [`scaling`] — the log-log fit behind the paper's empirical
//!   `O(n^{1.06})` per-comparison cost claim;
//! * [`report`] — aligned-table and CSV emission for the figure
//!   binaries;
//! * [`plot`] — dependency-free SVG rendering of the sweep figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confusion;
pub mod onenn;
pub mod plot;
pub mod report;
pub mod scaling;
pub mod speedup;

pub use onenn::{one_nn_error, ClassificationResult};
pub use speedup::SearchAlgorithm;
