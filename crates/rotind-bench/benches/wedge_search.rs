//! End-to-end search benchmarks: the wedge engine against its rivals on
//! a realistic projectile-point database, plus ablations over linkage
//! and fixed wedge-set sizes (the design choices DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rotind_cluster::linkage::Linkage;
use rotind_distance::Measure;
use rotind_envelope::WedgeTree;
use rotind_eval::speedup::{scan_steps, SearchAlgorithm};
use rotind_index::engine::{Invariance, KPolicy, RotationQuery};
use rotind_shape::dataset::projectile_points;
use rotind_ts::rotate::RotationMatrix;
use rotind_ts::StepCounter;
use std::hint::black_box;

fn bench_search(c: &mut Criterion) {
    let n = 128;
    let m = 400;
    let ds = projectile_points(m + 4, n, 9);
    let db: Vec<Vec<f64>> = ds.items[..m].to_vec();
    let query = ds.items[m].clone();

    let mut group = c.benchmark_group("search");
    group.sample_size(10);

    for alg in [
        SearchAlgorithm::EarlyAbandon,
        SearchAlgorithm::Fft,
        SearchAlgorithm::Convolution,
        SearchAlgorithm::Wedge,
    ] {
        group.bench_with_input(BenchmarkId::new("1nn_scan", alg.name()), &alg, |b, &alg| {
            b.iter(|| scan_steps(black_box(&db), black_box(&query), alg, Measure::Euclidean))
        });
    }

    // Ablation: fixed wedge-set sizes vs the dynamic planner.
    for k in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::new("fixed_k", k), &k, |b, &k| {
            let engine = RotationQuery::new(&query, Invariance::Rotation)
                .expect("valid")
                .with_k_policy(KPolicy::Fixed(k));
            b.iter(|| {
                let mut s = StepCounter::new();
                engine
                    .nearest_with_steps(black_box(&db), &mut s)
                    .expect("valid")
            })
        });
    }
    group.bench_function("dynamic_k", |b| {
        let engine = RotationQuery::new(&query, Invariance::Rotation).expect("valid");
        b.iter(|| {
            let mut s = StepCounter::new();
            engine
                .nearest_with_steps(black_box(&db), &mut s)
                .expect("valid")
        })
    });

    // Ablation: wedge-set derivation linkage (the paper uses average).
    for (name, linkage) in [
        ("single", Linkage::Single),
        ("complete", Linkage::Complete),
        ("average", Linkage::Average),
        ("ward", Linkage::Ward),
    ] {
        group.bench_with_input(
            BenchmarkId::new("linkage_build", name),
            &linkage,
            |b, &linkage| {
                b.iter(|| {
                    WedgeTree::build(
                        RotationMatrix::full(black_box(&query)).expect("valid"),
                        linkage,
                        0,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
