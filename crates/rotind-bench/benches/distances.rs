//! Micro benchmarks of the distance kernels at the paper's canonical
//! length (n = 251, the projectile-point series).

use criterion::{criterion_group, criterion_main, Criterion};
use rotind_distance::dtw::{dtw, dtw_early_abandon, DtwParams};
use rotind_distance::euclidean::{euclidean, euclidean_early_abandon};
use rotind_distance::lcss::{lcss_distance, LcssParams};
use rotind_distance::rotation::rotation_invariant_distance;
use rotind_distance::Measure;
use rotind_ts::StepCounter;
use std::hint::black_box;

fn signals(n: usize) -> (Vec<f64>, Vec<f64>) {
    let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.41 + 0.9).sin()).collect();
    (a, b)
}

fn bench_distances(c: &mut Criterion) {
    let n = 251;
    let (q, ca) = signals(n);
    let mut group = c.benchmark_group("distance");
    group.sample_size(30);

    group.bench_function("euclidean/251", |bench| {
        bench.iter(|| euclidean(black_box(&q), black_box(&ca)))
    });
    group.bench_function("euclidean_ea_tight/251", |bench| {
        bench.iter(|| {
            let mut s = StepCounter::new();
            euclidean_early_abandon(black_box(&q), black_box(&ca), 0.5, &mut s)
        })
    });
    group.bench_function("dtw_r5/251", |bench| {
        bench.iter(|| {
            let mut s = StepCounter::new();
            dtw(black_box(&q), black_box(&ca), DtwParams::new(5), &mut s)
        })
    });
    group.bench_function("dtw_r5_ea_tight/251", |bench| {
        bench.iter(|| {
            let mut s = StepCounter::new();
            dtw_early_abandon(
                black_box(&q),
                black_box(&ca),
                DtwParams::new(5),
                0.5,
                &mut s,
            )
        })
    });
    group.bench_function("lcss/251", |bench| {
        bench.iter(|| {
            let mut s = StepCounter::new();
            lcss_distance(
                black_box(&q),
                black_box(&ca),
                LcssParams::for_normalized(n),
                &mut s,
            )
        })
    });
    group.bench_function("rotation_invariant_ed/64", |bench| {
        let (q64, c64) = signals(64);
        bench.iter(|| {
            let mut s = StepCounter::new();
            rotation_invariant_distance(
                black_box(&q64),
                black_box(&c64),
                Measure::Euclidean,
                &mut s,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
