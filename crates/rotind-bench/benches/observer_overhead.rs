//! The zero-overhead claim, measured: `nearest_observed` with a
//! [`NoopObserver`] must cost the same as the plain `nearest_with_steps`
//! path (the no-op callbacks are monomorphized away), and a recording
//! [`QueryTrace`] should add only the cost of bumping a few counters.
//!
//! [`NoopObserver`]: rotind_obs::NoopObserver
//! [`QueryTrace`]: rotind_obs::QueryTrace

use criterion::{criterion_group, criterion_main, Criterion};
use rotind_index::engine::{Invariance, RotationQuery};
use rotind_obs::{NoopObserver, Profiler, QueryTrace};
use rotind_shape::dataset::projectile_points;
use rotind_ts::StepCounter;
use std::hint::black_box;

fn bench_observer_overhead(c: &mut Criterion) {
    let n = 128;
    let m = 400;
    let ds = projectile_points(m + 1, n, 9);
    let db: Vec<Vec<f64>> = ds.items[..m].to_vec();
    let query = ds.items[m].clone();
    let engine = RotationQuery::new(&query, Invariance::Rotation).expect("valid");

    let mut group = c.benchmark_group("observer");
    group.sample_size(20);

    group.bench_function("plain", |b| {
        b.iter(|| {
            let mut s = StepCounter::new();
            engine
                .nearest_with_steps(black_box(&db), &mut s)
                .expect("valid")
        })
    });
    group.bench_function("noop_observer", |b| {
        b.iter(|| {
            let mut s = StepCounter::new();
            engine
                .nearest_observed(black_box(&db), &mut s, &mut NoopObserver)
                .expect("valid")
        })
    });
    group.bench_function("query_trace", |b| {
        b.iter(|| {
            let mut s = StepCounter::new();
            let mut trace = QueryTrace::new(n);
            engine
                .nearest_observed(black_box(&db), &mut s, &mut trace)
                .expect("valid")
        })
    });
    // The profiler reads the clock at every phase boundary — the
    // costliest observer. This row bounds what `--bin trace`'s second
    // pass and the cascade bin's fan-out observer pay.
    group.bench_function("profiler", |b| {
        b.iter(|| {
            let mut s = StepCounter::new();
            let mut profiler = Profiler::new();
            engine
                .nearest_observed(black_box(&db), &mut s, &mut profiler)
                .expect("valid")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_observer_overhead);
criterion_main!(benches);
