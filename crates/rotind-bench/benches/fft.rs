//! FFT substrate benchmarks: radix-2 vs Bluestein, spectra and the
//! convolution trick at the paper's lengths (251 and 1,024).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rotind_fft::bluestein::bluestein;
use rotind_fft::convolution::min_shift_euclidean;
use rotind_fft::fft::fft;
use rotind_fft::magnitudes;
use rotind_fft::Complex;
use std::hint::black_box;

fn complex_signal(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
        .collect()
}

fn real_signal(n: usize, phase: f64) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.31 + phase).sin()).collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    group.sample_size(30);

    let x1024 = complex_signal(1024);
    group.bench_function("radix2/1024", |b| b.iter(|| fft(black_box(&x1024))));

    let x251 = complex_signal(251);
    group.bench_function("bluestein/251", |b| b.iter(|| bluestein(black_box(&x251))));

    for n in [251usize, 1024] {
        let xs = real_signal(n, 0.0);
        group.bench_with_input(BenchmarkId::new("magnitudes", n), &xs, |b, xs| {
            b.iter(|| magnitudes(black_box(xs)))
        });
        let q = real_signal(n, 0.0);
        let cc = real_signal(n, 1.1);
        group.bench_with_input(BenchmarkId::new("min_shift_euclidean", n), &n, |b, _| {
            b.iter(|| min_shift_euclidean(black_box(&q), black_box(&cc)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
