//! Smoke benchmark that drives the figure-reproduction harness itself at
//! reduced scale, so `cargo bench --workspace` exercises every
//! experiment path. Full-scale figures come from the `fig*` binaries
//! (`cargo run -p rotind-bench --release --bin repro_all`).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figures(c: &mut Criterion) {
    // Force the reduced-scale path regardless of the environment.
    std::env::set_var("ROTIND_QUICK", "1");
    let mut group = c.benchmark_group("figures_quick");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    // fig24 (the disk index) is exercised by its binary and the
    // integration tests; its quick run is still tens of seconds, too
    // slow for a criterion loop.

    group.bench_function("smoke_query", |b| {
        b.iter(rotind_bench::experiments::smoke_query)
    });
    group.bench_function("fig19_quick", |b| {
        b.iter(|| rotind_bench::experiments::fig19(true))
    });
    group.bench_function("scaling_quick", |b| {
        b.iter(|| rotind_bench::experiments::scaling(true))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
