//! Micro benchmarks of the LB_Keogh lower-bound family and the reduced
//! representations.

use criterion::{criterion_group, criterion_main, Criterion};
use rotind_distance::lcss::LcssParams;
use rotind_envelope::lb_keogh::{lb_keogh, lb_keogh_early_abandon, lcss_distance_lower_bound};
use rotind_envelope::{Wedge, WedgeTree};
use rotind_fft::lower_bound::magnitude_distance;
use rotind_fft::magnitude_features;
use rotind_index::reduced::{Paa, PaaEnvelope};
use rotind_ts::rotate::RotationMatrix;
use rotind_ts::StepCounter;
use std::hint::black_box;

fn signal(n: usize, phase: f64) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.29 + phase).sin()).collect()
}

fn bench_lower_bounds(c: &mut Criterion) {
    let n = 251;
    let query = signal(n, 0.0);
    let candidate = signal(n, 1.7);
    let matrix = RotationMatrix::full(&query).expect("valid");
    let wedge = Wedge::from_rows(&matrix, &(0..16).collect::<Vec<_>>());
    let mut group = c.benchmark_group("lower_bound");
    group.sample_size(30);

    group.bench_function("lb_keogh/251x16", |b| {
        b.iter(|| {
            let mut s = StepCounter::new();
            lb_keogh(black_box(&candidate), black_box(&wedge), &mut s)
        })
    });
    group.bench_function("lb_keogh_ea_tight/251x16", |b| {
        b.iter(|| {
            let mut s = StepCounter::new();
            lb_keogh_early_abandon(black_box(&candidate), black_box(&wedge), 0.1, &mut s)
        })
    });
    group.bench_function("lcss_bound/251x16", |b| {
        b.iter(|| {
            let mut s = StepCounter::new();
            lcss_distance_lower_bound(
                black_box(&candidate),
                black_box(&wedge),
                LcssParams::for_normalized(n),
                &mut s,
            )
        })
    });
    group.bench_function("fourier_magnitudes/251->16", |b| {
        b.iter(|| magnitude_features(black_box(&candidate), 16))
    });
    let qm = magnitude_features(&query, 16);
    let cm = magnitude_features(&candidate, 16);
    group.bench_function("magnitude_distance/16", |b| {
        b.iter(|| {
            let mut s = StepCounter::new();
            magnitude_distance(black_box(&qm), black_box(&cm), &mut s)
        })
    });
    let env = PaaEnvelope::of_wedge(&wedge, 16);
    let paa = Paa::of(&candidate, 16);
    group.bench_function("paa_envelope_bound/16", |b| {
        b.iter(|| {
            let mut s = StepCounter::new();
            env.min_dist(black_box(&paa), &mut s)
        })
    });
    group.bench_function("wedge_tree_build/251", |b| {
        b.iter(|| WedgeTree::new(RotationMatrix::full(black_box(&query)).expect("valid"), 0))
    });
    group.finish();
}

criterion_group!(benches, bench_lower_bounds);
criterion_main!(benches);
