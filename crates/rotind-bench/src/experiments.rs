//! The experiment implementations behind every table and figure of the
//! paper's evaluation (Section 5). Each function returns a
//! [`Table`]; the `fig*` binaries print and save them. `quick` shrinks
//! scale for smoke runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rotind_cluster::linkage::{cluster_series, Linkage};
use rotind_cluster::matrix::DistanceMatrix;
use rotind_distance::measure::Measure;
use rotind_distance::DtwParams;
use rotind_eval::onenn::{one_nn_error, one_nn_error_dtw_learned_band};
use rotind_eval::report::{fmt_percent, fmt_ratio, Table};
use rotind_eval::scaling::{empirical_exponent, ScalingPoint};
use rotind_eval::speedup::{
    scan_steps, speedup_sweep, speedup_sweep_traced, thread_sweep, wedge_startup_steps,
    SearchAlgorithm, SweepPoint,
};
use rotind_index::disk::{IndexedDatabase, ReducedRepr};
use rotind_index::engine::{Invariance, RotationQuery};
use rotind_lightcurve::dataset::{classification_set, light_curves};
use rotind_obs::QueryTrace;
use rotind_shape::centroid::align_to_major_axis;
use rotind_shape::dataset::{self as shapes, Dataset};
use rotind_shape::generators::butterfly::{bend_hindwing, butterfly_profile, LEPIDOPTERA};
use rotind_shape::generators::skull::{skull_profile, Species, FIGURE3_TRIO, PRIMATES, REPTILES};
use rotind_ts::normalize::z_normalize_lossy;
use rotind_ts::rotate::rotated;
use rotind_ts::StepCounter;

/// Deterministic Fisher–Yates shuffle (the heterogeneous pool is
/// generated dataset-by-dataset; prefixes must mix classes).
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

/// The per-point wedge pruning-rate columns shared by the traced
/// figures: fraction of wedge tests pruned at the cut level (L0), one
/// level below (L1), and everywhere deeper (L2+). Empty levels render
/// as `-` (a tiny database may never descend that far).
const PRUNE_HEADERS: [&str; 3] = ["wedge-prune-L0", "wedge-prune-L1", "wedge-prune-L2+"];

fn prune_cells(trace: &QueryTrace) -> [String; 3] {
    let cell = |rate: Option<f64>| rate.map(fmt_ratio).unwrap_or_else(|| "-".to_string());
    [
        cell(trace.prune_rate(0)),
        cell(trace.prune_rate(1)),
        cell(trace.prune_rate_from(2)),
    ]
}

fn sweep_table(points: &[(SweepPoint, QueryTrace)], algorithms: &[SearchAlgorithm]) -> Table {
    let mut headers = vec!["m".to_string()];
    headers.extend(algorithms.iter().map(|a| a.name().to_string()));
    headers.extend(PRUNE_HEADERS.iter().map(|h| h.to_string()));
    let mut table = Table::new(headers);
    for (pt, trace) in points {
        let mut row = vec![pt.m.to_string()];
        for alg in algorithms {
            let r = pt
                .ratios
                .iter()
                .find(|(a, _)| a == alg)
                .map(|(_, r)| *r)
                .unwrap_or(f64::NAN);
            row.push(fmt_ratio(r));
        }
        row.extend(prune_cells(trace));
        table.push_row(row);
    }
    table
}

// ---------------------------------------------------------------------
// Table 8 — classification error
// ---------------------------------------------------------------------

/// Paper reference numbers for Table 8: (name, ED error, DTW error, R).
pub const TABLE8_PAPER: [(&str, f64, f64, usize); 10] = [
    ("Face", 0.03839, 0.03170, 3),
    ("SwedishLeaf", 0.1333, 0.1084, 2),
    ("Chicken", 0.1996, 0.1996, 1),
    ("MixedBag", 0.04375, 0.04375, 1),
    ("OSULeaf", 0.3371, 0.1561, 2),
    ("Diatom", 0.2753, 0.2753, 1),
    ("Aircraft", 0.0095, 0.0, 3),
    ("Fish", 0.1143, 0.0971, 1),
    ("LightCurve", 0.1415, 0.1143, 3),
    ("Yoga", 0.0470, 0.0485, 1),
];

/// Table 8: 1-NN leave-one-out error under rotation-invariant Euclidean
/// and DTW (band learned on a training subsample), on the ten synthetic
/// stand-in datasets.
pub fn table8(quick: bool) -> Table {
    let seed = 20060900; // VLDB 2006
    let mut datasets: Vec<Dataset> = vec![
        shapes::face(seed),
        shapes::swedish_leaf(seed + 1),
        shapes::chicken(seed + 2),
        shapes::mixed_bag(seed + 3),
        shapes::osu_leaf(seed + 4),
        shapes::diatom(seed + 5),
        shapes::aircraft(seed + 6),
        shapes::fish(seed + 7),
        classification_set(seed + 8),
        shapes::yoga(seed + 9),
    ];
    if quick {
        datasets = datasets
            .into_iter()
            .map(|d| {
                let keep = (d.num_classes() * 8).min(d.len());
                d.subsample(keep, seed + 100)
            })
            .collect();
    }
    let mut table = Table::new([
        "Name",
        "Classes",
        "Instances",
        "Euclidean Error",
        "DTW Error {R}",
        "Paper ED",
        "Paper DTW {R}",
    ]);
    for (ds, paper) in datasets.iter().zip(TABLE8_PAPER.iter()) {
        let ed = one_nn_error(ds, Measure::Euclidean);
        let (band, dtw) = one_nn_error_dtw_learned_band(ds, &[1, 2, 3, 5, 7], 0.3, seed + 50);
        table.push_row([
            ds.name.clone(),
            ds.num_classes().to_string(),
            ds.len().to_string(),
            fmt_percent(ed.error_rate()),
            format!("{} {{{band}}}", fmt_percent(dtw.error_rate())),
            fmt_percent(paper.1),
            format!("{} {{{}}}", fmt_percent(paper.2), paper.3),
        ]);
    }
    table
}

// ---------------------------------------------------------------------
// Figures 3 / 16 / 17 / 18 — clustering sanity checks
// ---------------------------------------------------------------------

const SKULL_LEN: usize = 128;

fn skull_series(sp: &Species, jitter: f64, rng: &mut StdRng) -> Vec<f64> {
    let profile = skull_profile(&sp.params, 4 * SKULL_LEN, jitter, rng);
    let series =
        rotind_shape::centroid::radial_profile_to_series(&profile, SKULL_LEN).expect("non-empty");
    z_normalize_lossy(&series)
}

/// Rotation-invariant distance matrix over a set of series.
fn invariant_matrix(series: &[Vec<f64>], measure: Measure) -> DistanceMatrix {
    let engines: Vec<RotationQuery> = series
        .iter()
        .map(|s| {
            RotationQuery::with_measure(s, Invariance::Rotation, measure).expect("valid series")
        })
        .collect();
    DistanceMatrix::from_fn(series.len(), |i, j| {
        engines[i].distance_to(&series[j]).expect("equal lengths")
    })
}

/// Do leaves `a` and `b` form a sibling pair (share a parent) in the
/// dendrogram?
fn are_siblings(dend: &rotind_cluster::Dendrogram, a: usize, b: usize) -> bool {
    dend.merges()
        .iter()
        .any(|m| (m.left == a && m.right == b) || (m.left == b && m.right == a))
}

/// Figure 3: landmark (major-axis) alignment vs best-rotation alignment
/// on three primate skulls — two congeneric owl monkeys and an
/// orangutan. Prints both dendrograms; the table reports whether each
/// method pairs the congeners.
pub fn fig03() -> Table {
    let mut rng = StdRng::seed_from_u64(3);
    let mut series: Vec<Vec<f64>> = FIGURE3_TRIO
        .iter()
        .map(|sp| skull_series(sp, 0.2, &mut rng))
        .collect();
    // "A small amount of rotation error results in a large difference":
    // present each skull at a random rotation, and give specimen B the
    // paper's single-extra-pixel analogue — a small protrusion at 90° to
    // its current major axis, sized to just overtake it (Zunic et al.
    // [45] show one pixel can rotate the major axis by 90°). The
    // protrusion barely moves the rotation-invariant distance but swings
    // the landmark by a quarter turn.
    for s in series.iter_mut() {
        let shift = rng.random_range(0..SKULL_LEN);
        *s = rotated(s, shift);
    }
    {
        let s = &mut series[1];
        let n = s.len();
        // Current major-axis position: argmax of r(i)² + r(i+n/2)².
        let axis = (0..n)
            .max_by(|&a, &b| {
                let da = s[a] * s[a] + s[(a + n / 2) % n] * s[(a + n / 2) % n];
                let db = s[b] * s[b] + s[(b + n / 2) % n] * s[(b + n / 2) % n];
                da.total_cmp(&db)
            })
            .expect("non-empty");
        let d_axis = s[axis] * s[axis] + s[(axis + n / 2) % n] * s[(axis + n / 2) % n];
        let p = (axis + n / 4) % n;
        let needed = (d_axis - s[(p + n / 2) % n] * s[(p + n / 2) % n]).max(0.0);
        s[p] = s[p].max(needed.sqrt() + 0.3);
    }

    let names: Vec<&str> = FIGURE3_TRIO.iter().map(|sp| sp.name).collect();

    // Landmark method: rotate every series to its major axis, then plain
    // Euclidean clustering.
    let landmarked: Vec<Vec<f64>> = series.iter().map(|s| align_to_major_axis(s)).collect();
    let landmark_dend = cluster_series(&landmarked, Linkage::Average);
    println!(
        "Landmark (major axis) alignment:\n{}",
        landmark_dend.render(&names)
    );

    // Best rotation: rotation-invariant distances.
    let matrix = invariant_matrix(&series, Measure::Euclidean);
    let best_dend = rotind_cluster::linkage::cluster(&matrix, Linkage::Average);
    println!("Best rotation alignment:\n{}", best_dend.render(&names));

    let mut table = Table::new(["method", "owl monkeys paired", "verdict"]);
    for (method, dend) in [("landmark", &landmark_dend), ("best-rotation", &best_dend)] {
        let paired = are_siblings(dend, 0, 1);
        table.push_row([
            method.to_string(),
            paired.to_string(),
            if paired {
                "correct".into()
            } else {
                "biologically meaningless".to_string()
            },
        ]);
    }
    table
}

/// Figure 16: group-average clustering of eight primate skulls under
/// rotation-invariant Euclidean distance. The table reports, per
/// group, whether its two specimens form a sibling pair.
pub fn fig16() -> Table {
    let mut rng = StdRng::seed_from_u64(16);
    let series: Vec<Vec<f64>> = PRIMATES
        .iter()
        .map(|sp| {
            let s = skull_series(sp, 0.25, &mut rng);
            let shift = rng.random_range(0..SKULL_LEN);
            rotated(&s, shift)
        })
        .collect();
    let matrix = invariant_matrix(&series, Measure::Euclidean);
    let dend = rotind_cluster::linkage::cluster(&matrix, Linkage::Average);
    let names: Vec<&str> = PRIMATES.iter().map(|sp| sp.name).collect();
    println!("{}", dend.render(&names));
    let ccc = rotind_cluster::cophenetic::cophenetic_correlation(&dend, &matrix);

    let mut table = Table::new(["group", "members", "siblings"]);
    for pair in [(0usize, 1usize), (2, 3), (4, 5), (6, 7)] {
        table.push_row([
            PRIMATES[pair.0].group.to_string(),
            format!("{} + {}", PRIMATES[pair.0].name, PRIMATES[pair.1].name),
            are_siblings(&dend, pair.0, pair.1).to_string(),
        ]);
    }
    table.push_row([
        "cophenetic correlation".to_string(),
        format!("{ccc:.3}"),
        String::new(),
    ]);
    table
}

/// Figure 17: group-average clustering of fourteen reptile skulls under
/// rotation-invariant DTW. The table reports the purity of each
/// taxonomic group at the five-cluster cut.
pub fn fig17() -> Table {
    let mut rng = StdRng::seed_from_u64(17);
    let series: Vec<Vec<f64>> = REPTILES
        .iter()
        .map(|sp| {
            let s = skull_series(sp, 0.2, &mut rng);
            let shift = rng.random_range(0..SKULL_LEN);
            rotated(&s, shift)
        })
        .collect();
    let measure = Measure::Dtw(DtwParams::new(3));
    let matrix = invariant_matrix(&series, measure);
    let dend = rotind_cluster::linkage::cluster(&matrix, Linkage::Average);
    let names: Vec<&str> = REPTILES.iter().map(|sp| sp.name).collect();
    println!("{}", dend.render(&names));

    // Purity at the K = number-of-groups cut.
    let groups: Vec<&str> = REPTILES.iter().map(|sp| sp.group).collect();
    let unique: Vec<&str> = {
        let mut u = groups.clone();
        u.dedup();
        let mut seen = Vec::new();
        for g in u {
            if !seen.contains(&g) {
                seen.push(g);
            }
        }
        seen
    };
    let ccc = rotind_cluster::cophenetic::cophenetic_correlation(&dend, &matrix);
    let cut = dend.cut(unique.len());
    let mut table = Table::new(["cluster", "dominant group", "purity", "size"]);
    for (i, members) in cut.iter().enumerate() {
        let mut counts: Vec<(&str, usize)> = Vec::new();
        for &m in members {
            match counts.iter_mut().find(|(g, _)| *g == groups[m]) {
                Some((_, c)) => *c += 1,
                None => counts.push((groups[m], 1)),
            }
        }
        let (dom, c) = counts.iter().max_by_key(|(_, c)| *c).expect("non-empty");
        table.push_row([
            i.to_string(),
            dom.to_string(),
            fmt_percent(*c as f64 / members.len() as f64),
            members.len().to_string(),
        ]);
    }
    table.push_row([
        "cophenetic correlation".to_string(),
        format!("{ccc:.3}"),
        String::new(),
        String::new(),
    ]);
    table
}

/// Figure 18: three Lepidoptera plus articulated ("bent hindwing")
/// copies, clustered under rotation-invariant Euclidean distance. The
/// correct outcome pairs every bent copy with its original.
pub fn fig18() -> Table {
    let mut rng = StdRng::seed_from_u64(18);
    let n = 128;
    let mut series: Vec<Vec<f64>> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for sp in &LEPIDOPTERA {
        let profile = butterfly_profile(&sp.params, 4 * n, 0.0, &mut rng);
        let bent = bend_hindwing(&profile, 0.18);
        for (label, p) in [("", &profile), (" (bent wing)", &bent)] {
            let s = rotind_shape::centroid::radial_profile_to_series(p, n).expect("non-empty");
            let s = z_normalize_lossy(&s);
            let shift = rng.random_range(0..n);
            series.push(rotated(&s, shift));
            names.push(format!("{}{}", sp.name, label));
        }
    }
    let matrix = invariant_matrix(&series, Measure::Euclidean);
    let dend = rotind_cluster::linkage::cluster(&matrix, Linkage::Average);
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    println!("{}", dend.render(&name_refs));

    let mut table = Table::new(["specimen", "bent copy paired with original"]);
    #[allow(clippy::needless_range_loop)] // index used across multiple slices
    for i in 0..LEPIDOPTERA.len() {
        table.push_row([
            LEPIDOPTERA[i].name.to_string(),
            are_siblings(&dend, 2 * i, 2 * i + 1).to_string(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------
// Figures 19–23 — steps-ratio sweeps
// ---------------------------------------------------------------------

/// Query count per database size: the paper averages 50 runs; the huge
/// sizes get fewer to keep wall time sane (documented in
/// EXPERIMENTS.md).
fn queries_for(m: usize, quick: bool) -> usize {
    if quick {
        3
    } else if m <= 2000 {
        15
    } else {
        6
    }
}

fn run_sweep(
    pool: &[Vec<f64>],
    sizes: &[usize],
    measure: Measure,
    algorithms: &[SearchAlgorithm],
    quick: bool,
) -> Vec<(SweepPoint, QueryTrace)> {
    sizes
        .iter()
        .map(|&m| {
            let q = queries_for(m, quick);
            speedup_sweep_traced(pool, &[m], q, measure, algorithms)
                .pop()
                .expect("one point per size")
        })
        .collect()
}

/// The paper's Figure 19/20 size axis.
pub fn projectile_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![32, 128, 512]
    } else {
        vec![32, 64, 125, 250, 500, 1000, 2000, 4000, 8000, 16000]
    }
}

/// A pool of projectile-point series: the largest database size plus
/// enough extra items to serve as queries.
pub fn projectile_pool(quick: bool) -> Vec<Vec<f64>> {
    let max = *projectile_sizes(quick).last().expect("non-empty sizes");
    let n = 251;
    shapes::projectile_points(max + 64, n, 1906).items
}

/// Figure 19: Projectile Points (n = 251), Euclidean; brute force, FFT,
/// early abandon and wedge, as step ratios to brute force.
pub fn fig19(quick: bool) -> Table {
    let pool = projectile_pool(quick);
    let algorithms = [
        SearchAlgorithm::BruteForce,
        SearchAlgorithm::Fft,
        SearchAlgorithm::EarlyAbandon,
        SearchAlgorithm::Wedge,
    ];
    let points = run_sweep(
        &pool,
        &projectile_sizes(quick),
        Measure::Euclidean,
        &algorithms,
        quick,
    );
    sweep_table(&points, &algorithms)
}

/// Figure 20: Projectile Points, DTW. "Brute force" is unconstrained
/// DTW; "brute force R=5" the banded one; early abandon and wedge both
/// use R = 5. The inset of the paper (m = 16,000) is the last row.
pub fn fig20(quick: bool) -> Table {
    let pool = projectile_pool(quick);
    let n = pool[0].len();
    let banded = Measure::Dtw(DtwParams::new(5));
    let unconstrained = Measure::Dtw(DtwParams::new(n - 1));
    let sizes = projectile_sizes(quick);
    let algorithms = [SearchAlgorithm::EarlyAbandon, SearchAlgorithm::Wedge];

    let mut headers = vec![
        "m",
        "brute-force",
        "brute-force-R5",
        "early-abandon",
        "wedge",
    ];
    headers.extend(PRUNE_HEADERS);
    let mut table = Table::new(headers);
    for &m in &sizes {
        let q = queries_for(m, quick);
        let brute_unc = rotind_eval::speedup::brute_force_steps(m, n, n, unconstrained) as f64;
        let brute_banded = rotind_eval::speedup::brute_force_steps(m, n, n, banded) as f64;
        let mut row = vec![
            m.to_string(),
            fmt_ratio(1.0),
            fmt_ratio(brute_banded / brute_unc),
        ];
        let (point, trace) = speedup_sweep_traced(&pool, &[m], q, banded, &algorithms)
            .pop()
            .expect("one point");
        for (_, ratio_banded) in &point.ratios {
            // speedup_sweep normalises by the banded brute force; rescale
            // to the unconstrained denominator used in Figure 20.
            row.push(fmt_ratio(ratio_banded * brute_banded / brute_unc));
        }
        row.extend(prune_cells(&trace));
        table.push_row(row);
    }
    table
}

/// Heterogeneous pool (length 1,024): all shape datasets + projectile
/// points + light curves, shuffled.
pub fn heterogeneous_pool(quick: bool) -> Vec<Vec<f64>> {
    let n = 1024;
    let mut items = if quick {
        let mut ds = shapes::mixed_bag(77).resampled(n).items;
        ds.extend(shapes::projectile_points(400, n, 78).items);
        ds
    } else {
        let mut ds = shapes::heterogeneous(n, 77).items;
        ds.extend(light_curves(954, n, 79).items);
        ds
    };
    shuffle(&mut items, 4242);
    items
}

/// Figure 21 size axis.
pub fn heterogeneous_sizes(pool_len: usize, quick: bool) -> Vec<usize> {
    let base = if quick {
        vec![32, 128, 400]
    } else {
        vec![32, 64, 125, 250, 500, 1000, 2000, 4000, 5500]
    };
    base.into_iter().filter(|&m| m + 16 <= pool_len).collect()
}

/// Figure 21: the heterogeneous database (n = 1,024), Euclidean (left
/// half) and DTW R = 5 (right half).
pub fn fig21(quick: bool) -> Table {
    let pool = heterogeneous_pool(quick);
    let sizes = heterogeneous_sizes(pool.len(), quick);
    let ed_algorithms = [
        SearchAlgorithm::BruteForce,
        SearchAlgorithm::Fft,
        SearchAlgorithm::EarlyAbandon,
        SearchAlgorithm::Wedge,
    ];
    let dtw_algorithms = [SearchAlgorithm::EarlyAbandon, SearchAlgorithm::Wedge];
    let banded = Measure::Dtw(DtwParams::new(5));
    let ed_points = run_sweep(&pool, &sizes, Measure::Euclidean, &ed_algorithms, quick);
    let dtw_points = run_sweep(&pool, &sizes, banded, &dtw_algorithms, quick);

    let mut table = Table::new([
        "m",
        "ED:fft",
        "ED:early-abandon",
        "ED:wedge",
        "DTW:early-abandon",
        "DTW:wedge",
    ]);
    for ((e, _), (d, _)) in ed_points.iter().zip(&dtw_points) {
        let get = |pt: &SweepPoint, alg: SearchAlgorithm| {
            pt.ratios
                .iter()
                .find(|(a, _)| *a == alg)
                .map(|(_, r)| *r)
                .unwrap_or(f64::NAN)
        };
        table.push_row([
            e.m.to_string(),
            fmt_ratio(get(e, SearchAlgorithm::Fft)),
            fmt_ratio(get(e, SearchAlgorithm::EarlyAbandon)),
            fmt_ratio(get(e, SearchAlgorithm::Wedge)),
            fmt_ratio(get(d, SearchAlgorithm::EarlyAbandon)),
            fmt_ratio(get(d, SearchAlgorithm::Wedge)),
        ]);
    }
    table
}

/// Light-curve pool for Figures 22/23 (n = 1,024 like the paper).
pub fn lightcurve_pool(quick: bool) -> Vec<Vec<f64>> {
    let n = if quick { 256 } else { 1024 };
    let m = if quick { 300 } else { 953 + 32 };
    light_curves(m, n, 2006).items
}

/// Figure 22/23 size axis.
pub fn lightcurve_sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![32, 128, 256]
    } else {
        vec![32, 64, 125, 250, 500, 953]
    }
}

/// Figure 22: star light curves, Euclidean.
pub fn fig22(quick: bool) -> Table {
    let pool = lightcurve_pool(quick);
    let algorithms = [
        SearchAlgorithm::BruteForce,
        SearchAlgorithm::Fft,
        SearchAlgorithm::EarlyAbandon,
        SearchAlgorithm::Wedge,
    ];
    let points = run_sweep(
        &pool,
        &lightcurve_sizes(quick),
        Measure::Euclidean,
        &algorithms,
        quick,
    );
    sweep_table(&points, &algorithms)
}

/// Figure 23: star light curves, DTW (brute force unconstrained and
/// R = 5 denominators as in Figure 20).
pub fn fig23(quick: bool) -> Table {
    let pool = lightcurve_pool(quick);
    let n = pool[0].len();
    let banded = Measure::Dtw(DtwParams::new(5));
    let unconstrained = Measure::Dtw(DtwParams::new(n - 1));
    let algorithms = [SearchAlgorithm::EarlyAbandon, SearchAlgorithm::Wedge];
    let mut table = Table::new([
        "m",
        "brute-force",
        "brute-force-R5",
        "early-abandon",
        "wedge",
    ]);
    for &m in &lightcurve_sizes(quick) {
        let q = queries_for(m, quick);
        let brute_unc = rotind_eval::speedup::brute_force_steps(m, n, n, unconstrained) as f64;
        let brute_banded = rotind_eval::speedup::brute_force_steps(m, n, n, banded) as f64;
        let mut row = vec![
            m.to_string(),
            fmt_ratio(1.0),
            fmt_ratio(brute_banded / brute_unc),
        ];
        let point = speedup_sweep(&pool, &[m], q, banded, &algorithms)
            .pop()
            .expect("one point");
        for (_, ratio_banded) in &point.ratios {
            row.push(fmt_ratio(ratio_banded * brute_banded / brute_unc));
        }
        table.push_row(row);
    }
    table
}

// ---------------------------------------------------------------------
// Figure 24 — disk accesses
// ---------------------------------------------------------------------

/// Figure 24: fraction of items retrieved from disk to answer a 1-NN
/// query through the VP-tree index, for D ∈ {4, 8, 16, 32}, wedge-ED
/// (Fourier magnitudes) and wedge-DTW (PAA envelopes), on the projectile
/// and heterogeneous databases.
pub fn fig24(quick: bool) -> Table {
    let dims = [4usize, 8, 16, 32];
    let num_queries = if quick { 3 } else { 15 };
    let mut table = Table::new(["database", "measure", "D", "fraction retrieved"]);

    let mut run = |name: &str, pool: Vec<Vec<f64>>| {
        let m = pool.len() - num_queries;
        let db: Vec<Vec<f64>> = pool[..m].to_vec();
        let queries = &pool[m..];
        for (measure, repr, label) in [
            (
                Measure::Euclidean,
                ReducedRepr::FourierMagnitude,
                "wedge-ED",
            ),
            (
                Measure::Dtw(DtwParams::new(5)),
                ReducedRepr::Paa,
                "wedge-DTW",
            ),
        ] {
            for &d in &dims {
                let index = IndexedDatabase::build(db.clone(), d, repr).expect("valid database");
                let mut total_fraction = 0.0;
                for q in queries {
                    let (_, stats) = index.nearest(q, measure).expect("valid query");
                    total_fraction += stats.fraction();
                }
                table.push_row([
                    name.to_string(),
                    label.to_string(),
                    d.to_string(),
                    fmt_ratio(total_fraction / queries.len() as f64),
                ]);
            }
        }
    };

    let projectile = if quick {
        shapes::projectile_points(400 + num_queries, 251, 1906).items
    } else {
        // The full 16,000-item database is indexable, but refining at
        // n = 251 over repeated D values is the wall-clock bottleneck;
        // 4,000 items preserve the fraction-retrieved behaviour.
        shapes::projectile_points(4000 + num_queries, 251, 1906).items
    };
    run("projectile-points", projectile);

    let mut hetero = heterogeneous_pool(quick);
    if !quick {
        hetero.truncate(3000 + num_queries);
    }
    run("heterogeneous", hetero);
    table
}

// ---------------------------------------------------------------------
// Figure 14 — LCSS and partial occlusion
// ---------------------------------------------------------------------

/// Figure 14: the original Skhul V skull is missing its nose region, so
/// it matches a modern human poorly even after DTW alignment, while
/// LCSS simply leaves the missing region unmatched. We reproduce the
/// effect: a Skhul-V profile with a damaged (flattened) nasal section is
/// ranked against a modern human and an orangutan under all three
/// measures; only LCSS should keep the human as the clear best match.
pub fn fig14() -> Table {
    use rotind_distance::LcssParams;
    let n = 128usize;
    let mut rng = StdRng::seed_from_u64(14);
    let series_of = |sp: &Species, rng: &mut StdRng| -> Vec<f64> {
        let profile = skull_profile(&sp.params, 4 * n, 0.0, rng);
        z_normalize_lossy(
            &rotind_shape::centroid::radial_profile_to_series(&profile, n).expect("non-empty"),
        )
    };
    let human = series_of(&PRIMATES[0], &mut rng);
    let orangutan = series_of(&PRIMATES[2], &mut rng);
    let mut skhul = series_of(&PRIMATES[1], &mut rng);
    // Damage: the nasal region (around φ = 0, where the snout maps) is
    // missing — the epoxy-free original. Flatten ~12% of the boundary.
    let damage = n / 8;
    for item in skhul.iter_mut().take(damage / 2) {
        *item = -1.5;
    }
    for item in skhul.iter_mut().rev().take(damage / 2) {
        *item = -1.5;
    }
    let skhul = rotated(&skhul, rng.random_range(0..n));

    let measures: [(&str, Measure); 3] = [
        ("Euclidean", Measure::Euclidean),
        ("DTW(R=3)", Measure::Dtw(DtwParams::new(3))),
        ("LCSS", Measure::Lcss(LcssParams::for_normalized(n))),
    ];
    let mut table = Table::new([
        "measure",
        "d(SkhulV, human)",
        "d(SkhulV, orangutan)",
        "margin",
    ]);
    for (name, measure) in measures {
        let engine =
            RotationQuery::with_measure(&skhul, Invariance::Rotation, measure).expect("valid");
        let dh = engine.distance_to(&human).expect("len");
        let do_ = engine.distance_to(&orangutan).expect("len");
        table.push_row([
            name.to_string(),
            format!("{dh:.4}"),
            format!("{do_:.4}"),
            format!("{:.3}", do_ / dh.max(1e-9)),
        ]);
    }
    table
}

// ---------------------------------------------------------------------
// Empirical O(n^1.06) scaling
// ---------------------------------------------------------------------

/// The empirical per-comparison complexity of the wedge method: sweep
/// the series length, measure average steps per item comparison
/// (including the amortised wedge-build charge), fit the log-log slope.
pub fn scaling(quick: bool) -> Table {
    let lengths: Vec<usize> = if quick {
        vec![64, 128, 256]
    } else {
        vec![64, 128, 251, 512, 1024]
    };
    // The startup charge is amortised over the database, so a small m
    // would dominate the per-comparison cost with the O(n²) build; the
    // paper's exponent is reported on large collections.
    let m = if quick { 150 } else { 2000 };
    let queries = if quick { 2 } else { 5 };
    let mut points = Vec::new();
    let mut table = Table::new(["n", "steps/comparison", "brute (n^2)"]);
    for &n in &lengths {
        let ds = shapes::projectile_points(m + queries, n, 777);
        let db = &ds.items[..m];
        let mut total = 0u64;
        for q in 0..queries {
            let query = &ds.items[m + q];
            let mut counter = StepCounter::new();
            let engine = RotationQuery::new(query, Invariance::Rotation).expect("valid query");
            engine
                .nearest_with_steps(db, &mut counter)
                .expect("valid db");
            total += counter.steps() + wedge_startup_steps(n, n);
        }
        let per_comparison = total as f64 / (queries * m) as f64;
        points.push(ScalingPoint {
            n,
            steps_per_comparison: per_comparison,
        });
        table.push_row([
            n.to_string(),
            format!("{per_comparison:.1}"),
            (n * n).to_string(),
        ]);
    }
    let exponent = empirical_exponent(&points);
    table.push_row([
        "fitted exponent".to_string(),
        format!("{exponent:.3}"),
        "paper: 1.06".to_string(),
    ]);
    table
}

// ---------------------------------------------------------------------
// Parallel scan — thread-count sweep
// ---------------------------------------------------------------------

/// Thread-count sweep of the parallel chunked scan (DESIGN.md §10) on a
/// Table 8–style shape workload: median wall-clock per thread count and
/// the speedup over the single-thread scan. Answers are asserted
/// identical across counts — the parallel scan's determinism guarantee
/// — so only the time column varies. On a single-core host the sweep
/// still runs; speedups then hover near 1.0. The auto row honours
/// `ROTIND_THREADS`.
pub fn thread_scaling(quick: bool) -> Table {
    let seed = 20060906;
    let ds = shapes::mixed_bag(seed);
    let keep = if quick { ds.len().min(64) } else { ds.len() };
    let ds = ds.subsample(keep, seed + 1);
    // The paper's protocol: the query is removed from the dataset. The
    // generated dataset is never empty; a bench harness should stop on
    // a malformed workload rather than emit bogus rows.
    // rotind-lint: allow(no-panic)
    let query = ds.items.last().expect("non-empty dataset").clone();
    // rotind-lint: allow(no-index)
    let db = &ds.items[..ds.len() - 1];
    let repeats = if quick { 3 } else { 9 };
    let auto = rotind_index::default_threads();
    let mut counts = vec![1usize, 2, 4, 8];
    if !counts.contains(&auto) {
        counts.push(auto);
    }
    let points = thread_sweep(db, &query, Measure::Euclidean, &counts, repeats);
    // rotind-lint: allow(no-panic)
    let engine = RotationQuery::new(&query, Invariance::Rotation).expect("valid query");
    // rotind-lint: allow(no-panic)
    let sequential = engine.nearest(db).expect("non-empty database");
    let mut table = Table::new([
        "threads", "wall-ms", "speedup", "p50-ms", "p95-ms", "p99-ms", "nn-index",
    ]);
    for pt in &points {
        let hit = engine
            .nearest_parallel(db, pt.threads)
            // rotind-lint: allow(no-panic)
            .expect("non-empty database");
        assert_eq!(
            hit, sequential,
            "parallel scan must stay exact at {} threads",
            pt.threads
        );
        table.push_row([
            pt.threads.to_string(),
            format!("{:.3}", pt.wall_nanos as f64 / 1e6),
            fmt_ratio(pt.speedup),
            format!("{:.3}", pt.p50_nanos as f64 / 1e6),
            format!("{:.3}", pt.p95_nanos as f64 / 1e6),
            format!("{:.3}", pt.p99_nanos as f64 / 1e6),
            hit.index.to_string(),
        ]);
    }
    table
}

// ---------------------------------------------------------------------
// Sanity helper reused by the `figures` bench and tests
// ---------------------------------------------------------------------

/// One tiny end-to-end wedge query (used by smoke benches).
pub fn smoke_query() -> u64 {
    let ds = shapes::projectile_points(64, 64, 5);
    let engine = RotationQuery::new(&ds.items[0], Invariance::Rotation).expect("valid");
    let mut counter = StepCounter::new();
    let _ = scan_steps(
        &ds.items[1..],
        &ds.items[0],
        SearchAlgorithm::Wedge,
        Measure::Euclidean,
    );
    engine
        .nearest_with_steps(&ds.items[1..], &mut counter)
        .expect("valid db");
    counter.steps()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig03_best_rotation_pairs_congeners() {
        let table = fig03();
        let text = table.render();
        assert!(text.contains("best-rotation  true"), "table:\n{text}");
    }

    #[test]
    fn fig14_lcss_margin_is_best() {
        let csv = fig14().to_csv();
        let margin = |name: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with(name))
                .and_then(|l| l.split(',').next_back())
                .and_then(|v| v.parse().ok())
                .expect("margin cell")
        };
        assert!(margin("LCSS") > margin("Euclidean"));
        assert!(margin("LCSS") > margin("DTW"));
        assert!(margin("LCSS") > 1.0, "human must stay the better match");
    }

    #[test]
    fn fig16_pairs_every_group() {
        let text = fig16().render();
        let fails = text.matches("false").count();
        assert!(fails <= 1, "at most one group may fail to pair:\n{text}");
    }

    #[test]
    fn fig18_bent_copies_pair_with_originals() {
        let text = fig18().render();
        assert_eq!(text.matches("true").count(), 3, "table:\n{text}");
    }

    #[test]
    fn size_axes_are_sane() {
        let quick = projectile_sizes(true);
        let full = projectile_sizes(false);
        assert!(quick.len() < full.len());
        assert_eq!(*full.last().unwrap(), 16000);
        assert!(full.windows(2).all(|w| w[0] < w[1]), "ascending");
        let het = heterogeneous_sizes(6000, false);
        assert!(het.iter().all(|&m| m + 16 <= 6000));
        assert!(heterogeneous_sizes(50, false).iter().all(|&m| m <= 34));
        let lc = lightcurve_sizes(false);
        assert_eq!(*lc.last().unwrap(), 953);
    }

    #[test]
    fn queries_scale_down_for_large_m() {
        assert!(queries_for(32, false) > queries_for(16000, false));
        assert_eq!(queries_for(32, true), queries_for(16000, true));
    }

    #[test]
    fn table8_quick_runs_and_orders_measures() {
        let table = table8(true);
        assert_eq!(table.len(), 10);
    }

    #[test]
    fn fig19_quick_wedge_beats_brute() {
        let table = fig19(true);
        let csv = table.to_csv();
        let last = csv.lines().last().expect("non-empty");
        let cells: Vec<&str> = last.split(',').collect();
        let wedge: f64 = cells[4].parse().expect("ratio");
        assert!(wedge < 0.5, "wedge ratio at largest m: {wedge}");
    }

    #[test]
    fn scaling_quick_exponent_is_subquadratic() {
        let table = scaling(true);
        let text = table.render();
        let line = text
            .lines()
            .find(|l| l.contains("fitted exponent"))
            .expect("exponent row");
        let value: f64 = line
            .split_whitespace()
            .nth(2)
            .expect("value")
            .parse()
            .expect("float");
        assert!(value < 1.9, "wedge scaling should be subquadratic: {value}");
    }
}
