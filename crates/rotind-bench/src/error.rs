//! Typed errors and exit codes for the bench binaries.
//!
//! The reproduction and diagnostic binaries used to `unwrap()` their
//! way through engine construction and file I/O, which turns a missing
//! directory or a bad flag into a panic backtrace and a blanket exit
//! code 101. Each failure class now has a [`BenchError`] variant with
//! its own process exit code, so CI and scripts can tell *what* failed
//! without parsing stderr:
//!
//! | code | variant | meaning |
//! |------|---------|---------|
//! | 2 | [`BenchError::Usage`] | bad command-line arguments |
//! | 3 | [`BenchError::Io`] | a file read/write failed |
//! | 4 | [`BenchError::Json`] | a results/baseline file failed to parse |
//! | 5 | [`BenchError::Data`] | a dataset was empty or malformed |
//! | 6 | [`BenchError::Engine`] | the engine rejected a query or database |
//!
//! The `regress` gate additionally keeps its documented `0` (pass) /
//! `1` (regression) contract; only its *infrastructure* failures use
//! these codes.

use std::fmt;
use std::path::PathBuf;
use std::process::ExitCode;

/// A failure in a bench binary, mapped to a stable exit code.
#[derive(Debug)]
pub enum BenchError {
    /// Bad command-line arguments (exit 2).
    Usage(String),
    /// File I/O failed (exit 3).
    Io {
        /// The path being read or written.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A JSON artefact failed to parse (exit 4).
    Json {
        /// The file being parsed.
        path: PathBuf,
        /// What was wrong with it.
        message: String,
    },
    /// A dataset was unusable (exit 5).
    Data(String),
    /// The engine rejected a query or database (exit 6).
    Engine(String),
}

impl BenchError {
    /// Convenience constructor for [`BenchError::Io`].
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        BenchError::Io {
            path: path.into(),
            source,
        }
    }

    /// Convenience constructor for [`BenchError::Json`].
    pub fn json(path: impl Into<PathBuf>, message: impl Into<String>) -> Self {
        BenchError::Json {
            path: path.into(),
            message: message.into(),
        }
    }

    /// The process exit code for this failure class.
    pub fn exit_code(&self) -> u8 {
        match self {
            BenchError::Usage(_) => 2,
            BenchError::Io { .. } => 3,
            BenchError::Json { .. } => 4,
            BenchError::Data(_) => 5,
            BenchError::Engine(_) => 6,
        }
    }
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Usage(msg) => write!(f, "usage: {msg}"),
            BenchError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            BenchError::Json { path, message } => write!(f, "{}: {message}", path.display()),
            BenchError::Data(msg) => write!(f, "dataset: {msg}"),
            BenchError::Engine(msg) => write!(f, "engine: {msg}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<rotind_ts::TsError> for BenchError {
    fn from(e: rotind_ts::TsError) -> Self {
        BenchError::Engine(e.to_string())
    }
}

impl From<rotind_index::SearchError> for BenchError {
    fn from(e: rotind_index::SearchError) -> Self {
        BenchError::Engine(e.to_string())
    }
}

/// Turn a fallible bin body into the process exit status: errors print
/// one line to stderr and exit with their class code.
pub fn exit(result: Result<(), BenchError>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // Binaries report failures on stderr by design.
            // rotind-lint: allow(no-print)
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_stable() {
        let errors = [
            BenchError::Usage("x".into()),
            BenchError::io(
                "a.json",
                std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
            ),
            BenchError::json("a.json", "bad"),
            BenchError::Data("empty".into()),
            BenchError::Engine("k = 0".into()),
        ];
        let codes: Vec<u8> = errors.iter().map(BenchError::exit_code).collect();
        assert_eq!(codes, vec![2, 3, 4, 5, 6]);
        let mut unique = codes.clone();
        unique.dedup();
        assert_eq!(unique, codes, "exit codes must be distinct");
    }

    #[test]
    fn display_names_the_path() {
        let e = BenchError::io(
            "results/x.json",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.to_string().contains("results/x.json"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn engine_errors_convert() {
        let ts: BenchError = rotind_ts::TsError::Empty.into();
        assert_eq!(ts.exit_code(), 6);
        let search: BenchError = rotind_index::SearchError::EmptyDatabase.into();
        assert_eq!(search.exit_code(), 6);
    }
}
