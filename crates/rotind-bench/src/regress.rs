//! Noise-aware performance-regression gate behind `cargo run -p
//! rotind-bench --bin regress`.
//!
//! The gate compares a fresh measurement of a small deterministic
//! workload suite against a committed baseline
//! (`results/bench_baseline.json`) and exits nonzero when the current
//! build regresses. Two thresholds with very different characters:
//!
//! * **`num_steps`** — the paper's §5.3 machine-independent cost model.
//!   Step counts are exactly reproducible for a fixed workload, so any
//!   increase beyond [`STEPS_TOLERANCE`] (a 2% allowance for benign
//!   accounting drift) fails the gate *on every machine*, including CI
//!   hosts that never produced the baseline.
//! * **wall-clock** — noisy and machine-dependent, so the median-of-N
//!   latency is compared at the loose [`WALL_TOLERANCE`] and *only*
//!   when the baseline was captured on the same host (matching
//!   [`hostname`]). A baseline checked in from a developer machine
//!   never causes CI wall-clock flakes.
//!
//! `ROTIND_REGRESS_INJECT=<factor>` multiplies the current run's
//! measurements before comparison — a self-test hook: injecting `1.2`
//! must trip the step gate, proving the gate can fail.
//!
//! The workspace vendors no JSON library, so this module carries a
//! minimal recursive-descent parser for the baseline schema (the same
//! hand-rolled-writer idiom as `bin/cascade.rs`).

use std::fmt::Write as _;

/// Maximum tolerated relative increase in `num_steps` (always enforced).
pub const STEPS_TOLERANCE: f64 = 0.02;
/// Maximum tolerated relative increase in median wall-clock (enforced
/// only when the baseline host matches the current host).
pub const WALL_TOLERANCE: f64 = 0.30;

/// One workload's measured cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measurement {
    /// Stable workload name (the join key against the baseline).
    pub name: String,
    /// Whether `steps` is exactly reproducible for this workload.
    /// Parallel scans race on the shared best-so-far, so their step
    /// totals vary run to run and only wall-clock is gated.
    pub deterministic: bool,
    /// Total `num_steps` over the workload's queries.
    pub steps: u64,
    /// Median wall-clock nanoseconds over the workload's repeats.
    pub wall_ns: u64,
}

/// A committed (or freshly measured) set of workload costs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Free-text capture note (machine, date, repeat count).
    pub comment: String,
    /// Host the baseline was captured on — wall-clock comparisons are
    /// skipped when it differs from the current [`hostname`].
    pub host: String,
    /// Whether the baseline was captured under `ROTIND_QUICK=1`. Step
    /// totals are scale-dependent, so quick and full baselines are
    /// incomparable.
    pub quick: bool,
    /// Per-workload costs.
    pub entries: Vec<Measurement>,
}

impl Baseline {
    /// Serialise to pretty-printed JSON (schema version 1).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"comment\": {},", json_string(&self.comment));
        let _ = writeln!(out, "  \"host\": {},", json_string(&self.host));
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": {}, \"deterministic\": {}, \"steps\": {}, \"wall_ns\": {}}}{}",
                json_string(&e.name),
                e.deterministic,
                e.steps,
                e.wall_ns,
                comma
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a baseline from JSON text.
    ///
    /// # Errors
    /// Returns a message when the text is not valid JSON or does not
    /// follow the baseline schema.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let value = parse_json(text)?;
        let obj = value
            .as_object()
            .ok_or("baseline: top level must be an object")?;
        let comment = get_str(obj, "comment").unwrap_or_default();
        let host = get_str(obj, "host").ok_or("baseline: missing string field \"host\"")?;
        let quick = get_bool(obj, "quick").ok_or("baseline: missing bool field \"quick\"")?;
        let entries_val = find(obj, "entries").ok_or("baseline: missing field \"entries\"")?;
        let raw = entries_val
            .as_array()
            .ok_or("baseline: \"entries\" must be an array")?;
        let mut entries = Vec::with_capacity(raw.len());
        for item in raw {
            let e = item
                .as_object()
                .ok_or("baseline: entry must be an object")?;
            entries.push(Measurement {
                name: get_str(e, "name").ok_or("baseline entry: missing \"name\"")?,
                deterministic: get_bool(e, "deterministic")
                    .ok_or("baseline entry: missing \"deterministic\"")?,
                steps: get_u64(e, "steps").ok_or("baseline entry: missing \"steps\"")?,
                wall_ns: get_u64(e, "wall_ns").ok_or("baseline entry: missing \"wall_ns\"")?,
            });
        }
        Ok(Baseline {
            comment,
            host,
            quick,
            entries,
        })
    }
}

/// Best-effort machine identity: `HOSTNAME` env var, then
/// `/etc/hostname`, then `"unknown"`. Used to decide whether baseline
/// wall-clock numbers are comparable to this run's.
pub fn hostname() -> String {
    if let Ok(h) = std::env::var("HOSTNAME") {
        let h = h.trim().to_string();
        if !h.is_empty() {
            return h;
        }
    }
    if let Ok(h) = std::fs::read_to_string("/etc/hostname") {
        let h = h.trim().to_string();
        if !h.is_empty() {
            return h;
        }
    }
    "unknown".to_string()
}

/// The `ROTIND_REGRESS_INJECT` factor (default 1.0).
///
/// # Errors
/// Returns a message when the variable is set but not a positive float.
pub fn inject_factor() -> Result<f64, String> {
    match std::env::var("ROTIND_REGRESS_INJECT") {
        Err(_) => Ok(1.0),
        Ok(raw) => match raw.trim().parse::<f64>() {
            Ok(f) if f.is_finite() && f > 0.0 => Ok(f),
            _ => Err(format!(
                "ROTIND_REGRESS_INJECT must be a positive float, got {raw:?}"
            )),
        },
    }
}

/// Multiply every measurement by `factor` (steps rounded) — the
/// synthetic-slowdown hook for gate self-tests.
pub fn apply_inject(entries: &mut [Measurement], factor: f64) {
    // 1.0 is the exact "not set" sentinel from `inject_factor`.
    // rotind-lint: allow(float-eq)
    if factor == 1.0 {
        return;
    }
    for e in entries.iter_mut() {
        e.steps = (e.steps as f64 * factor).round() as u64;
        e.wall_ns = (e.wall_ns as f64 * factor).round() as u64;
    }
}

/// Compare `current` against `baseline` and return one message per
/// regression (empty means the gate passes).
///
/// Step totals are gated at [`STEPS_TOLERANCE`] for deterministic
/// entries whenever the quick modes match; wall-clock is gated at
/// [`WALL_TOLERANCE`] only when the hosts also match. Entries present
/// on one side but not the other fail the gate — the suite and the
/// baseline must move together (`--update-baseline`).
pub fn compare(baseline: &Baseline, current: &Baseline) -> Vec<String> {
    let mut failures = Vec::new();
    if baseline.quick != current.quick {
        failures.push(format!(
            "baseline was captured with quick={} but this run has quick={} — \
             step totals are incomparable; re-capture with --update-baseline",
            baseline.quick, current.quick
        ));
        return failures;
    }
    let same_host = baseline.host == current.host;
    for base in &baseline.entries {
        let Some(cur) = current.entries.iter().find(|c| c.name == base.name) else {
            failures.push(format!(
                "workload {:?} is in the baseline but was not measured — \
                 update the suite and the baseline together",
                base.name
            ));
            continue;
        };
        if base.deterministic && cur.deterministic && base.steps > 0 {
            let rel = cur.steps as f64 / base.steps as f64 - 1.0;
            if rel > STEPS_TOLERANCE {
                failures.push(format!(
                    "{}: steps regressed {} -> {} (+{:.1}% > {:.0}% tolerance)",
                    base.name,
                    base.steps,
                    cur.steps,
                    rel * 100.0,
                    STEPS_TOLERANCE * 100.0
                ));
            }
        }
        if same_host && base.wall_ns > 0 {
            let rel = cur.wall_ns as f64 / base.wall_ns as f64 - 1.0;
            if rel > WALL_TOLERANCE {
                failures.push(format!(
                    "{}: median wall-clock regressed {:.3}ms -> {:.3}ms \
                     (+{:.1}% > {:.0}% tolerance, same host {:?})",
                    base.name,
                    base.wall_ns as f64 / 1e6,
                    cur.wall_ns as f64 / 1e6,
                    rel * 100.0,
                    WALL_TOLERANCE * 100.0,
                    baseline.host
                ));
            }
        }
    }
    for cur in &current.entries {
        if !baseline.entries.iter().any(|b| b.name == cur.name) {
            failures.push(format!(
                "workload {:?} has no baseline entry — re-run with --update-baseline",
                cur.name
            ));
        }
    }
    failures
}

// ---------------------------------------------------------------------
// Minimal JSON (the workspace vendors no serializer; see module docs)
// ---------------------------------------------------------------------

/// Escape a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(f64),
    Bool(bool),
    Null,
}

impl Json {
    fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }
    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }
}

fn find<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str(obj: &[(String, Json)], key: &str) -> Option<String> {
    match find(obj, key) {
        Some(Json::String(s)) => Some(s.clone()),
        _ => None,
    }
}

fn get_bool(obj: &[(String, Json)], key: &str) -> Option<bool> {
    match find(obj, key) {
        Some(Json::Bool(b)) => Some(*b),
        _ => None,
    }
}

fn get_u64(obj: &[(String, Json)], key: &str) -> Option<u64> {
    match find(obj, key) {
        // Counts in this schema stay far below 2^53, where f64 is exact;
        // `fract() == 0.0` is the IEEE-exact integrality test.
        // rotind-lint: allow(float-eq)
        Some(Json::Number(n)) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
        _ => None,
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("json: trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "json: expected {:?} at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        // `pos <= bytes.len()` always: it only advances past peeked bytes.
        // rotind-lint: allow(no-index)
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("json: invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("json: unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.consume(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("json: expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("json: expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("json: unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "json: unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "json: truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "json: bad \\u escape".to_string())?;
                            // Surrogate pairs never appear in this
                            // schema's ASCII-comment strings; reject
                            // rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| "json: \\u escape is not a scalar".to_string())?;
                            out.push(c);
                            self.pos = end;
                        }
                        other => {
                            return Err(format!("json: unknown escape \\{}", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid; `pos <= len` by peek-advance).
                    // rotind-lint: allow(no-index)
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "json: bad utf-8")?;
                    let c = s.chars().next().ok_or("json: unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        // `start <= pos <= len`: both only advance past peeked bytes.
        // rotind-lint: allow(no-index)
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "json: bad number".to_string())?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("json: invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, deterministic: bool, steps: u64, wall_ns: u64) -> Measurement {
        Measurement {
            name: name.to_string(),
            deterministic,
            steps,
            wall_ns,
        }
    }

    fn sample() -> Baseline {
        Baseline {
            comment: "captured for tests \"quoted\" ok".to_string(),
            host: "hostA".to_string(),
            quick: true,
            entries: vec![
                entry("euclid_nearest", true, 1_000_000, 5_000_000),
                entry("euclid_parallel4", false, 0, 2_000_000),
            ],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let b = sample();
        let text = b.to_json();
        assert_eq!(Baseline::from_json(&text).unwrap(), b);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"host\": }",
            "[1, 2,]nope",
            "{\"entries\": [{]}",
            "{\"a\": 1} trailing",
        ] {
            assert!(Baseline::from_json(bad).is_err(), "accepted {bad:?}");
        }
        // Valid JSON, wrong schema.
        assert!(Baseline::from_json("[1, 2]").is_err());
        assert!(Baseline::from_json("{\"host\": \"h\"}").is_err());
    }

    #[test]
    fn identical_runs_pass_the_gate() {
        let b = sample();
        assert!(compare(&b, &b).is_empty());
    }

    #[test]
    fn injected_step_slowdown_fails_the_gate() {
        let base = sample();
        let mut cur = base.clone();
        apply_inject(&mut cur.entries, 1.2);
        let fails = compare(&base, &cur);
        assert!(
            fails.iter().any(|f| f.contains("steps regressed")),
            "20% step inflation must trip the gate: {fails:?}"
        );
    }

    #[test]
    fn small_step_drift_is_tolerated() {
        let base = sample();
        let mut cur = base.clone();
        cur.entries[0].steps = 1_010_000; // +1% < 2% tolerance
        assert!(compare(&base, &cur).is_empty());
    }

    #[test]
    fn wall_clock_gated_only_on_the_same_host() {
        let base = sample();
        let mut cur = base.clone();
        for e in &mut cur.entries {
            e.wall_ns = (e.wall_ns as f64 * 1.5) as u64;
        }
        assert!(
            !compare(&base, &cur).is_empty(),
            "+50% wall on the same host must fail"
        );
        cur.host = "hostB".to_string();
        assert!(
            compare(&base, &cur).is_empty(),
            "a foreign-host baseline never gates wall-clock"
        );
    }

    #[test]
    fn nondeterministic_entries_skip_the_step_gate() {
        let base = sample();
        let mut cur = base.clone();
        cur.host = "hostB".to_string(); // disable wall gate
        cur.entries[1].steps = 10_000_000;
        assert!(compare(&base, &cur).is_empty());
    }

    #[test]
    fn quick_mode_mismatch_fails_loudly() {
        let base = sample();
        let mut cur = base.clone();
        cur.quick = false;
        let fails = compare(&base, &cur);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("incomparable"));
    }

    #[test]
    fn suite_and_baseline_must_move_together() {
        let base = sample();
        let mut cur = base.clone();
        cur.entries.remove(1);
        cur.entries.push(entry("brand_new", true, 1, 1));
        let fails = compare(&base, &cur);
        assert!(fails.iter().any(|f| f.contains("not measured")));
        assert!(fails.iter().any(|f| f.contains("no baseline entry")));
    }

    #[test]
    fn inject_factor_validates_the_env() {
        std::env::remove_var("ROTIND_REGRESS_INJECT");
        assert_eq!(inject_factor().unwrap(), 1.0);
        std::env::set_var("ROTIND_REGRESS_INJECT", "1.2");
        assert_eq!(inject_factor().unwrap(), 1.2);
        std::env::set_var("ROTIND_REGRESS_INJECT", "zero");
        assert!(inject_factor().is_err());
        std::env::remove_var("ROTIND_REGRESS_INJECT");
    }
}
