//! Bound-cascade ablation: run the same 1-NN workload under a ladder of
//! [`CascadeConfig`]s — from the legacy natural-order LB_Keogh scan to
//! the full four-tier cascade — and report, per configuration and
//! measure, the total `num_steps`, steps and wall-clock per query, the
//! steps-per-pair exponent (`ln(steps/pair)/ln(n)`, the paper's §5.3
//! framing), the per-tier tested/pruned counts from [`QueryTrace`],
//! and each tier's wall-clock and prunes-per-microsecond yield from the
//! [`Profiler`]'s online cost accounting.
//!
//! Besides the usual CSV table, the run writes machine-readable
//! `results/bench_cascade.json` for CI trending. `ROTIND_QUICK=1`
//! shrinks the workload for smoke runs.
//!
//! [`CascadeConfig`]: rotind_index::CascadeConfig
//! [`QueryTrace`]: rotind_obs::QueryTrace
//! [`Profiler`]: rotind_obs::Profiler

use rotind_bench::BenchError;
use rotind_distance::dtw::DtwParams;
use rotind_distance::measure::Measure;
use rotind_eval::report::Table;
use rotind_index::engine::{Invariance, RotationQuery};
use rotind_index::CascadeConfig;
use rotind_obs::{CascadeTier, ProfilePhase, Profiler, QueryTrace, SearchObserver};
use rotind_shape::dataset as shapes;
use rotind_ts::StepCounter;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

/// Fan-out observer: every search event goes to both the aggregate
/// [`QueryTrace`] and the wall-clock-attributing [`Profiler`], so one
/// pass yields prune counts *and* per-tier nanoseconds.
struct TraceAndProfile<'a> {
    trace: &'a mut QueryTrace,
    profiler: &'a mut Profiler,
}

impl SearchObserver for TraceAndProfile<'_> {
    fn on_wedge_tested(&mut self, level: usize, lb: f64, best_so_far: f64, pruned: bool) {
        self.trace.on_wedge_tested(level, lb, best_so_far, pruned);
        self.profiler
            .on_wedge_tested(level, lb, best_so_far, pruned);
    }
    fn on_leaf_distance(&mut self, distance: f64) {
        self.trace.on_leaf_distance(distance);
        self.profiler.on_leaf_distance(distance);
    }
    fn on_early_abandon(&mut self, position: usize) {
        self.trace.on_early_abandon(position);
        self.profiler.on_early_abandon(position);
    }
    fn on_k_change(&mut self, old: usize, new: usize, probing: bool) {
        self.trace.on_k_change(old, new, probing);
        self.profiler.on_k_change(old, new, probing);
    }
    fn on_cascade_tier(&mut self, tier: CascadeTier, pruned: bool) {
        self.trace.on_cascade_tier(tier, pruned);
        self.profiler.on_cascade_tier(tier, pruned);
    }
    fn on_phase_start(&mut self, phase: ProfilePhase, steps: u64) {
        self.trace.on_phase_start(phase, steps);
        self.profiler.on_phase_start(phase, steps);
    }
    fn on_phase_end(&mut self, phase: ProfilePhase, steps: u64) {
        self.trace.on_phase_end(phase, steps);
        self.profiler.on_phase_end(phase, steps);
    }
}

/// The ablation ladder: each rung adds one cascade feature, all under
/// the tuned default gates of [`CascadeConfig::all`].
fn ladder() -> Vec<(&'static str, CascadeConfig)> {
    let full = CascadeConfig::all();
    let reduced = CascadeConfig {
        improved: false,
        ..full
    };
    let kim = CascadeConfig {
        reduced: false,
        ..reduced
    };
    let reorder = CascadeConfig { kim: false, ..kim };
    vec![
        ("legacy", CascadeConfig::legacy()),
        ("reorder", reorder),
        ("+kim", kim),
        ("+reduced", reduced),
        ("full", full),
    ]
}

struct Run {
    measure: &'static str,
    config: &'static str,
    total_steps: u64,
    steps_per_query: f64,
    micros_per_query: f64,
    exponent: f64,
    tier_tested: [u64; CascadeTier::ALL.len()],
    tier_pruned: [u64; CascadeTier::ALL.len()],
    tier_ns: [u128; CascadeTier::ALL.len()],
    tier_prunes_per_us: [Option<f64>; CascadeTier::ALL.len()],
}

fn run_config(
    name: &'static str,
    config: CascadeConfig,
    measure_name: &'static str,
    measure: Measure,
    db: &[Vec<f64>],
    queries: &[Vec<f64>],
    n: usize,
) -> Result<Run, BenchError> {
    let mut trace = QueryTrace::new(n);
    let mut profiler = Profiler::new();
    let mut total_steps = 0u64;
    let start = Instant::now();
    for query in queries {
        let engine =
            RotationQuery::with_measure(query, Invariance::Rotation, measure)?.with_cascade(config);
        let mut counter = StepCounter::new();
        let mut observer = TraceAndProfile {
            trace: &mut trace,
            profiler: &mut profiler,
        };
        engine.nearest_observed(db, &mut counter, &mut observer)?;
        total_steps += counter.steps();
    }
    let elapsed = start.elapsed();
    let pairs = (db.len() * queries.len()) as f64;
    let steps_per_pair = total_steps as f64 / pairs;
    let mut tier_tested = [0u64; CascadeTier::ALL.len()];
    let mut tier_pruned = [0u64; CascadeTier::ALL.len()];
    let mut tier_ns = [0u128; CascadeTier::ALL.len()];
    let mut tier_prunes_per_us = [None; CascadeTier::ALL.len()];
    for tier in CascadeTier::ALL {
        let cost = &profiler.tier_costs()[tier.index()];
        tier_tested[tier.index()] = trace.tier_tested(tier);
        tier_pruned[tier.index()] = trace.tier_pruned(tier);
        tier_ns[tier.index()] = cost.total_ns;
        tier_prunes_per_us[tier.index()] = cost.prunes_per_us();
    }
    Ok(Run {
        measure: measure_name,
        config: name,
        total_steps,
        steps_per_query: total_steps as f64 / queries.len() as f64,
        micros_per_query: elapsed.as_secs_f64() * 1e6 / queries.len() as f64,
        exponent: steps_per_pair.max(1.0).ln() / (n as f64).ln(),
        tier_tested,
        tier_pruned,
        tier_ns,
        tier_prunes_per_us,
    })
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(s.chars().all(|c| c.is_ascii_graphic() && c != '"'));
    s
}

fn write_json(runs: &[Run], m: usize, n: usize, queries: usize) -> String {
    // Hand-rolled JSON (the workspace vendors no serializer): flat,
    // machine-readable, one object per (measure, config) run.
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"workload\": {{ \"m\": {m}, \"n\": {n}, \"queries\": {queries} }},"
    );
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"measure\": \"{}\", \"config\": \"{}\", \"total_steps\": {}, \
             \"steps_per_query\": {:.1}, \"micros_per_query\": {:.1}, \"exponent\": {:.4}, \
             \"tiers\": {{",
            json_escape_free(r.measure),
            json_escape_free(r.config),
            r.total_steps,
            r.steps_per_query,
            r.micros_per_query,
            r.exponent
        );
        for (j, tier) in CascadeTier::ALL.iter().enumerate() {
            let tested = r.tier_tested[tier.index()];
            let pruned = r.tier_pruned[tier.index()];
            let rate = if tested > 0 {
                pruned as f64 / tested as f64
            } else {
                0.0
            };
            let ns = r.tier_ns[tier.index()];
            let prunes_per_us = r.tier_prunes_per_us[tier.index()].unwrap_or(0.0);
            let _ = write!(
                out,
                "{}\"{}\": {{ \"tested\": {tested}, \"pruned\": {pruned}, \"prune_rate\": {rate:.4}, \
                 \"ns\": {ns}, \"prunes_per_us\": {prunes_per_us:.3} }}",
                if j > 0 { ", " } else { " " },
                tier.name()
            );
        }
        let _ = writeln!(out, " }} }}{}", if i + 1 < runs.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn run() -> Result<(), BenchError> {
    let quick = rotind_bench::quick_mode();
    let (m, n, queries) = if quick { (200, 64, 3) } else { (2000, 251, 10) };
    println!("cascade ablation over m = {m} projectile points (n = {n}), {queries} queries");

    let pool = shapes::projectile_points(m + queries, n, 1906).items;
    let db = &pool[..m];
    let queries_set = &pool[m..];

    let band = 5.min(n - 1);
    let measures: [(&'static str, Measure); 2] = [
        ("euclidean", Measure::Euclidean),
        ("dtw", Measure::Dtw(DtwParams::new(band))),
    ];

    let mut runs = Vec::new();
    for (measure_name, measure) in measures {
        for (config_name, config) in ladder() {
            let run = run_config(
                config_name,
                config,
                measure_name,
                measure,
                db,
                queries_set,
                n,
            )?;
            println!(
                "  {measure_name:>9} {config_name:>9}: {:>12} steps  ({:.0} steps/query, {:.0} us/query, exponent {:.3})",
                run.total_steps, run.steps_per_query, run.micros_per_query, run.exponent
            );
            runs.push(run);
        }
    }

    let mut table = Table::new([
        "measure",
        "config",
        "total_steps",
        "steps_per_query",
        "us_per_query",
        "exponent",
        "kim_pruned",
        "reduced_pruned",
        "keogh_pruned",
        "improved_pruned",
        "kim_prunes_us",
        "reduced_prunes_us",
        "keogh_prunes_us",
        "improved_prunes_us",
    ]);
    let fmt_rate = |rate: Option<f64>| rate.map_or_else(|| "-".to_string(), |r| format!("{r:.2}"));
    for r in &runs {
        table.push_row([
            r.measure.to_string(),
            r.config.to_string(),
            r.total_steps.to_string(),
            format!("{:.1}", r.steps_per_query),
            format!("{:.1}", r.micros_per_query),
            format!("{:.4}", r.exponent),
            r.tier_pruned[CascadeTier::Kim.index()].to_string(),
            r.tier_pruned[CascadeTier::Reduced.index()].to_string(),
            r.tier_pruned[CascadeTier::Keogh.index()].to_string(),
            r.tier_pruned[CascadeTier::Improved.index()].to_string(),
            fmt_rate(r.tier_prunes_per_us[CascadeTier::Kim.index()]),
            fmt_rate(r.tier_prunes_per_us[CascadeTier::Reduced.index()]),
            fmt_rate(r.tier_prunes_per_us[CascadeTier::Keogh.index()]),
            fmt_rate(r.tier_prunes_per_us[CascadeTier::Improved.index()]),
        ]);
    }
    rotind_bench::emit("bench_cascade", &table);

    let json = write_json(&runs, m, n, queries);
    let path = rotind_bench::results_dir().join("bench_cascade.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("[warn: could not save {}: {e}]", path.display()),
    }
    Ok(())
}

fn main() -> ExitCode {
    rotind_bench::error::exit(run())
}
