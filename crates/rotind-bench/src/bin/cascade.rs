//! Bound-cascade ablation: run the same 1-NN workload under a ladder of
//! [`CascadeConfig`]s — from the legacy natural-order LB_Keogh scan to
//! the full four-tier cascade — and report, per configuration and
//! measure, the total `num_steps`, steps and wall-clock per query, the
//! steps-per-pair exponent (`ln(steps/pair)/ln(n)`, the paper's §5.3
//! framing) and the per-tier tested/pruned counts from [`QueryTrace`].
//!
//! Besides the usual CSV table, the run writes machine-readable
//! `results/bench_cascade.json` for CI trending. `ROTIND_QUICK=1`
//! shrinks the workload for smoke runs.
//!
//! [`CascadeConfig`]: rotind_index::CascadeConfig
//! [`QueryTrace`]: rotind_obs::QueryTrace

use rotind_distance::dtw::DtwParams;
use rotind_distance::measure::Measure;
use rotind_eval::report::Table;
use rotind_index::engine::{Invariance, RotationQuery};
use rotind_index::CascadeConfig;
use rotind_obs::{CascadeTier, QueryTrace};
use rotind_shape::dataset as shapes;
use rotind_ts::StepCounter;
use std::fmt::Write as _;
use std::time::Instant;

/// The ablation ladder: each rung adds one cascade feature, all under
/// the tuned default gates of [`CascadeConfig::all`].
fn ladder() -> Vec<(&'static str, CascadeConfig)> {
    let full = CascadeConfig::all();
    let reduced = CascadeConfig {
        improved: false,
        ..full
    };
    let kim = CascadeConfig {
        reduced: false,
        ..reduced
    };
    let reorder = CascadeConfig { kim: false, ..kim };
    vec![
        ("legacy", CascadeConfig::legacy()),
        ("reorder", reorder),
        ("+kim", kim),
        ("+reduced", reduced),
        ("full", full),
    ]
}

struct Run {
    measure: &'static str,
    config: &'static str,
    total_steps: u64,
    steps_per_query: f64,
    micros_per_query: f64,
    exponent: f64,
    tier_tested: [u64; CascadeTier::ALL.len()],
    tier_pruned: [u64; CascadeTier::ALL.len()],
}

fn run_config(
    name: &'static str,
    config: CascadeConfig,
    measure_name: &'static str,
    measure: Measure,
    db: &[Vec<f64>],
    queries: &[Vec<f64>],
    n: usize,
) -> Run {
    let mut trace = QueryTrace::new(n);
    let mut total_steps = 0u64;
    let start = Instant::now();
    for query in queries {
        let engine = RotationQuery::with_measure(query, Invariance::Rotation, measure)
            .expect("valid query")
            .with_cascade(config);
        let mut counter = StepCounter::new();
        engine
            .nearest_observed(db, &mut counter, &mut trace)
            .expect("valid database");
        total_steps += counter.steps();
    }
    let elapsed = start.elapsed();
    let pairs = (db.len() * queries.len()) as f64;
    let steps_per_pair = total_steps as f64 / pairs;
    let mut tier_tested = [0u64; CascadeTier::ALL.len()];
    let mut tier_pruned = [0u64; CascadeTier::ALL.len()];
    for tier in CascadeTier::ALL {
        tier_tested[tier.index()] = trace.tier_tested(tier);
        tier_pruned[tier.index()] = trace.tier_pruned(tier);
    }
    Run {
        measure: measure_name,
        config: name,
        total_steps,
        steps_per_query: total_steps as f64 / queries.len() as f64,
        micros_per_query: elapsed.as_secs_f64() * 1e6 / queries.len() as f64,
        exponent: steps_per_pair.max(1.0).ln() / (n as f64).ln(),
        tier_tested,
        tier_pruned,
    }
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(s.chars().all(|c| c.is_ascii_graphic() && c != '"'));
    s
}

fn write_json(runs: &[Run], m: usize, n: usize, queries: usize) -> String {
    // Hand-rolled JSON (the workspace vendors no serializer): flat,
    // machine-readable, one object per (measure, config) run.
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"workload\": {{ \"m\": {m}, \"n\": {n}, \"queries\": {queries} }},"
    );
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"measure\": \"{}\", \"config\": \"{}\", \"total_steps\": {}, \
             \"steps_per_query\": {:.1}, \"micros_per_query\": {:.1}, \"exponent\": {:.4}, \
             \"tiers\": {{",
            json_escape_free(r.measure),
            json_escape_free(r.config),
            r.total_steps,
            r.steps_per_query,
            r.micros_per_query,
            r.exponent
        );
        for (j, tier) in CascadeTier::ALL.iter().enumerate() {
            let tested = r.tier_tested[tier.index()];
            let pruned = r.tier_pruned[tier.index()];
            let rate = if tested > 0 {
                pruned as f64 / tested as f64
            } else {
                0.0
            };
            let _ = write!(
                out,
                "{}\"{}\": {{ \"tested\": {tested}, \"pruned\": {pruned}, \"prune_rate\": {rate:.4} }}",
                if j > 0 { ", " } else { " " },
                tier.name()
            );
        }
        let _ = writeln!(out, " }} }}{}", if i + 1 < runs.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let quick = rotind_bench::quick_mode();
    let (m, n, queries) = if quick { (200, 64, 3) } else { (2000, 251, 10) };
    println!("cascade ablation over m = {m} projectile points (n = {n}), {queries} queries");

    let pool = shapes::projectile_points(m + queries, n, 1906).items;
    let db = &pool[..m];
    let queries_set = &pool[m..];

    let band = 5.min(n - 1);
    let measures: [(&'static str, Measure); 2] = [
        ("euclidean", Measure::Euclidean),
        ("dtw", Measure::Dtw(DtwParams::new(band))),
    ];

    let mut runs = Vec::new();
    for (measure_name, measure) in measures {
        for (config_name, config) in ladder() {
            let run = run_config(
                config_name,
                config,
                measure_name,
                measure,
                db,
                queries_set,
                n,
            );
            println!(
                "  {measure_name:>9} {config_name:>9}: {:>12} steps  ({:.0} steps/query, {:.0} us/query, exponent {:.3})",
                run.total_steps, run.steps_per_query, run.micros_per_query, run.exponent
            );
            runs.push(run);
        }
    }

    let mut table = Table::new([
        "measure",
        "config",
        "total_steps",
        "steps_per_query",
        "us_per_query",
        "exponent",
        "kim_pruned",
        "reduced_pruned",
        "keogh_pruned",
        "improved_pruned",
    ]);
    for r in &runs {
        table.push_row([
            r.measure.to_string(),
            r.config.to_string(),
            r.total_steps.to_string(),
            format!("{:.1}", r.steps_per_query),
            format!("{:.1}", r.micros_per_query),
            format!("{:.4}", r.exponent),
            r.tier_pruned[CascadeTier::Kim.index()].to_string(),
            r.tier_pruned[CascadeTier::Reduced.index()].to_string(),
            r.tier_pruned[CascadeTier::Keogh.index()].to_string(),
            r.tier_pruned[CascadeTier::Improved.index()].to_string(),
        ]);
    }
    rotind_bench::emit("bench_cascade", &table);

    let json = write_json(&runs, m, n, queries);
    let path = rotind_bench::results_dir().join("bench_cascade.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("[warn: could not save {}: {e}]", path.display()),
    }
}
