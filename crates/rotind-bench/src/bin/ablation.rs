//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! 1. **Wedge-set size policy** — fixed K across the range vs the
//!    paper's dynamic controller (Section 4.1 argues no single K wins).
//! 2. **Wedge-derivation linkage** — the paper clusters rotations with
//!    group-average linkage; how much do the alternatives cost?
//! 3. **DTW envelope widening** — lower-bound tightness (and hence
//!    pruning) as a function of the band R (Proposition 2's trade-off).
//! 4. **Probe-interval sensitivity** — the paper: any interval count in
//!    `3..=20` changes performance by less than 4%.
//!
//! `ROTIND_QUICK=1` shrinks the workload.

use rotind_bench::BenchError;
use rotind_cluster::linkage::Linkage;
use rotind_distance::{DtwParams, Measure};
use rotind_envelope::lb_keogh::lb_keogh;
use rotind_envelope::WedgeTree;
use rotind_eval::report::{fmt_ratio, Table};
use rotind_index::engine::{Invariance, KPolicy, RotationQuery};
use rotind_index::hmerge::h_merge;
use rotind_shape::dataset::projectile_points;
use rotind_ts::rotate::RotationMatrix;
use rotind_ts::StepCounter;
use std::process::ExitCode;

fn run() -> Result<(), BenchError> {
    let quick = rotind_bench::quick_mode();
    let n = if quick { 64 } else { 251 };
    let m = if quick { 200 } else { 2000 };
    let num_queries = if quick { 3 } else { 10 };
    let ds = projectile_points(m + num_queries, n, 4242);
    let db: Vec<Vec<f64>> = ds.items[..m].to_vec();
    let queries: Vec<&Vec<f64>> = ds.items[m..].iter().collect();

    // 1. K policy.
    let mut k_table = Table::new(["policy", "avg steps/query", "vs dynamic"]);
    let run_policy = |policy: KPolicy| -> Result<u64, BenchError> {
        let mut total = 0u64;
        for q in &queries {
            let engine = RotationQuery::new(q, Invariance::Rotation)?.with_k_policy(policy);
            let mut counter = StepCounter::new();
            engine.nearest_with_steps(&db, &mut counter)?;
            total += counter.steps();
        }
        Ok(total / queries.len() as u64)
    };
    let dynamic = run_policy(KPolicy::Dynamic)?;
    k_table.push_row(["dynamic".to_string(), dynamic.to_string(), fmt_ratio(1.0)]);
    let mut ks: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64, n]
        .into_iter()
        .filter(|&k| k <= n)
        .collect();
    ks.dedup();
    for k in ks {
        let steps = run_policy(KPolicy::Fixed(k))?;
        k_table.push_row([
            format!("fixed K={k}"),
            steps.to_string(),
            fmt_ratio(steps as f64 / dynamic as f64),
        ]);
    }
    rotind_bench::emit("ablation_k_policy", &k_table);

    // 2. Linkage. (Dynamic policy requires an engine; measure the raw
    //    H-Merge scan at a representative fixed K per linkage instead.)
    let mut l_table = Table::new(["linkage", "avg steps/query", "vs average"]);
    let run_linkage = |linkage: Linkage| -> Result<u64, BenchError> {
        let k = 16.min(n);
        let mut total = 0u64;
        for q in &queries {
            let tree = WedgeTree::build(RotationMatrix::full(q)?, linkage, 0);
            let cut = tree.cut_nodes(k);
            let mut counter = StepCounter::new();
            let mut bsf = f64::INFINITY;
            for item in &db {
                if let Some(o) = h_merge(item, &tree, &cut, bsf, Measure::Euclidean, &mut counter) {
                    bsf = o.distance;
                }
            }
            total += counter.steps();
        }
        Ok(total / queries.len() as u64)
    };
    let average = run_linkage(Linkage::Average)?;
    for (name, linkage) in [
        ("average (paper)", Linkage::Average),
        ("single", Linkage::Single),
        ("complete", Linkage::Complete),
        ("ward", Linkage::Ward),
    ] {
        let steps = if linkage == Linkage::Average {
            average
        } else {
            run_linkage(linkage)?
        };
        l_table.push_row([
            name.to_string(),
            steps.to_string(),
            fmt_ratio(steps as f64 / average as f64),
        ]);
    }
    rotind_bench::emit("ablation_linkage", &l_table);

    // 3. DTW widening: mean LB_Keogh tightness against a K=16 wedge-set
    //    cut (the root wedge is already max/min everywhere, so the decay
    //    only shows on mid-level wedges), plus realised scan steps under
    //    the matching DTW measure.
    let mut w_table = Table::new(["band R", "mean LB vs R=0", "DTW scan steps"]);
    let query = queries[0];
    let base_tree = WedgeTree::new(RotationMatrix::full(query)?, 0);
    let cut = base_tree.cut_nodes(16.min(n));
    let mean_cut_lb = |band: usize| -> f64 {
        // Widen each cut wedge once per band, not once per (item, node):
        // the scan below is then allocation-free per item.
        let widened: Vec<_> = cut
            .iter()
            .map(|&node| base_tree.wedge(node).widened(band))
            .collect();
        db.iter()
            .map(|item| {
                widened
                    .iter()
                    .map(|wedge| lb_keogh(item, wedge, &mut StepCounter::new()))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / db.len() as f64
    };
    let base_lb = mean_cut_lb(0);
    for band in [0usize, 1, 2, 5, 10, 20] {
        let mean_lb = mean_cut_lb(band);
        let engine = RotationQuery::with_measure(
            query,
            Invariance::Rotation,
            Measure::Dtw(DtwParams::new(band)),
        )?;
        let mut counter = StepCounter::new();
        engine.nearest_with_steps(&db, &mut counter)?;
        w_table.push_row([
            band.to_string(),
            fmt_ratio(if base_lb > 0.0 {
                mean_lb / base_lb
            } else {
                0.0
            }),
            counter.steps().to_string(),
        ]);
    }
    rotind_bench::emit("ablation_dtw_band", &w_table);

    // 4. Probe-interval sensitivity (paper: < 4% across 3..=20).
    let mut p_table = Table::new(["probe intervals", "avg steps/query", "vs 5"]);
    let run_intervals = |intervals: usize| -> Result<u64, BenchError> {
        let mut total = 0u64;
        for q in &queries {
            let engine =
                RotationQuery::new(q, Invariance::Rotation)?.with_probe_intervals(intervals);
            let mut counter = StepCounter::new();
            engine.nearest_with_steps(&db, &mut counter)?;
            total += counter.steps();
        }
        Ok(total / queries.len() as u64)
    };
    let reference = run_intervals(5)?;
    for intervals in [1usize, 3, 5, 10, 20] {
        let steps = if intervals == 5 {
            reference
        } else {
            run_intervals(intervals)?
        };
        p_table.push_row([
            intervals.to_string(),
            steps.to_string(),
            fmt_ratio(steps as f64 / reference as f64),
        ]);
    }
    rotind_bench::emit("ablation_probe_intervals", &p_table);
    Ok(())
}

fn main() -> ExitCode {
    rotind_bench::error::exit(run())
}
