//! Reproduce the paper's fig17 clustering experiment (DESIGN.md §5).

fn main() {
    let table = rotind_bench::experiments::fig17();
    rotind_bench::emit("fig17", &table);
}
