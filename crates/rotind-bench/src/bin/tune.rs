//! Internal dataset-difficulty tuning helper: ED and learned-band DTW
//! LOO error per Table-8 dataset (fast feedback loop; not part of the
//! reproduction). Pass dataset name prefixes as args to restrict.

use rotind_distance::Measure;
use rotind_eval::onenn::{one_nn_error, one_nn_error_dtw_learned_band};

fn main() {
    let filters: Vec<String> = std::env::args().skip(1).collect();
    let seed = 20060900;
    let sets = vec![
        rotind_shape::dataset::face(seed),
        rotind_shape::dataset::swedish_leaf(seed + 1),
        rotind_shape::dataset::chicken(seed + 2),
        rotind_shape::dataset::mixed_bag(seed + 3),
        rotind_shape::dataset::osu_leaf(seed + 4),
        rotind_shape::dataset::diatom(seed + 5),
        rotind_shape::dataset::aircraft(seed + 6),
        rotind_shape::dataset::fish(seed + 7),
        rotind_lightcurve::dataset::classification_set(seed + 8),
        rotind_shape::dataset::yoga(seed + 9),
    ];
    for ds in sets {
        if !filters.is_empty() && !filters.iter().any(|f| ds.name.starts_with(f.as_str())) {
            continue;
        }
        let ed = one_nn_error(&ds, Measure::Euclidean);
        let (band, dtw) = one_nn_error_dtw_learned_band(&ds, &[1, 2, 3, 5, 7], 0.3, seed + 50);
        println!(
            "{:<12} ed = {:5.2}%   dtw = {:5.2}% {{{band}}}",
            ds.name,
            100.0 * ed.error_rate(),
            100.0 * dtw.error_rate()
        );
    }
}
