//! Reproduce the paper's fig19 (see DESIGN.md §5 for the experiment
//! index). Honours `ROTIND_QUICK=1` for a reduced-scale smoke run.

fn main() {
    let quick = rotind_bench::quick_mode();
    let table = rotind_bench::experiments::fig19(quick);
    rotind_bench::emit("fig19", &table);
}
