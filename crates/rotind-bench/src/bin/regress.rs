//! Performance-regression gate: measure a small deterministic workload
//! suite and compare it against `results/bench_baseline.json`.
//!
//! ```text
//! cargo run -p rotind-bench --release --bin regress                     # gate
//! cargo run -p rotind-bench --release --bin regress -- --update-baseline
//! cargo run -p rotind-bench --release --bin regress -- --baseline x.json
//! ROTIND_REGRESS_INJECT=1.2 cargo run ... --bin regress   # must exit 1
//! ```
//!
//! Exit codes: `0` pass, `1` regression; infrastructure failures use
//! the typed [`rotind_bench::BenchError`] codes (`2` usage, `3` I/O,
//! `4` malformed baseline JSON, `6` engine error), so CI can tell a
//! genuine slowdown from a broken harness. Step totals are
//! machine-independent and always gated at 2%; wall-clock medians are
//! gated at 30% only when the baseline host matches (see
//! `rotind_bench::regress` for the full policy).

use std::process::ExitCode;
use std::time::Instant;

use rotind_bench::regress::{
    apply_inject, compare, hostname, inject_factor, Baseline, Measurement,
};
use rotind_bench::BenchError;
use rotind_distance::dtw::DtwParams;
use rotind_distance::measure::Measure;
use rotind_index::engine::{Invariance, RotationQuery};
use rotind_shape::dataset as shapes;
use rotind_ts::StepCounter;

/// Repeat a workload, keeping the (deterministic) step total of the
/// last run and the median wall-clock across runs.
fn run_entry(
    name: &str,
    deterministic: bool,
    repeats: usize,
    mut work: impl FnMut() -> Result<u64, BenchError>,
) -> Result<Measurement, BenchError> {
    let mut walls: Vec<u64> = Vec::with_capacity(repeats);
    let mut steps = 0u64;
    for _ in 0..repeats {
        let t = Instant::now();
        steps = work()?;
        walls.push(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    walls.sort_unstable();
    // `repeats` is a positive constant below, so the median index is valid.
    // rotind-lint: allow(no-index)
    let wall_ns = walls[walls.len() / 2];
    Ok(Measurement {
        name: name.to_string(),
        deterministic,
        steps,
        wall_ns,
    })
}

/// The gate's workload suite: fixed seeds, fixed sizes, so `num_steps`
/// is exactly reproducible across machines at a given quick setting.
fn measure_suite(quick: bool) -> Result<Vec<Measurement>, BenchError> {
    let (m, n, queries, repeats) = if quick {
        (200, 64, 3, 3)
    } else {
        (600, 128, 5, 5)
    };
    println!("regress suite: m = {m}, n = {n}, {queries} queries, {repeats} repeats");
    let pool = shapes::projectile_points(m + queries, n, 1906).items;
    // rotind-lint: allow(no-index)
    let db = &pool[..m];
    // rotind-lint: allow(no-index)
    let queries = &pool[m..];

    let euclid = run_entry("euclid_nearest", true, repeats, || {
        let mut total = 0u64;
        for query in queries {
            let mut counter = StepCounter::new();
            let engine = RotationQuery::new(query, Invariance::Rotation)?;
            engine.nearest_with_steps(db, &mut counter)?;
            total += counter.steps();
        }
        Ok(total)
    })?;

    let band = n / 25 + 1;
    let dtw = run_entry("dtw_nearest", true, repeats, || {
        let mut total = 0u64;
        for query in queries {
            let mut counter = StepCounter::new();
            let engine = RotationQuery::with_measure(
                query,
                Invariance::Rotation,
                Measure::Dtw(DtwParams::new(band)),
            )?;
            engine.nearest_with_steps(db, &mut counter)?;
            total += counter.steps();
        }
        Ok(total)
    })?;

    // Workers race on the shared best-so-far, so step totals vary run
    // to run: wall-clock only (deterministic = false).
    let parallel = run_entry("euclid_parallel4", false, repeats, || {
        for query in queries {
            let engine = RotationQuery::new(query, Invariance::Rotation)?;
            engine.nearest_parallel(db, 4)?;
        }
        Ok(0)
    })?;

    Ok(vec![euclid, dtw, parallel])
}

const USAGE: &str = "regress [--update-baseline] [--baseline <path>]";

/// The gate proper. `Ok` carries the pass/regression verdict (exit `0`
/// or `1`); `Err` is an infrastructure failure with its class code.
fn run() -> Result<ExitCode, BenchError> {
    let mut update = false;
    let mut baseline_path: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--update-baseline" => update = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(p.into()),
                None => return Err(BenchError::Usage(USAGE.into())),
            },
            _ => return Err(BenchError::Usage(USAGE.into())),
        }
    }
    let path =
        baseline_path.unwrap_or_else(|| rotind_bench::results_dir().join("bench_baseline.json"));

    let quick = rotind_bench::quick_mode();
    let host = hostname();
    let factor = inject_factor().map_err(BenchError::Usage)?;

    let mut entries = measure_suite(quick)?;
    // 1.0 is the exact "not set" sentinel from `inject_factor`.
    // rotind-lint: allow(float-eq)
    if factor != 1.0 {
        println!("applying synthetic slowdown factor {factor} (ROTIND_REGRESS_INJECT)");
        apply_inject(&mut entries, factor);
    }
    for e in &entries {
        println!(
            "  {:<18} steps = {:>12}  wall = {:>10.3} ms{}",
            e.name,
            e.steps,
            e.wall_ns as f64 / 1e6,
            if e.deterministic { "" } else { "  (wall-only)" }
        );
    }
    let current = Baseline {
        comment: format!(
            "captured on {host} (quick = {quick}); steps gate at 2% on every machine, \
             wall gate at 30% on this host only"
        ),
        host,
        quick,
        entries,
    };

    if update {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(&path, current.to_json()).map_err(|e| BenchError::io(&path, e))?;
        println!("baseline written to {}", path.display());
        return Ok(ExitCode::SUCCESS);
    }

    let text = std::fs::read_to_string(&path).map_err(|e| {
        eprintln!("(capture a baseline with: regress --update-baseline)");
        BenchError::io(&path, e)
    })?;
    let baseline =
        Baseline::from_json(&text).map_err(|e| BenchError::json(&path, e.to_string()))?;

    println!(
        "comparing against {} (host {:?}, quick = {})",
        path.display(),
        baseline.host,
        baseline.quick
    );
    let failures = compare(&baseline, &current);
    if failures.is_empty() {
        println!("regress: OK — no regression against the baseline");
        Ok(ExitCode::SUCCESS)
    } else {
        for f in &failures {
            eprintln!("regress: REGRESSION: {f}");
        }
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(verdict) => verdict,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
