//! Performance-regression gate: measure a small deterministic workload
//! suite and compare it against `results/bench_baseline.json`.
//!
//! ```text
//! cargo run -p rotind-bench --release --bin regress                     # gate
//! cargo run -p rotind-bench --release --bin regress -- --update-baseline
//! cargo run -p rotind-bench --release --bin regress -- --baseline x.json
//! ROTIND_REGRESS_INJECT=1.2 cargo run ... --bin regress   # must exit 1
//! ```
//!
//! Exit codes: `0` pass, `1` regression, `2` usage or I/O error. Step
//! totals are machine-independent and always gated at 2%; wall-clock
//! medians are gated at 30% only when the baseline host matches (see
//! `rotind_bench::regress` for the full policy).

use std::process::ExitCode;
use std::time::Instant;

use rotind_bench::regress::{
    apply_inject, compare, hostname, inject_factor, Baseline, Measurement,
};
use rotind_distance::dtw::DtwParams;
use rotind_distance::measure::Measure;
use rotind_index::engine::{Invariance, RotationQuery};
use rotind_shape::dataset as shapes;
use rotind_ts::StepCounter;

/// Repeat a workload, keeping the (deterministic) step total of the
/// last run and the median wall-clock across runs.
fn run_entry(
    name: &str,
    deterministic: bool,
    repeats: usize,
    mut work: impl FnMut() -> u64,
) -> Measurement {
    let mut walls: Vec<u64> = Vec::with_capacity(repeats);
    let mut steps = 0u64;
    for _ in 0..repeats {
        let t = Instant::now();
        steps = work();
        walls.push(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    walls.sort_unstable();
    // `repeats` is a positive constant below, so the median index is valid.
    // rotind-lint: allow(no-index)
    let wall_ns = walls[walls.len() / 2];
    Measurement {
        name: name.to_string(),
        deterministic,
        steps,
        wall_ns,
    }
}

/// The gate's workload suite: fixed seeds, fixed sizes, so `num_steps`
/// is exactly reproducible across machines at a given quick setting.
fn measure_suite(quick: bool) -> Vec<Measurement> {
    let (m, n, queries, repeats) = if quick {
        (200, 64, 3, 3)
    } else {
        (600, 128, 5, 5)
    };
    println!("regress suite: m = {m}, n = {n}, {queries} queries, {repeats} repeats");
    let pool = shapes::projectile_points(m + queries, n, 1906).items;
    // rotind-lint: allow(no-index)
    let db = &pool[..m];
    // rotind-lint: allow(no-index)
    let queries = &pool[m..];

    let euclid = run_entry("euclid_nearest", true, repeats, || {
        let mut total = 0u64;
        for query in queries {
            let mut counter = StepCounter::new();
            // rotind-lint: allow(no-panic)
            let engine = RotationQuery::new(query, Invariance::Rotation).expect("valid query");
            engine
                .nearest_with_steps(db, &mut counter)
                // rotind-lint: allow(no-panic)
                .expect("non-empty database");
            total += counter.steps();
        }
        total
    });

    let band = n / 25 + 1;
    let dtw = run_entry("dtw_nearest", true, repeats, || {
        let mut total = 0u64;
        for query in queries {
            let mut counter = StepCounter::new();
            let engine = RotationQuery::with_measure(
                query,
                Invariance::Rotation,
                Measure::Dtw(DtwParams::new(band)),
            )
            // rotind-lint: allow(no-panic)
            .expect("valid query");
            engine
                .nearest_with_steps(db, &mut counter)
                // rotind-lint: allow(no-panic)
                .expect("non-empty database");
            total += counter.steps();
        }
        total
    });

    // Workers race on the shared best-so-far, so step totals vary run
    // to run: wall-clock only (deterministic = false).
    let parallel = run_entry("euclid_parallel4", false, repeats, || {
        for query in queries {
            // rotind-lint: allow(no-panic)
            let engine = RotationQuery::new(query, Invariance::Rotation).expect("valid query");
            engine
                .nearest_parallel(db, 4)
                // rotind-lint: allow(no-panic)
                .expect("non-empty database");
        }
        0
    });

    vec![euclid, dtw, parallel]
}

fn usage() -> ExitCode {
    eprintln!("usage: regress [--update-baseline] [--baseline <path>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut update = false;
    let mut baseline_path: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--update-baseline" => update = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(p.into()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let path =
        baseline_path.unwrap_or_else(|| rotind_bench::results_dir().join("bench_baseline.json"));

    let quick = rotind_bench::quick_mode();
    let host = hostname();
    let factor = match inject_factor() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("regress: {e}");
            return ExitCode::from(2);
        }
    };

    let mut entries = measure_suite(quick);
    // 1.0 is the exact "not set" sentinel from `inject_factor`.
    // rotind-lint: allow(float-eq)
    if factor != 1.0 {
        println!("applying synthetic slowdown factor {factor} (ROTIND_REGRESS_INJECT)");
        apply_inject(&mut entries, factor);
    }
    for e in &entries {
        println!(
            "  {:<18} steps = {:>12}  wall = {:>10.3} ms{}",
            e.name,
            e.steps,
            e.wall_ns as f64 / 1e6,
            if e.deterministic { "" } else { "  (wall-only)" }
        );
    }
    let current = Baseline {
        comment: format!(
            "captured on {host} (quick = {quick}); steps gate at 2% on every machine, \
             wall gate at 30% on this host only"
        ),
        host,
        quick,
        entries,
    };

    if update {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        return match std::fs::write(&path, current.to_json()) {
            Ok(()) => {
                println!("baseline written to {}", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("regress: cannot write {}: {e}", path.display());
                ExitCode::from(2)
            }
        };
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "regress: cannot read baseline {}: {e}\n\
                 (capture one with: regress --update-baseline)",
                path.display()
            );
            return ExitCode::from(2);
        }
    };
    let baseline = match Baseline::from_json(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("regress: {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };

    println!(
        "comparing against {} (host {:?}, quick = {})",
        path.display(),
        baseline.host,
        baseline.quick
    );
    let failures = compare(&baseline, &current);
    if failures.is_empty() {
        println!("regress: OK — no regression against the baseline");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("regress: REGRESSION: {f}");
        }
        ExitCode::FAILURE
    }
}
