//! Reproduce the paper's fig03 clustering experiment (DESIGN.md §5).

fn main() {
    let table = rotind_bench::experiments::fig03();
    rotind_bench::emit("fig03", &table);
}
