//! Open-loop load generator for the `rotind-serve` query service.
//!
//! Starts an in-process [`Server`] over a projectile-point database,
//! then drives it **open-loop**: requests are issued on a fixed
//! arrival schedule (aggregate rate `ROTIND_SERVE_RATE` req/s, spread
//! round-robin over several client connections), not in response to
//! completions. Latency is measured from each request's *scheduled*
//! arrival time to its reply, so a backed-up server shows up as
//! growing tail latency instead of silently throttling the generator
//! (no coordinated omission). Reports throughput and p50/p95/p99 via
//! [`LogHistogram`] plus the server's own admission counters, and
//! writes machine-readable `results/bench_serve.json` for CI trending.
//!
//! Environment knobs: `ROTIND_QUICK=1` shrinks the database and the
//! measurement window; `ROTIND_SERVE_RATE` pins the offered aggregate
//! arrival rate (unset, the generator probes a few queries closed-loop
//! and offers ~50% of the measured capacity, so the artefact stays
//! comparable across hosts of very different speed);
//! `ROTIND_SERVE_WORKERS` / `ROTIND_SERVE_QUEUE` / `ROTIND_SERVE_BATCH`
//! configure the server as they would in production; `ROTIND_RESULTS`
//! relocates the artefact.
//!
//! [`Server`]: rotind_serve::Server
//! [`LogHistogram`]: rotind_obs::LogHistogram

use rotind_bench::BenchError;
use rotind_distance::Measure;
use rotind_index::engine::Invariance;
use rotind_index::snapshot::{IndexSnapshot, QueryKind, QuerySpec};
use rotind_obs::{env_positive_usize, LogHistogram};
use rotind_serve::{Client, QueryRequest, Response, ServeConfig, Server};
use rotind_shape::dataset as shapes;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// Per-client tally, merged after the run.
#[derive(Default)]
struct Tally {
    sent: u64,
    complete: u64,
    exhausted: u64,
    overloaded: u64,
    errors: u64,
    /// Requests issued behind schedule (the lane's previous reply came
    /// back after the next scheduled arrival) — a saturation signal.
    late: u64,
    latency_ns: LogHistogram,
}

impl Tally {
    fn merge(&mut self, other: &Tally) {
        self.sent += other.sent;
        self.complete += other.complete;
        self.exhausted += other.exhausted;
        self.overloaded += other.overloaded;
        self.errors += other.errors;
        self.late += other.late;
        self.latency_ns.merge(&other.latency_ns);
    }
}

/// One open-loop client lane: fire at each scheduled arrival in
/// `[start, start + window)`, measuring latency from the *schedule*,
/// never from the (possibly delayed) actual send.
///
/// The aggregate schedule places arrival `k` at `start + k/rate`;
/// lane `l` of `c` owns every arrival with `k % c == l`, i.e. its own
/// period is `c/rate` with a phase offset of `l/rate`. A lane that
/// falls behind (its previous reply outlasted the next arrival) sends
/// immediately and the queueing delay it accrued stays in the latency
/// sample — that is the open-loop contract.
fn drive(
    addr: std::net::SocketAddr,
    queries: &[Vec<f64>],
    lane: usize,
    clients: usize,
    rate: f64,
    start: Instant,
    window: Duration,
) -> std::io::Result<Tally> {
    let mut client = Client::connect(addr)?;
    let mut tally = Tally::default();
    let lane_period = Duration::from_secs_f64(clients as f64 / rate);
    let mut scheduled = start + Duration::from_secs_f64(lane as f64 / rate);
    let mut i = lane; // stagger lanes so connections don't send identical streams
    while scheduled.duration_since(start) < window {
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        } else if now.duration_since(scheduled) > lane_period {
            tally.late += 1;
        }
        let spec = QuerySpec {
            series: queries[i % queries.len()].clone(),
            invariance: Invariance::Rotation,
            measure: Measure::Euclidean,
            kind: QueryKind::Nearest,
        };
        let request = QueryRequest {
            spec,
            max_steps: None,
            deadline: None,
        };
        let response = client.query(&request)?;
        // Latency from the scheduled arrival: schedule slip caused by a
        // slow previous reply is server-induced delay and must count.
        tally
            .latency_ns
            .observe(u64::try_from(scheduled.elapsed().as_nanos()).unwrap_or(u64::MAX));
        tally.sent += 1;
        match response {
            Response::Query(r) => match r.status {
                rotind_serve::QueryStatus::Complete => tally.complete += 1,
                _ => tally.exhausted += 1,
            },
            Response::Overloaded => tally.overloaded += 1,
            _ => tally.errors += 1,
        }
        i += clients;
        scheduled += lane_period;
    }
    Ok(tally)
}

fn quantile_ms(h: &LogHistogram, q: f64) -> f64 {
    h.quantile(q).map_or(0.0, |ns| ns as f64 / 1e6)
}

/// Probe mean service time with a few closed-loop queries and offer
/// ~50% of the pool's capacity — a load point where queueing is real
/// but the open-loop schedule stays sustainable on any host.
fn calibrate_rate(
    addr: std::net::SocketAddr,
    queries: &[Vec<f64>],
    workers: usize,
) -> std::io::Result<f64> {
    let mut client = Client::connect(addr)?;
    let mut probe = |count: usize| -> std::io::Result<f64> {
        let t = Instant::now();
        for i in 0..count {
            let request = QueryRequest {
                spec: QuerySpec {
                    series: queries[i % queries.len()].clone(),
                    invariance: Invariance::Rotation,
                    measure: Measure::Euclidean,
                    kind: QueryKind::Nearest,
                },
                max_steps: None,
                deadline: None,
            };
            let _ = client.query(&request)?;
        }
        Ok(t.elapsed().as_secs_f64() / count as f64)
    };
    // First pass warms the worker's candidate-PAA cache (and faults in
    // the snapshot); only the second pass is timed.
    let _ = probe(5)?;
    let mean = probe(10)?;
    let capacity = workers.max(1) as f64 / mean.max(1e-6);
    Ok((capacity * 0.5).clamp(1.0, 100_000.0))
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    tally: &Tally,
    elapsed: Duration,
    clients: usize,
    rate: f64,
    config: &ServeConfig,
    m: usize,
    n: usize,
    server_counters: &[(&str, u64)],
) -> String {
    // Hand-rolled JSON (the workspace vendors no serializer).
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"workload\": {{ \"mode\": \"open-loop\", \"m\": {m}, \"n\": {n}, \
         \"clients\": {clients}, \"offered_per_second\": {rate:.1}, \
         \"workers\": {}, \"queue_depth\": {}, \"batch\": {}, \"seconds\": {:.3} }},",
        config.workers,
        config.queue_depth,
        config.batch,
        elapsed.as_secs_f64()
    );
    let throughput = tally.sent as f64 / elapsed.as_secs_f64().max(1e-9);
    let _ = writeln!(
        out,
        "  \"requests\": {{ \"sent\": {}, \"complete\": {}, \"exhausted\": {}, \
         \"overloaded\": {}, \"errors\": {}, \"late\": {}, \"per_second\": {throughput:.1} }},",
        tally.sent, tally.complete, tally.exhausted, tally.overloaded, tally.errors, tally.late
    );
    let _ = writeln!(
        out,
        "  \"latency_ms\": {{ \"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}, \"mean\": {:.3} }},",
        quantile_ms(&tally.latency_ns, 0.50),
        quantile_ms(&tally.latency_ns, 0.95),
        quantile_ms(&tally.latency_ns, 0.99),
        tally.latency_ns.mean().unwrap_or(0.0) / 1e6
    );
    out.push_str("  \"server\": {");
    for (i, (name, value)) in server_counters.iter().enumerate() {
        let _ = write!(out, "{}\"{name}\": {value}", if i > 0 { ", " } else { " " });
    }
    out.push_str(" }\n}\n");
    out
}

fn run() -> Result<(), BenchError> {
    let quick = rotind_bench::quick_mode();
    let (m, n, clients, secs) = if quick {
        (200, 64, 2, 1.0)
    } else {
        (2000, 251, 4, 10.0)
    };
    let config = ServeConfig::from_env();

    let pool = shapes::projectile_points(m + clients * 4, n, 1906).items;
    let db = pool[..m].to_vec();
    let queries = pool[m..].to_vec();
    let snapshot = IndexSnapshot::new(db)?;
    let mut server =
        Server::start(snapshot, config.clone()).map_err(|e| BenchError::io("<server>", e))?;
    let addr = server.addr();

    // Warm the worker caches and pick the offered rate: pinned by
    // ROTIND_SERVE_RATE, otherwise ~50% of this host's probed capacity.
    let calibrated = calibrate_rate(addr, &queries, config.workers)
        .map_err(|e| BenchError::io("<client>", e))?;
    let rate = if std::env::var_os("ROTIND_SERVE_RATE").is_some() {
        env_positive_usize("ROTIND_SERVE_RATE", calibrated.ceil() as usize) as f64
    } else {
        calibrated
    };
    println!(
        "serve_load: m = {m} projectile points (n = {n}), open-loop {rate:.0} req/s over \
         {clients} clients, {secs} s, {} workers / queue {} / batch {}",
        config.workers, config.queue_depth, config.batch
    );

    let window = Duration::from_secs_f64(secs);
    let start = Instant::now();
    let mut tally = Tally::default();
    std::thread::scope(|scope| -> Result<(), BenchError> {
        let handles: Vec<_> = (0..clients)
            .map(|lane| {
                let queries = &queries;
                scope.spawn(move || drive(addr, queries, lane, clients, rate, start, window))
            })
            .collect();
        for handle in handles {
            let part = handle
                .join()
                .map_err(|_| BenchError::Engine("load client panicked".into()))?
                .map_err(|e| BenchError::io("<client>", e))?;
            tally.merge(&part);
        }
        Ok(())
    })?;
    let elapsed = start.elapsed();

    let registry = server.metrics();
    let counters = [
        "rotind_serve_requests_total",
        "rotind_serve_enqueued_total",
        "rotind_serve_dequeued_total",
        "rotind_serve_overload_total",
        "rotind_serve_exhausted_total",
        "rotind_serve_errors_total",
        "rotind_serve_connections_total",
    ];
    let server_counters: Vec<(&str, u64)> = counters
        .iter()
        .map(|&name| (name, registry.counter(name)))
        .collect();
    server.shutdown();

    if tally.sent == 0 {
        return Err(BenchError::Data(
            "no requests completed within the measurement window".into(),
        ));
    }
    println!(
        "  {} requests in {:.2} s  ({:.0} req/s offered {rate:.0})  \
         p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms",
        tally.sent,
        elapsed.as_secs_f64(),
        tally.sent as f64 / elapsed.as_secs_f64().max(1e-9),
        quantile_ms(&tally.latency_ns, 0.50),
        quantile_ms(&tally.latency_ns, 0.95),
        quantile_ms(&tally.latency_ns, 0.99),
    );
    println!(
        "  complete {}  exhausted {}  overloaded {}  errors {}  late {}",
        tally.complete, tally.exhausted, tally.overloaded, tally.errors, tally.late
    );
    for (name, value) in &server_counters {
        println!("  {name} = {value}");
    }

    let json = write_json(
        &tally,
        elapsed,
        clients,
        rate,
        &config,
        m,
        n,
        &server_counters,
    );
    let dir = rotind_bench::results_dir();
    std::fs::create_dir_all(&dir).map_err(|e| BenchError::io(&dir, e))?;
    let path = dir.join("bench_serve.json");
    std::fs::write(&path, &json).map_err(|e| BenchError::io(&path, e))?;
    println!("[saved {}]", path.display());
    Ok(())
}

fn main() -> ExitCode {
    rotind_bench::error::exit(run())
}
