//! Reproduce the paper's fig18 clustering experiment (DESIGN.md §5).

fn main() {
    let table = rotind_bench::experiments::fig18();
    rotind_bench::emit("fig18", &table);
}
