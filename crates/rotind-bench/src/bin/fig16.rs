//! Reproduce the paper's fig16 clustering experiment (DESIGN.md §5).

fn main() {
    let table = rotind_bench::experiments::fig16();
    rotind_bench::emit("fig16", &table);
}
