//! Reproduce the paper's Figure 14 demonstration: LCSS keeps matching a
//! partially damaged specimen (the original Skhul V, missing its nose)
//! where Euclidean distance and DTW degrade (DESIGN.md §5).

fn main() {
    let table = rotind_bench::experiments::fig14();
    rotind_bench::emit("fig14", &table);
}
