//! Search-telemetry deep dive: run a batch of wedge 1-NN queries over a
//! projectile-point database with a recording [`QueryTrace`] attached,
//! then emit everything the observer saw — per-level prune counts,
//! the LB-tightness histogram (`lb / true distance` over admitted
//! leaves), the early-abandon depth histogram, and the K-planner
//! timeline — as `results/trace.csv` plus a human-readable report,
//! the Prometheus exposition of the metrics registry, and the span
//! table (wall-clock next to `num_steps`, the paper's §5.3 argument
//! made visible).
//!
//! A second pass re-runs the same queries under the hierarchical
//! [`Profiler`] and writes `results/trace_profile.json` — a
//! chrome://tracing / Perfetto-loadable span tree with wall-clock *and*
//! `num_steps` per phase — plus `results/trace_profile.folded`
//! (collapsed stacks for `flamegraph.pl` / speedscope), and prints
//! latency quantiles and the per-tier prune economics.
//!
//! `ROTIND_QUICK=1` bounds the database for smoke runs; the full run
//! uses the paper's 2,000-item, n = 251 workload.
//!
//! [`QueryTrace`]: rotind_obs::QueryTrace
//! [`Profiler`]: rotind_obs::Profiler

use rotind_bench::BenchError;
use rotind_eval::report::{fmt_ratio, Table};
use rotind_eval::speedup::wedge_startup_steps;
use rotind_index::engine::{Invariance, RotationQuery};
use rotind_obs::{global_span_report, MetricsRegistry, Profiler, QueryTrace, Span};
use rotind_shape::dataset as shapes;
use rotind_ts::StepCounter;
use std::process::ExitCode;

fn run() -> Result<(), BenchError> {
    let quick = rotind_bench::quick_mode();
    let (m, n, queries) = if quick { (200, 64, 3) } else { (2000, 251, 10) };
    println!("tracing {queries} wedge queries over m = {m} projectile points (n = {n})");

    let pool = shapes::projectile_points(m + queries, n, 1906).items;
    let db = &pool[..m];

    let mut trace = QueryTrace::new(n);
    let mut total_steps = 0u64;
    for query in &pool[m..] {
        let mut counter = StepCounter::new();
        let span = Span::enter_with("trace.query", &counter);
        let engine = RotationQuery::new(query, Invariance::Rotation)?;
        engine.nearest_observed(db, &mut counter, &mut trace)?;
        counter.add(wedge_startup_steps(n, engine.tree().max_k()));
        span.finish(&counter);
        total_steps += counter.steps();
    }

    let mut table = Table::new(["metric", "key", "value"]);
    let mut push = |metric: &str, key: String, value: String| {
        table.push_row([metric.to_string(), key, value]);
    };
    push("workload", "m".into(), m.to_string());
    push("workload", "n".into(), n.to_string());
    push("workload", "queries".into(), queries.to_string());
    push("steps", "total".into(), total_steps.to_string());
    push(
        "steps",
        "per-query".into(),
        (total_steps / queries as u64).to_string(),
    );
    for level in 0..trace.levels() {
        let key = format!("L{level}");
        push(
            "wedges_tested",
            key.clone(),
            trace.tested(level).to_string(),
        );
        push(
            "wedges_pruned",
            key.clone(),
            trace.pruned(level).to_string(),
        );
        push(
            "prune_rate",
            key,
            trace
                .prune_rate(level)
                .map(fmt_ratio)
                .unwrap_or_else(|| "-".into()),
        );
    }
    push(
        "leaf_distances",
        "total".into(),
        trace.leaf_distances().to_string(),
    );
    push(
        "early_abandons",
        "total".into(),
        trace.early_abandons().to_string(),
    );
    for (bound, count) in trace.tightness().buckets() {
        let key = if bound.is_finite() {
            format!("le={bound:.1}")
        } else {
            "le=+Inf".into()
        };
        push("lb_tightness", key, count.to_string());
    }
    if let Some(mean) = trace.tightness().mean() {
        push("lb_tightness", "mean".into(), fmt_ratio(mean));
    }
    for (bound, count) in trace.abandon_depth().buckets() {
        let key = if bound.is_finite() {
            format!("le={bound:.1}")
        } else {
            "le=+Inf".into()
        };
        push("abandon_depth", key, count.to_string());
    }
    if let Some(mean) = trace.abandon_depth().mean() {
        push("abandon_depth", "mean".into(), fmt_ratio(mean));
    }
    for (i, c) in trace.k_timeline().iter().enumerate() {
        let tag = if c.probing { "probe" } else { "adopt" };
        push(
            "k_change",
            i.to_string(),
            format!("{tag}@{} {}->{}", c.seq, c.old, c.new),
        );
    }

    // Second pass: the same queries under the hierarchical profiler.
    // Identical answers and step counts (observer neutrality, proven in
    // tests/profiling.rs) — this pass only *attributes* the work.
    let mut profiler = Profiler::new();
    let mut profiled_steps = 0u64;
    for query in &pool[m..] {
        let mut counter = StepCounter::new();
        let engine = RotationQuery::new(query, Invariance::Rotation)?;
        engine.nearest_observed(db, &mut counter, &mut profiler)?;
        counter.add(wedge_startup_steps(n, engine.tree().max_k()));
        profiled_steps += counter.steps();
    }
    assert_eq!(
        profiled_steps, total_steps,
        "the profiler must not change the step count"
    );

    println!("\n--- query trace ---\n{}", trace.report());
    println!("--- profile ---\n{}", profiler.report());
    let mut registry = MetricsRegistry::new();
    trace.export_to(&mut registry);
    profiler.export_to(&mut registry);
    println!(
        "--- metrics (prometheus exposition) ---\n{}",
        registry.render_prometheus()
    );
    println!("--- spans ---\n{}", global_span_report());

    let dir = rotind_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let chrome = dir.join("trace_profile.json");
    match std::fs::write(&chrome, profiler.tree().to_chrome_trace()) {
        Ok(()) => println!("[saved {} — load it at chrome://tracing]", chrome.display()),
        Err(e) => eprintln!("[warn: could not save {}: {e}]", chrome.display()),
    }
    let folded = dir.join("trace_profile.folded");
    match std::fs::write(&folded, profiler.tree().to_folded()) {
        Ok(()) => println!(
            "[saved {} — flamegraph.pl {} > flame.svg]",
            folded.display(),
            folded.display()
        ),
        Err(e) => eprintln!("[warn: could not save {}: {e}]", folded.display()),
    }

    rotind_bench::emit("trace", &table);
    Ok(())
}

fn main() -> ExitCode {
    rotind_bench::error::exit(run())
}
