//! The paper's wall-clock sanity check (Section 5.3): step-count ratios
//! and wall-clock ratios for the same workload should agree in shape.
//! `ROTIND_QUICK=1` shrinks the workload.

use rotind_distance::Measure;
use rotind_eval::report::{fmt_ratio, Table};
use rotind_eval::speedup::{scan_steps, scan_wall_nanos, SearchAlgorithm};
use rotind_shape::dataset::projectile_points;

fn main() {
    let quick = rotind_bench::quick_mode();
    let n = 251;
    let m = if quick { 300 } else { 2000 };
    let queries = if quick { 2 } else { 5 };
    let ds = projectile_points(m + queries, n, 99);
    let db: Vec<Vec<f64>> = ds.items[..m].to_vec();

    let algorithms = [
        SearchAlgorithm::BruteForce,
        SearchAlgorithm::Fft,
        SearchAlgorithm::EarlyAbandon,
        SearchAlgorithm::Wedge,
    ];
    let mut table = Table::new(["algorithm", "steps ratio", "wall-clock ratio"]);
    // Reference: brute force (run once per query; it is the slow part).
    let mut brute_nanos = 0u128;
    let mut brute_steps = 0u64;
    for q in 0..queries {
        let query = &ds.items[m + q];
        brute_nanos += scan_wall_nanos(&db, query, SearchAlgorithm::BruteForce, Measure::Euclidean);
        brute_steps += scan_steps(&db, query, SearchAlgorithm::BruteForce, Measure::Euclidean);
    }
    for alg in algorithms {
        let (mut nanos, mut steps) = (0u128, 0u64);
        for q in 0..queries {
            let query = &ds.items[m + q];
            nanos += scan_wall_nanos(&db, query, alg, Measure::Euclidean);
            steps += scan_steps(&db, query, alg, Measure::Euclidean);
        }
        table.push_row([
            alg.name().to_string(),
            fmt_ratio(steps as f64 / brute_steps as f64),
            fmt_ratio(nanos as f64 / brute_nanos as f64),
        ]);
    }
    rotind_bench::emit("wallclock", &table);
}
