//! Class-separation diagnostic: within- vs between-class
//! rotation-invariant distances on the OSU leaf subsample, per measure.

use rotind_bench::BenchError;
use rotind_distance::{DtwParams, Measure};
use rotind_index::engine::{Invariance, RotationQuery};
use std::process::ExitCode;

fn run() -> Result<(), BenchError> {
    let ds = rotind_shape::dataset::osu_leaf(20060904);
    let sub = ds.subsample(60, 4);
    if sub.items.is_empty() {
        return Err(BenchError::Data("OSU leaf subsample is empty".into()));
    }
    for (name, m) in [
        ("ED", Measure::Euclidean),
        ("DTW3", Measure::Dtw(DtwParams::new(3))),
        ("DTW7", Measure::Dtw(DtwParams::new(7))),
    ] {
        let (mut win, mut bet) = (vec![], vec![]);
        for i in 0..sub.len() {
            let e = RotationQuery::with_measure(&sub.items[i], Invariance::Rotation, m)?;
            for j in i + 1..sub.len() {
                let d = e.distance_to(&sub.items[j])?;
                if sub.labels[i] == sub.labels[j] {
                    win.push(d)
                } else {
                    bet.push(d)
                }
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "{name}: within avg {:.3} min {:.3} | between avg {:.3} min {:.3} | ratio {:.3}",
            avg(&win),
            min(&win),
            avg(&bet),
            min(&bet),
            avg(&bet) / avg(&win)
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    rotind_bench::error::exit(run())
}
