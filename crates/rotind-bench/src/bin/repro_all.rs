//! Regenerate every table and figure of the paper in one run, writing
//! CSVs under `results/`. `ROTIND_QUICK=1` shrinks everything for a
//! smoke pass.

/// A named experiment returning its result table.
type Experiment<'a> = (&'a str, Box<dyn Fn() -> rotind_eval::report::Table>);

fn main() {
    let quick = rotind_bench::quick_mode();
    let runs: Vec<Experiment> = vec![
        (
            "table8",
            Box::new(move || rotind_bench::experiments::table8(quick)),
        ),
        ("fig03", Box::new(rotind_bench::experiments::fig03)),
        ("fig14", Box::new(rotind_bench::experiments::fig14)),
        ("fig16", Box::new(rotind_bench::experiments::fig16)),
        ("fig17", Box::new(rotind_bench::experiments::fig17)),
        ("fig18", Box::new(rotind_bench::experiments::fig18)),
        (
            "fig19",
            Box::new(move || rotind_bench::experiments::fig19(quick)),
        ),
        (
            "fig20",
            Box::new(move || rotind_bench::experiments::fig20(quick)),
        ),
        (
            "fig21",
            Box::new(move || rotind_bench::experiments::fig21(quick)),
        ),
        (
            "fig22",
            Box::new(move || rotind_bench::experiments::fig22(quick)),
        ),
        (
            "fig23",
            Box::new(move || rotind_bench::experiments::fig23(quick)),
        ),
        (
            "fig24",
            Box::new(move || rotind_bench::experiments::fig24(quick)),
        ),
        (
            "scaling",
            Box::new(move || rotind_bench::experiments::scaling(quick)),
        ),
    ];
    for (name, run) in runs {
        println!("=== {name} ===");
        let start = std::time::Instant::now();
        let table = run();
        rotind_bench::emit(name, &table);
        println!("[{name} took {:.1?}]\n", start.elapsed());
    }
}
