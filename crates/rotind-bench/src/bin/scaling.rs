//! Reproduce the paper's empirical O(n^1.06) per-comparison cost claim
//! (Section 1 / Section 5; DESIGN.md §5).

fn main() {
    let quick = rotind_bench::quick_mode();
    let table = rotind_bench::experiments::scaling(quick);
    rotind_bench::emit("scaling", &table);
}
