//! Reproduce the paper's table8 (see DESIGN.md §5 for the experiment
//! index). Honours `ROTIND_QUICK=1` for a reduced-scale smoke run.

fn main() {
    let quick = rotind_bench::quick_mode();
    let table = rotind_bench::experiments::table8(quick);
    rotind_bench::emit("table8", &table);
}
