//! Microbenchmark of the bound-cascade accumulation kernels: the same
//! five inner loops the cascade profile is dominated by, timed per
//! backend — `seq` (the historical per-element scalar loops), `chunked`
//! (the canonical lane-parallel order in autovectorizable Rust), and
//! `simd` (the `std::simd` expression of the same order, present only
//! when this binary is built with `--features simd` on nightly).
//!
//! Inputs are deterministic mixed in/out series (some query points
//! inside the envelope, some out) at n = 64 / 256 / 1024, with an
//! infinite radius so every call runs the full accumulation — this
//! measures sustained kernel throughput, not abandon luck. Each cell
//! reports the median ns/call over repeated samples and its speedup
//! against the scalar backend.
//!
//! Writes machine-readable `results/bench_kernels.json` for CI
//! trending; `ROTIND_QUICK=1` shrinks iteration counts for smoke runs.

use rotind_distance::kernels;
use rotind_envelope::envelope::{sliding_max_into, sliding_max_into_seq, SlidingScratch};
use rotind_eval::report::Table;
use rotind_ts::StepCounter;
use std::fmt::Write as _;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

/// Sizes the acceptance criteria are stated at.
const SIZES: [usize; 3] = [64, 256, 1024];

/// One timed cell.
struct Entry {
    kernel: &'static str,
    n: usize,
    backend: &'static str,
    ns_per_call: f64,
    speedup_vs_scalar: f64,
}

/// Deterministic pseudo-random series (same generator family as the
/// kernel unit tests): smooth enough to look like shape data, busy
/// enough that clamp gaps mix zero and non-zero lanes.
fn series(n: usize, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.37 + phase).sin() + 0.4 * (i as f64 * 0.91).cos())
        .collect()
}

/// Envelope around a phase-shifted series; the bench query crosses it
/// repeatedly, so roughly half the positions are inside (gap 0) and
/// half outside — the mixed regime the cascade actually sees.
fn envelope(n: usize) -> (Vec<f64>, Vec<f64>) {
    let mid = series(n, 1.3);
    let upper: Vec<f64> = mid.iter().map(|x| x + 0.25).collect();
    let lower: Vec<f64> = mid.iter().map(|x| x - 0.25).collect();
    (upper, lower)
}

/// A deterministic permutation of `0..n` (7919 is prime, so the stride
/// walk covers every index for the power-of-two sizes used here).
fn permutation(n: usize) -> Vec<u32> {
    (0..n).map(|i| ((i * 7919) % n) as u32).collect()
}

/// Median ns/call of `f` over `samples` timed batches of `iters` calls
/// (after one warmup batch).
fn bench_ns(iters: u32, samples: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters {
        f();
    }
    let mut per_call: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / f64::from(iters)
        })
        .collect();
    per_call.sort_by(f64::total_cmp);
    // samples is a positive constant, so the median index is in range.
    // rotind-lint: allow(no-index)
    per_call[per_call.len() / 2]
}

/// Time the three backends of one kernel at one size and append the
/// rows. `run` is called with a backend tag and must execute one call
/// of that backend's kernel; a `None` time means the backend is not
/// compiled in (simd without the feature).
fn push_kernel(
    entries: &mut Vec<Entry>,
    kernel: &'static str,
    n: usize,
    iters: u32,
    samples: usize,
    mut run: impl FnMut(&'static str) -> bool,
) {
    let mut scalar_ns = f64::NAN;
    for backend in ["seq", "chunked", "simd"] {
        if !run(backend) {
            continue;
        }
        let ns = bench_ns(iters, samples, || {
            run(backend);
        });
        if backend == "seq" {
            scalar_ns = ns;
        }
        entries.push(Entry {
            kernel,
            n,
            backend,
            ns_per_call: ns,
            speedup_vs_scalar: scalar_ns / ns,
        });
    }
}

fn measure(quick: bool) -> Vec<Entry> {
    let samples = if quick { 3 } else { 7 };
    let mut entries = Vec::new();
    for n in SIZES {
        // Scale iterations so every sample touches a similar number of
        // elements regardless of n.
        let base = if quick { 200_000 } else { 2_000_000 };
        let iters = u32::try_from((base / n).max(500)).unwrap_or(500);

        let a = series(n, 0.0);
        let b = series(n, 2.2);
        let (upper, lower) = envelope(n);
        let order = permutation(n);
        // Interval-gap operands: a projection envelope the wedge
        // envelope partially overlaps, again a mixed zero/non-zero mix.
        let proj_mid = series(n, 0.6);
        let proj_up: Vec<f64> = proj_mid.iter().map(|x| x + 0.2).collect();
        let proj_lo: Vec<f64> = proj_mid.iter().map(|x| x - 0.2).collect();
        let mut counter = StepCounter::new();
        let r = f64::INFINITY;

        macro_rules! accum_kernel {
            ($backend_mod:ident, $be:ident, $call:expr) => {{
                match $be {
                    "seq" => {
                        use kernels::seq as $backend_mod;
                        let _ = black_box($call);
                        true
                    }
                    "chunked" => {
                        use kernels::chunked as $backend_mod;
                        let _ = black_box($call);
                        true
                    }
                    #[cfg(feature = "simd")]
                    "simd" => {
                        use kernels::simd as $backend_mod;
                        let _ = black_box($call);
                        true
                    }
                    _ => false,
                }
            }};
        }

        push_kernel(&mut entries, "euclid", n, iters, samples, |be| {
            accum_kernel!(
                bk,
                be,
                bk::sq_dist_abandon(black_box(&a), black_box(&b), r, &mut counter)
            )
        });
        push_kernel(&mut entries, "lb_keogh_clamp", n, iters, samples, |be| {
            accum_kernel!(
                bk,
                be,
                bk::clamp_sq_abandon(
                    black_box(&a),
                    black_box(&upper),
                    black_box(&lower),
                    r,
                    &mut counter
                )
            )
        });
        push_kernel(
            &mut entries,
            "lb_keogh_reordered",
            n,
            iters,
            samples,
            |be| {
                accum_kernel!(
                    bk,
                    be,
                    bk::clamp_sq_abandon_ordered(
                        black_box(&a),
                        black_box(&upper),
                        black_box(&lower),
                        black_box(&order),
                        r,
                        &mut counter
                    )
                )
            },
        );
        push_kernel(&mut entries, "interval_gap", n, iters, samples, |be| {
            accum_kernel!(
                bk,
                be,
                bk::interval_gap_sq_abandon(
                    0.0,
                    black_box(&upper),
                    black_box(&lower),
                    black_box(&proj_up),
                    black_box(&proj_lo),
                    r,
                    &mut counter
                )
            )
        });

        // Sliding extreme: seq = the historical monotonic deque,
        // chunked = the van Herk/Gil–Werman kernel. There is no
        // std::simd variant.
        let band = (n / 16).max(1);
        let mut win = SlidingScratch::new();
        let mut out = Vec::new();
        push_kernel(
            &mut entries,
            "sliding_max",
            n,
            iters,
            samples,
            |be| match be {
                "seq" => {
                    sliding_max_into_seq(black_box(&a), band, &mut win, &mut out);
                    black_box(&out);
                    true
                }
                "chunked" => {
                    sliding_max_into(black_box(&a), band, &mut win, &mut out);
                    black_box(&out);
                    true
                }
                _ => false,
            },
        );
    }
    entries
}

fn render_table(entries: &[Entry]) -> Table {
    let mut table = Table::new(["kernel", "n", "backend", "ns/call", "speedup vs scalar"]);
    for e in entries {
        table.push_row([
            e.kernel.to_string(),
            e.n.to_string(),
            e.backend.to_string(),
            format!("{:.1}", e.ns_per_call),
            format!("{:.2}x", e.speedup_vs_scalar),
        ]);
    }
    table
}

fn write_json(entries: &[Entry], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"comment\": \"bound-cascade kernel throughput; median ns/call, \
         infinite radius (full accumulation), mixed in/out data\","
    );
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"lanes\": {},", kernels::LANES);
    let _ = writeln!(out, "  \"simd_compiled\": {},", cfg!(feature = "simd"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kernel\": \"{}\", \"n\": {}, \"backend\": \"{}\", \
             \"ns_per_call\": {:.2}, \"speedup_vs_scalar\": {:.3}}}",
            e.kernel, e.n, e.backend, e.ns_per_call, e.speedup_vs_scalar
        );
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let quick = rotind_bench::quick_mode();
    println!(
        "kernel bench: sizes {SIZES:?}, backends seq/chunked{}{}",
        if cfg!(feature = "simd") { "/simd" } else { "" },
        if quick { " (quick)" } else { "" },
    );
    let entries = measure(quick);
    println!("{}", render_table(&entries).render());

    let json = write_json(&entries, quick);
    let path = rotind_bench::results_dir().join("bench_kernels.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => {
            eprintln!("[error: could not save {}: {e}]", path.display());
            return ExitCode::from(3);
        }
    }
    ExitCode::SUCCESS
}
