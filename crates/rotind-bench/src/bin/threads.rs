//! Thread-count sweep of the parallel chunked scan (DESIGN.md §10):
//! wall-clock and speedup over the single-thread scan on a Table 8–style
//! shape workload. Honours `ROTIND_QUICK=1` for a reduced-scale smoke
//! run and `ROTIND_THREADS` for the automatic thread-count row.

fn main() {
    let quick = rotind_bench::quick_mode();
    let table = rotind_bench::experiments::thread_scaling(quick);
    rotind_bench::emit("threads", &table);
}
