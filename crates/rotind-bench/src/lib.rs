//! # rotind-bench — benchmark harness
//!
//! Shared experiment logic behind the per-figure reproduction binaries
//! (`cargo run -p rotind-bench --release --bin fig19` etc.) and the
//! criterion micro benches. Each experiment in [`experiments`] returns a
//! [`rotind_eval::report::Table`] that the binaries print and save under
//! `results/`.
//!
//! Two environment variables control scale:
//!
//! * `ROTIND_QUICK=1` — shrink database sizes and query counts (used by
//!   `cargo bench` smoke runs and CI);
//! * `ROTIND_RESULTS=<dir>` — where CSVs are written (default
//!   `results/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod experiments;
pub mod regress;

pub use error::BenchError;

use std::path::PathBuf;

/// `true` when `ROTIND_QUICK` requests a reduced-scale run.
pub fn quick_mode() -> bool {
    std::env::var("ROTIND_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Output directory for CSV artefacts.
pub fn results_dir() -> PathBuf {
    std::env::var("ROTIND_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Print a table, then save it as `<name>.csv` under [`results_dir`]
/// and — when the table is sweep-shaped (numeric x + numeric series) —
/// render `<name>.svg` beside it. Failures to write are reported, not
/// fatal: benches may run in read-only sandboxes.
pub fn emit(name: &str, table: &rotind_eval::report::Table) {
    println!("{}", table.render());
    let path = results_dir().join(format!("{name}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("[warn: could not save {}: {e}]", path.display()),
    }
    let log_scale = name.starts_with("fig") || name == "scaling";
    if let Some(plot) =
        rotind_eval::plot::line_plot_from_table(&table.to_csv(), name, log_scale, log_scale)
    {
        let svg_path = results_dir().join(format!("{name}.svg"));
        match plot.write_svg(&svg_path) {
            Ok(true) => println!("[saved {}]", svg_path.display()),
            Ok(false) => {}
            Err(e) => eprintln!("[warn: could not save {}: {e}]", svg_path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_reads_env() {
        // Whatever the ambient value, the parser must treat "0"/"" as off.
        std::env::set_var("ROTIND_QUICK", "0");
        assert!(!quick_mode());
        std::env::set_var("ROTIND_QUICK", "1");
        assert!(quick_mode());
        std::env::remove_var("ROTIND_QUICK");
        assert!(!quick_mode());
    }

    #[test]
    fn emit_writes_csv_and_svg_for_sweep_tables() {
        let dir = std::env::temp_dir().join("rotind-bench-emit-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("ROTIND_RESULTS", dir.display().to_string());
        let mut table = rotind_eval::report::Table::new(["m", "wedge"]);
        table.push_row(["32", "0.19"]);
        table.push_row(["1000", "0.02"]);
        emit("figtest", &table);
        assert!(dir.join("figtest.csv").exists());
        assert!(dir.join("figtest.svg").exists(), "sweep tables render SVGs");
        // Non-numeric tables save CSV only.
        let mut names = rotind_eval::report::Table::new(["who", "what"]);
        names.push_row(["alpha", "beta"]);
        names.push_row(["gamma", "delta"]);
        emit("figtext", &names);
        assert!(dir.join("figtext.csv").exists());
        assert!(!dir.join("figtext.svg").exists());
        std::env::remove_var("ROTIND_RESULTS");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
