//! Reduced representations for disk-based indexing (Section 4.2,
//! Figure 24).
//!
//! The index must prune *in the reduced space*, i.e. from `D ≪ n`
//! numbers per item, while remaining admissible with respect to the true
//! rotation-invariant distance:
//!
//! * **Euclidean** — the first `D` Fourier magnitude coefficients (the
//!   paper's choice, after \[4\]/\[38\]): Euclidean distance between
//!   magnitude prefixes lower-bounds the rotation-invariant Euclidean
//!   distance (see `rotind-fft::lower_bound`).
//! * **DTW** — Fourier magnitudes do *not* lower-bound DTW, so the paper's
//!   elided "minor modifications" are realised here with the classic
//!   PAA projection: each item stores `D` segment means, the query-side
//!   wedge envelopes (already widened by the band, Proposition 2) are
//!   projected to per-segment max/min, and the point-to-envelope distance
//!   in PAA space lower-bounds `LB_Keogh_DTW` and hence DTW. Segments of
//!   equal width `⌊n/D⌋` are used and the remainder tail is dropped —
//!   dropping non-negative terms preserves admissibility for awkward
//!   lengths like the paper's `n = 251`.
//!
//! Stored PAA vectors are pre-scaled by `√seg` so that the envelope
//! distance is plain Euclidean geometry in the reduced space and is
//! 1-Lipschitz there — the property the VP-tree search relies on.

use rotind_envelope::Wedge;
use rotind_ts::StepCounter;

/// A `√seg`-scaled piecewise aggregate approximation.
#[derive(Debug, Clone, PartialEq)]
pub struct Paa {
    values: Vec<f64>,
    seg: usize,
}

impl Paa {
    /// Project `series` onto `d` equal segments of width `⌊n/d⌋`
    /// (clamped so the width is at least 1); the remainder tail is
    /// ignored.
    ///
    /// # Panics
    ///
    /// Panics for an empty series or `d = 0`.
    // lint: panic-exempt(documented preconditions: the snapshot rejects empty series and zero dims at admission)
    pub fn of(series: &[f64], d: usize) -> Self {
        let n = series.len();
        assert!(n > 0, "Paa::of: empty series");
        assert!(d > 0, "Paa::of: d must be >= 1");
        let d = d.min(n);
        let seg = n / d;
        let scale = (seg as f64).sqrt();
        let values = (0..d)
            .map(|j| {
                let chunk = &series[j * seg..(j + 1) * seg];
                scale * chunk.iter().sum::<f64>() / seg as f64
            })
            .collect();
        Paa { values, seg }
    }

    /// Rebuild a `Paa` from already-scaled values (as stored in an
    /// index). The caller asserts the values came from [`Paa::of`] with
    /// the same segment width.
    pub fn from_scaled(values: Vec<f64>, seg: usize) -> Self {
        assert!(seg > 0, "Paa::from_scaled: seg must be >= 1");
        Paa { values, seg }
    }

    /// The scaled segment means (length `d`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Segment width.
    pub fn seg(&self) -> usize {
        self.seg
    }

    /// Number of segments `d`.
    pub fn dims(&self) -> usize {
        self.values.len()
    }
}

/// A wedge envelope projected to PAA space: per-segment max of `U` and
/// min of `L`, `√seg`-scaled like [`Paa`].
#[derive(Debug, Clone, PartialEq)]
pub struct PaaEnvelope {
    upper: Vec<f64>,
    lower: Vec<f64>,
    seg: usize,
}

impl PaaEnvelope {
    /// Project a wedge onto `d` segments. Pass the *lower-bounding*
    /// wedge (already widened by the DTW band) for DTW admissibility.
    // lint: panic-exempt(documented preconditions: wedges are non-empty and the cascade fixes d at construction)
    pub fn of_wedge(wedge: &Wedge, d: usize) -> Self {
        let n = wedge.len();
        assert!(n > 0, "PaaEnvelope::of_wedge: empty wedge");
        assert!(d > 0, "PaaEnvelope::of_wedge: d must be >= 1");
        let d = d.min(n);
        let seg = n / d;
        let scale = (seg as f64).sqrt();
        let mut upper = Vec::with_capacity(d);
        let mut lower = Vec::with_capacity(d);
        for j in 0..d {
            let range = j * seg..(j + 1) * seg;
            let u = wedge.upper()[range.clone()]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            let l = wedge.lower()[range]
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min);
            upper.push(scale * u);
            lower.push(scale * l);
        }
        PaaEnvelope { upper, lower, seg }
    }

    /// Segment width.
    pub fn seg(&self) -> usize {
        self.seg
    }

    /// `LB_PAA`: the Euclidean distance from a PAA point to this envelope
    /// rectangle — an admissible lower bound of `LB_Keogh` between the
    /// full-resolution series and wedge (per-segment Jensen argument).
    /// One step per segment.
    // lint: panic-exempt(projection and envelope are built with the same d by the cascade constructor)
    pub fn min_dist(&self, paa: &Paa, counter: &mut StepCounter) -> f64 {
        assert_eq!(self.seg, paa.seg, "PaaEnvelope::min_dist: segment mismatch");
        assert_eq!(
            self.upper.len(),
            paa.values.len(),
            "PaaEnvelope::min_dist: dimension mismatch"
        );
        let mut acc = 0.0;
        for ((&x, &u), &l) in paa.values.iter().zip(&self.upper).zip(&self.lower) {
            counter.tick();
            if x > u {
                let t = x - u;
                acc += t * t;
            } else if x < l {
                let t = l - x;
                acc += t * t;
            }
        }
        acc.sqrt()
    }
}

/// The query side of the DTW disk index: the PAA projections of a
/// wedge-set cut. The per-item lower bound is the minimum over the set.
#[derive(Debug, Clone)]
pub struct PaaWedgeSet {
    envelopes: Vec<PaaEnvelope>,
}

impl PaaWedgeSet {
    /// Project each wedge of a cut.
    // lint: panic-exempt(documented precondition: dendrogram cuts are never empty)
    pub fn new(wedges: &[&Wedge], d: usize) -> Self {
        assert!(!wedges.is_empty(), "PaaWedgeSet::new: empty wedge set");
        PaaWedgeSet {
            envelopes: wedges.iter().map(|w| PaaEnvelope::of_wedge(w, d)).collect(),
        }
    }

    /// Admissible lower bound of the rotation-invariant distance: the
    /// minimum point-to-envelope distance over the wedge set (every
    /// rotation lives in some wedge).
    // lint: witness-exempt(min-fold over PaaEnvelope::min_dist; the true distance is not available at this layer to witness at runtime — admissibility vs DTW is property-tested in this module's tests and tests/lower_bounds.rs)
    pub fn lower_bound(&self, paa: &Paa, counter: &mut StepCounter) -> f64 {
        self.envelopes
            .iter()
            .map(|e| e.min_dist(paa, counter))
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_distance::dtw::{dtw, DtwParams};
    use rotind_envelope::WedgeTree;
    use rotind_ts::rotate::RotationMatrix;

    fn steps() -> StepCounter {
        StepCounter::new()
    }

    fn signal(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.23 + phase).sin() + 0.3 * (i as f64 * 0.71).cos())
            .collect()
    }

    #[test]
    fn paa_basic() {
        let p = Paa::of(&[1.0, 3.0, 5.0, 7.0], 2);
        // seg = 2, scale = √2; means are 2 and 6.
        assert_eq!(p.seg(), 2);
        assert_eq!(p.dims(), 2);
        assert!((p.values()[0] - 2.0 * 2f64.sqrt()).abs() < 1e-12);
        assert!((p.values()[1] - 6.0 * 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn paa_with_remainder_drops_tail() {
        // n = 7, d = 2 → seg = 3, uses first 6 samples.
        let p = Paa::of(&[1.0, 1.0, 1.0, 5.0, 5.0, 5.0, 999.0], 2);
        assert_eq!(p.seg(), 3);
        assert!((p.values()[0] - 3f64.sqrt()).abs() < 1e-12);
        assert!((p.values()[1] - 5.0 * 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn paa_clamps_d() {
        let p = Paa::of(&[1.0, 2.0], 100);
        assert_eq!(p.dims(), 2);
        assert_eq!(p.seg(), 1);
    }

    #[test]
    fn paa_distance_lower_bounds_euclidean() {
        // For singleton wedges, LB_PAA(q, env(c)) <= ED(q, c).
        let q = signal(64, 0.1);
        let c = signal(64, 1.3);
        let ed = q
            .iter()
            .zip(&c)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        for d in [2usize, 4, 8, 16, 32] {
            let w = rotind_envelope::Wedge::from_single(&c, rotind_ts::rotate::Rotation::shift(0));
            let env = PaaEnvelope::of_wedge(&w, d);
            let lb = env.min_dist(&Paa::of(&q, d), &mut steps());
            assert!(lb <= ed + 1e-9, "d = {d}: {lb} > {ed}");
        }
    }

    #[test]
    fn envelope_bound_is_admissible_for_dtw_rotations() {
        let n = 48;
        let band = 3;
        let query = signal(n, 0.0);
        let tree = WedgeTree::new(RotationMatrix::full(&query).unwrap(), band);
        let candidate = signal(n, 2.1);
        // True rotation-invariant DTW distance.
        let true_dist = (0..n)
            .map(|s| {
                dtw(
                    &candidate,
                    &rotind_ts::rotate::rotated(&query, s),
                    DtwParams::new(band),
                    &mut steps(),
                )
            })
            .fold(f64::INFINITY, f64::min);
        for d in [4usize, 8, 16] {
            for k in [1usize, 4, 8] {
                let cut = tree.cut_nodes(k);
                let wedges: Vec<&rotind_envelope::Wedge> =
                    cut.iter().map(|&node| tree.lb_wedge(node)).collect();
                let set = PaaWedgeSet::new(&wedges, d);
                let lb = set.lower_bound(&Paa::of(&candidate, d), &mut steps());
                assert!(
                    lb <= true_dist + 1e-9,
                    "d = {d}, k = {k}: lb {lb} > true {true_dist}"
                );
            }
        }
    }

    #[test]
    fn envelope_bound_admissible_at_awkward_length_251() {
        let n = 251;
        let query = signal(n, 0.4);
        let tree = WedgeTree::new(RotationMatrix::full(&query).unwrap(), 0);
        let candidate = signal(n, 1.9);
        let true_dist = (0..n)
            .map(|s| {
                let r = rotind_ts::rotate::rotated(&query, s);
                candidate
                    .iter()
                    .zip(&r)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(f64::INFINITY, f64::min);
        for d in [4usize, 8, 16, 32] {
            let cut = tree.cut_nodes(8);
            let wedges: Vec<&rotind_envelope::Wedge> =
                cut.iter().map(|&node| tree.lb_wedge(node)).collect();
            let set = PaaWedgeSet::new(&wedges, d);
            let lb = set.lower_bound(&Paa::of(&candidate, d), &mut steps());
            assert!(lb <= true_dist + 1e-9, "d = {d}");
        }
    }

    #[test]
    fn bound_is_zero_for_contained_series() {
        let n = 32;
        let query = signal(n, 0.0);
        let tree = WedgeTree::new(RotationMatrix::full(&query).unwrap(), 0);
        let cut = tree.cut_nodes(1);
        let wedges: Vec<&rotind_envelope::Wedge> =
            cut.iter().map(|&node| tree.lb_wedge(node)).collect();
        let set = PaaWedgeSet::new(&wedges, 8);
        // Any rotation of the query is inside the root wedge.
        let rot = rotind_ts::rotate::rotated(&query, 5);
        assert_eq!(set.lower_bound(&Paa::of(&rot, 8), &mut steps()), 0.0);
    }

    #[test]
    fn singleton_cut_dominates_root_cut() {
        let n = 40;
        let query = signal(n, 0.0);
        let tree = WedgeTree::new(RotationMatrix::full(&query).unwrap(), 0);
        let candidate = signal(n, 2.8);
        let paa = Paa::of(&candidate, 8);
        let bound_at = |k: usize| {
            let cut = tree.cut_nodes(k);
            let wedges: Vec<&rotind_envelope::Wedge> =
                cut.iter().map(|&node| tree.lb_wedge(node)).collect();
            PaaWedgeSet::new(&wedges, 8).lower_bound(&paa, &mut steps())
        };
        // k = max (singleton wedges) dominates k = 1 (root wedge).
        assert!(bound_at(n) >= bound_at(1) - 1e-12);
    }

    #[test]
    #[should_panic(expected = "segment mismatch")]
    fn mismatched_segments_panic() {
        let w = rotind_envelope::Wedge::from_single(
            &signal(32, 0.0),
            rotind_ts::rotate::Rotation::shift(0),
        );
        let env = PaaEnvelope::of_wedge(&w, 4);
        let paa = Paa::of(&signal(32, 0.0), 8);
        env.min_dist(&paa, &mut steps());
    }
}
