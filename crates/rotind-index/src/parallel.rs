//! Parallel chunked database scans with a shared best-so-far.
//!
//! The paper's experiments scan the database sequentially; on a modern
//! multicore machine the scan is embarrassingly parallel *except* for
//! the best-so-far threshold, which every H-Merge comparison wants as
//! tight as possible. This module splits the database into one
//! contiguous chunk per worker thread (hand-rolled on
//! [`std::thread::scope`] — no external thread pool) and shares the
//! best-so-far through a single atomic word, so an improvement found by
//! any worker immediately tightens pruning in all of them.
//!
//! # Determinism
//!
//! The parallel scan returns results **bit-identical** to the
//! sequential scan, including the lowest-index tie-break, even though
//! the shared threshold tightens in nondeterministic order. The
//! argument (DESIGN.md §10):
//!
//! 1. The shared radius only ever holds *achieved* exact distances, so
//!    it is always `>=` the global minimum `d*`.
//! 2. Admission is inclusive (`d <= r`) and dismissal strict, so every
//!    global minimizer is fully evaluated no matter when other workers
//!    tighten the radius.
//! 3. Leaf distances are exact and threshold-independent, and H-Merge
//!    breaks exact ties by the canonical rotation key — its outcome is
//!    a pure function of (candidate, tree, measure) for any threshold
//!    admitting the true minimum.
//! 4. Each worker keeps its chunk's best under a strict-improvement
//!    guard (lowest index wins ties within the chunk), and chunk bests
//!    are merged in chunk order by `(distance, index)` — reproducing
//!    the sequential lowest-index tie-break globally.
//!
//! Per-worker [`StepCounter`]s and forked observers
//! ([`ForkJoinObserver`]) are joined in chunk order after the scope
//! ends, so the merged telemetry is deterministic and equals the sum of
//! the per-thread parts.

use crate::engine::{Neighbor, RotationQuery, ScanState};
use crate::error::SearchError;
use crate::radius::SharedRadius;
use rotind_obs::{
    BudgetHook, BudgetOutcome, Exhausted, ForkJoinObserver, NoBudget, NoopObserver, QueryBudget,
    SharedBudget,
};
use rotind_ts::StepCounter;
use std::ops::Range;
use std::thread;

/// Worker-thread count used when a caller passes `threads == 0`: the
/// `ROTIND_THREADS` environment variable when set to a positive
/// integer, otherwise [`std::thread::available_parallelism`], otherwise
/// one. A set-but-invalid value falls back with a one-line stderr
/// warning (see [`rotind_obs::envcfg`]) instead of silently running a
/// different thread count than the operator asked for.
pub fn default_threads() -> usize {
    let auto = thread::available_parallelism().map_or(1, |n| n.get());
    rotind_obs::env_positive_usize("ROTIND_THREADS", auto)
}

/// Per-thread accounting from one parallel scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelReport {
    /// Worker threads actually used — the requested count bounded by the
    /// database size (a chunk is never empty), with `0` resolved via
    /// [`default_threads`].
    pub threads: usize,
    /// Database items in each worker's chunk, in chunk order. Chunks are
    /// contiguous and balanced: sizes differ by at most one.
    pub chunk_lens: Vec<usize>,
    /// Steps charged by each worker, in chunk order. Their sum is
    /// exactly what the scan merges into the caller's [`StepCounter`].
    pub per_thread_steps: Vec<u64>,
}

/// Balanced contiguous chunks: the first `len % threads` chunks get one
/// extra item. `threads` is clamped to `1..=len` so no chunk is empty.
// lint: panic-exempt(t is clamped to at least one, so the divisors are never zero)
fn chunk_ranges(len: usize, threads: usize) -> Vec<Range<usize>> {
    let t = threads.clamp(1, len.max(1));
    let base = len / t;
    let rem = len % t;
    let mut out = Vec::with_capacity(t);
    let mut start = 0;
    for i in 0..t {
        let size = base + usize::from(i < rem);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Resolve a caller-supplied thread count: `0` means "auto".
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        default_threads()
    } else {
        threads
    }
}

/// What one worker brings back from its chunk.
struct WorkerOutput<O> {
    best: Option<Neighbor>,
    hits: Vec<Neighbor>,
    steps: StepCounter,
    observer: O,
}

/// Merge chunk bests in chunk order by (distance, index): equal
/// distances keep the earlier chunk, reproducing the sequential
/// lowest-index tie-break.
fn merge_chunk_bests<O>(outputs: &[WorkerOutput<O>]) -> Option<Neighbor> {
    let mut best: Option<Neighbor> = None;
    for output in outputs {
        if let Some(candidate) = output.best {
            let improved = match best {
                None => true,
                Some(b) => candidate.distance < b.distance,
            };
            if improved {
                best = Some(candidate);
            }
        }
    }
    best
}

impl RotationQuery {
    /// Exact 1-nearest-neighbour search over `threads` worker threads
    /// (`0` = auto, see [`default_threads`]). Returns exactly what
    /// [`nearest`](RotationQuery::nearest) returns — same index, same
    /// distance bits, same rotation — for every thread count.
    pub fn nearest_parallel(
        &self,
        database: &[Vec<f64>],
        threads: usize,
    ) -> Result<Neighbor, SearchError> {
        let mut counter = StepCounter::new();
        self.nearest_parallel_with_steps(database, threads, &mut counter)
    }

    /// [`nearest_parallel`](RotationQuery::nearest_parallel) with step
    /// accounting: the summed per-thread `num_steps` is merged into
    /// `counter`.
    pub fn nearest_parallel_with_steps(
        &self,
        database: &[Vec<f64>],
        threads: usize,
        counter: &mut StepCounter,
    ) -> Result<Neighbor, SearchError> {
        let (hit, _) =
            self.nearest_parallel_observed(database, threads, counter, &mut NoopObserver)?;
        Ok(hit)
    }

    /// Parallel 1-NN with step accounting and observer callbacks.
    ///
    /// The observer is [forked](ForkJoinObserver::fork) once per worker
    /// and the children are [joined](ForkJoinObserver::join) back in
    /// chunk order, so aggregate telemetry is deterministic. The
    /// returned [`ParallelReport`] carries the per-thread step counts;
    /// their sum equals what was merged into `counter`.
    pub fn nearest_parallel_observed<O: ForkJoinObserver>(
        &self,
        database: &[Vec<f64>],
        threads: usize,
        counter: &mut StepCounter,
        observer: &mut O,
    ) -> Result<(Neighbor, ParallelReport), SearchError> {
        if database.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        self.check_all(database)?;
        let shared = SharedRadius::new(f64::INFINITY);
        let (outputs, report) = self.scan_chunks(
            database,
            threads,
            observer,
            || NoBudget,
            |scan, index, item, steps, obs, budget| {
                let bsf = shared.get();
                let outcome =
                    scan.compare_budgeted(item, bsf, self.measure(), steps, obs, budget)?;
                shared.update_min(outcome.distance);
                Some(Neighbor {
                    index,
                    distance: outcome.distance,
                    rotation: outcome.rotation,
                })
            },
        );
        let best = merge_chunk_bests(&outputs);
        self.join_outputs(outputs, counter, observer);
        // Non-empty database (checked above) + infinite initial radius:
        // some worker's first comparison always admits, so a best exists.
        // rotind-lint: allow(no-panic)
        let hit = best.expect("non-empty database yields a nearest neighbour");
        Ok((hit, report))
    }

    /// Parallel 1-NN under a [`QueryBudget`]: one budget pool
    /// ([`SharedBudget`]) is shared by all workers, each charging its
    /// local step delta at every dismissal boundary — so a trip by any
    /// worker stops all of them at their next check. When the budget
    /// never trips the answer is [`BudgetOutcome::Complete`] and
    /// bit-identical to the sequential scan; on exhaustion the partial
    /// best covers whatever prefix of each chunk was scanned (`None`
    /// only when no worker admitted a leaf before the trip).
    pub fn nearest_parallel_budgeted<O: ForkJoinObserver>(
        &self,
        database: &[Vec<f64>],
        threads: usize,
        counter: &mut StepCounter,
        observer: &mut O,
        budget: &QueryBudget,
    ) -> Result<(BudgetOutcome<Option<Neighbor>>, ParallelReport), SearchError> {
        if database.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        self.check_all(database)?;
        let pool = SharedBudget::from_budget(budget);
        let shared = SharedRadius::new(f64::INFINITY);
        let (outputs, report) = self.scan_chunks(
            database,
            threads,
            observer,
            || pool.hook(),
            |scan, index, item, steps, obs, hook| {
                let bsf = shared.get();
                let outcome = scan.compare_budgeted(item, bsf, self.measure(), steps, obs, hook)?;
                shared.update_min(outcome.distance);
                Some(Neighbor {
                    index,
                    distance: outcome.distance,
                    rotation: outcome.rotation,
                })
            },
        );
        let best = merge_chunk_bests(&outputs);
        self.join_outputs(outputs, counter, observer);
        let outcome = match pool.trip_reason() {
            Some(reason) => BudgetOutcome::Exhausted(Exhausted {
                partial: best,
                reason,
                steps_spent: pool.spent(),
            }),
            None => BudgetOutcome::Complete(best),
        };
        Ok((outcome, report))
    }

    /// Exact range query over `threads` worker threads (`0` = auto).
    /// Returns exactly what [`range`](RotationQuery::range) returns, in
    /// the same (database) order: the threshold is fixed, so workers
    /// share nothing and chunk hit lists concatenate in chunk order.
    pub fn range_parallel(
        &self,
        database: &[Vec<f64>],
        radius: f64,
        threads: usize,
    ) -> Result<Vec<Neighbor>, SearchError> {
        let mut counter = StepCounter::new();
        let (hits, _) = self.range_parallel_observed(
            database,
            radius,
            threads,
            &mut counter,
            &mut NoopObserver,
        )?;
        Ok(hits)
    }

    /// Parallel range query with step accounting and observer
    /// callbacks; fork/join semantics as in
    /// [`nearest_parallel_observed`](RotationQuery::nearest_parallel_observed).
    pub fn range_parallel_observed<O: ForkJoinObserver>(
        &self,
        database: &[Vec<f64>],
        radius: f64,
        threads: usize,
        counter: &mut StepCounter,
        observer: &mut O,
    ) -> Result<(Vec<Neighbor>, ParallelReport), SearchError> {
        if !radius.is_finite() || radius < 0.0 {
            return Err(SearchError::invalid_param(
                "radius",
                "must be finite and >= 0",
            ));
        }
        self.check_all(database)?;
        let (outputs, report) = self.scan_chunks(
            database,
            threads,
            observer,
            || NoBudget,
            |scan, index, item, steps, obs, budget| {
                let outcome =
                    scan.compare_budgeted(item, radius, self.measure(), steps, obs, budget)?;
                Some(Neighbor {
                    index,
                    distance: outcome.distance,
                    rotation: outcome.rotation,
                })
            },
        );
        let mut hits = Vec::new();
        for output in &outputs {
            hits.extend_from_slice(&output.hits);
        }
        self.join_outputs(outputs, counter, observer);
        Ok((hits, report))
    }

    /// Parallel range query under a [`QueryBudget`]; budget semantics as
    /// in [`nearest_parallel_budgeted`](RotationQuery::nearest_parallel_budgeted).
    /// On exhaustion the partial hit list covers the scanned prefix of
    /// each chunk, concatenated in chunk order.
    #[allow(clippy::type_complexity)] // the outcome + report pair mirrors the observed API
    pub fn range_parallel_budgeted<O: ForkJoinObserver>(
        &self,
        database: &[Vec<f64>],
        radius: f64,
        threads: usize,
        counter: &mut StepCounter,
        observer: &mut O,
        budget: &QueryBudget,
    ) -> Result<(BudgetOutcome<Vec<Neighbor>>, ParallelReport), SearchError> {
        if !radius.is_finite() || radius < 0.0 {
            return Err(SearchError::invalid_param(
                "radius",
                "must be finite and >= 0",
            ));
        }
        self.check_all(database)?;
        let pool = SharedBudget::from_budget(budget);
        let (outputs, report) = self.scan_chunks(
            database,
            threads,
            observer,
            || pool.hook(),
            |scan, index, item, steps, obs, hook| {
                let outcome =
                    scan.compare_budgeted(item, radius, self.measure(), steps, obs, hook)?;
                Some(Neighbor {
                    index,
                    distance: outcome.distance,
                    rotation: outcome.rotation,
                })
            },
        );
        let mut hits = Vec::new();
        for output in &outputs {
            hits.extend_from_slice(&output.hits);
        }
        self.join_outputs(outputs, counter, observer);
        let outcome = match pool.trip_reason() {
            Some(reason) => BudgetOutcome::Exhausted(Exhausted {
                partial: hits,
                reason,
                steps_spent: pool.spent(),
            }),
            None => BudgetOutcome::Complete(hits),
        };
        Ok((outcome, report))
    }

    /// Split `database` into balanced contiguous chunks and run
    /// `compare` over each chunk on its own thread, with a fresh
    /// [`ScanState`], step counter, forked observer and budget hook
    /// (from `make_budget` — [`NoBudget`] for un-budgeted scans, a
    /// [`SharedBudget`] pool hook for budgeted ones) per worker.
    /// `compare` returns `Some(hit)` when the item is admitted; workers
    /// record every hit (for range queries) and track the chunk best
    /// under a strict-improvement guard (for nearest queries). Outputs
    /// come back in chunk order.
    // lint: panic-exempt(chunk_ranges yields only indices below database.len())
    fn scan_chunks<O, B, MB, F>(
        &self,
        database: &[Vec<f64>],
        threads: usize,
        observer: &O,
        make_budget: MB,
        compare: F,
    ) -> (Vec<WorkerOutput<O>>, ParallelReport)
    where
        O: ForkJoinObserver,
        B: BudgetHook + Send,
        MB: Fn() -> B + Sync,
        F: Fn(
                &mut ScanState<'_>,
                usize,
                &[f64],
                &mut StepCounter,
                &mut O,
                &mut B,
            ) -> Option<Neighbor>
            + Sync,
    {
        let chunks = chunk_ranges(database.len(), resolve_threads(threads));
        let compare = &compare;
        let make_budget = &make_budget;
        let outputs: Vec<WorkerOutput<O>> = thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|range| {
                    let range = range.clone();
                    let mut child = observer.fork();
                    scope.spawn(move || {
                        let mut scan = ScanState::new(
                            self.tree(),
                            self.cascade(),
                            self.k_policy,
                            self.probe_intervals,
                        );
                        let mut steps = StepCounter::new();
                        let mut budget = make_budget();
                        let mut best: Option<Neighbor> = None;
                        let mut hits = Vec::new();
                        for index in range {
                            // Dismissal boundary: a tripped pool stops
                            // every worker at its next item. NoBudget
                            // folds this branch away entirely.
                            if !budget.check(steps.steps()) {
                                break;
                            }
                            if let Some(hit) = compare(
                                &mut scan,
                                index,
                                // `chunk_ranges` only yields indices below
                                // `database.len()`, so this cannot panic.
                                // rotind-lint: allow(no-index)
                                &database[index],
                                &mut steps,
                                &mut child,
                                &mut budget,
                            ) {
                                hits.push(hit);
                                // Strict improvement: ties keep the
                                // earlier (lower-index) incumbent, as
                                // the sequential scan does.
                                let improved = match best {
                                    None => true,
                                    Some(b) => hit.distance < b.distance,
                                };
                                if improved {
                                    best = Some(hit);
                                    scan.notify_improvement_observed(&mut child);
                                }
                            }
                        }
                        WorkerOutput {
                            best,
                            hits,
                            steps,
                            observer: child,
                        }
                    })
                })
                .collect();
            // Join in spawn (= chunk) order: observer joins and counter
            // merges become deterministic. A worker can only panic if
            // the search itself panicked; re-raising on the caller's
            // thread is the correct propagation, not a new panic site.
            handles
                .into_iter()
                // rotind-lint: allow(no-panic)
                .map(|h| h.join().expect("parallel scan worker panicked"))
                .collect()
        });
        let report = ParallelReport {
            threads: chunks.len(),
            chunk_lens: chunks.iter().map(ExactSizeIterator::len).collect(),
            per_thread_steps: outputs.iter().map(|o| o.steps.steps()).collect(),
        };
        (outputs, report)
    }

    /// Fold per-worker outputs back into the caller's counter and
    /// observer, in chunk order.
    fn join_outputs<O: ForkJoinObserver>(
        &self,
        outputs: Vec<WorkerOutput<O>>,
        counter: &mut StepCounter,
        observer: &mut O,
    ) {
        for output in outputs {
            counter.merge(output.steps);
            observer.join(output.observer);
        }
    }
}

/// Answer many queries against one database, one sequential scan per
/// query, spread over `threads` worker threads (`0` = auto). Queries
/// are chunked exactly like database items in the per-query scans, and
/// results come back in query order; each entry is bit-identical to
/// `engines[i].nearest(database)`.
pub fn nearest_batch(
    engines: &[RotationQuery],
    database: &[Vec<f64>],
    threads: usize,
) -> Result<Vec<Neighbor>, SearchError> {
    if database.is_empty() {
        return Err(SearchError::EmptyDatabase);
    }
    for engine in engines {
        engine.check_all(database)?;
    }
    let chunks = chunk_ranges(engines.len(), resolve_threads(threads));
    let per_chunk: Vec<Result<Vec<Neighbor>, SearchError>> = thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|range| {
                let range = range.clone();
                scope.spawn(move || {
                    range
                        // `chunk_ranges` only yields indices below
                        // `engines.len()`, so this cannot panic.
                        // rotind-lint: allow(no-index)
                        .map(|i| engines[i].nearest(database))
                        .collect::<Result<Vec<_>, _>>()
                })
            })
            .collect();
        // Propagating a worker panic, as in the chunked scan above.
        handles
            .into_iter()
            // rotind-lint: allow(no-panic)
            .map(|h| h.join().expect("batch query worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(engines.len());
    for chunk in per_chunk {
        out.extend(chunk?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Invariance;
    use rotind_obs::QueryTrace;
    use rotind_ts::rotate::rotated;

    fn signal(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.29 + phase).sin() + 0.5 * (i as f64 * 0.91 + phase).cos())
            .collect()
    }

    fn database(m: usize, n: usize) -> Vec<Vec<f64>> {
        (0..m).map(|k| signal(n, 1.0 + k as f64 * 0.37)).collect()
    }

    #[test]
    fn chunks_are_balanced_contiguous_and_cover() {
        for len in [0usize, 1, 2, 7, 16, 100] {
            for threads in [1usize, 2, 3, 4, 8, 200] {
                let chunks = chunk_ranges(len, threads);
                assert!(!chunks.is_empty());
                assert!(chunks.len() <= threads);
                let mut next = 0;
                for c in &chunks {
                    assert_eq!(c.start, next, "contiguous");
                    next = c.end;
                    if len > 0 {
                        assert!(!c.is_empty(), "no empty chunks when items exist");
                    }
                }
                assert_eq!(next, len, "chunks cover the database");
                let sizes: Vec<usize> = chunks.iter().map(ExactSizeIterator::len).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "balanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn nearest_parallel_matches_sequential_exactly() {
        let n = 32;
        let query = signal(n, 0.11);
        let mut db = database(37, n);
        db[20] = rotated(&query, 9);
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let sequential = engine.nearest(&db).unwrap();
        for threads in [1, 2, 3, 4, 8, 64] {
            let hit = engine.nearest_parallel(&db, threads).unwrap();
            assert_eq!(hit, sequential, "threads = {threads}");
        }
        // threads = 0 resolves to an automatic count and must also agree.
        assert_eq!(engine.nearest_parallel(&db, 0).unwrap(), sequential);
    }

    #[test]
    fn range_parallel_matches_sequential_exactly() {
        let n = 24;
        let query = signal(n, 0.0);
        let db = database(31, n);
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let radius = engine.nearest(&db).unwrap().distance * 2.0;
        let sequential = engine.range(&db, radius).unwrap();
        assert!(!sequential.is_empty());
        for threads in [1, 2, 4, 7] {
            let hits = engine.range_parallel(&db, radius, threads).unwrap();
            assert_eq!(hits, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn boundary_item_survives_parallel_range() {
        // Item at exactly the radius (exact-integer construction, see
        // the engine tests) must be returned by every thread count.
        let n = 16;
        let query: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut boundary = query.clone();
        boundary[5] += 3.0;
        let mut db = database(9, n);
        db[4] = boundary;
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        for threads in [1, 2, 3, 9] {
            let hits = engine.range_parallel(&db, 3.0, threads).unwrap();
            assert!(
                hits.iter().any(|h| h.index == 4 && h.distance == 3.0),
                "threads = {threads}: {hits:?}"
            );
        }
    }

    #[test]
    fn tie_break_prefers_lowest_index_across_chunks() {
        // Two bit-identical planted items in different chunks: every
        // thread count must return the lower index, like the
        // sequential scan.
        let n = 24;
        let query = signal(n, 0.5);
        let mut db = database(16, n);
        let planted = rotated(&query, 5);
        db[3] = planted.clone();
        db[12] = planted;
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let sequential = engine.nearest(&db).unwrap();
        assert_eq!(sequential.index, 3);
        for threads in [1, 2, 4, 16] {
            let hit = engine.nearest_parallel(&db, threads).unwrap();
            assert_eq!(hit, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn report_steps_sum_to_merged_counter() {
        let n = 24;
        let query = signal(n, 0.2);
        let db = database(23, n);
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        for threads in [1, 3, 5] {
            let mut counter = StepCounter::new();
            let mut trace = QueryTrace::new(n);
            let (hit, report) = engine
                .nearest_parallel_observed(&db, threads, &mut counter, &mut trace)
                .unwrap();
            assert_eq!(hit, engine.nearest(&db).unwrap());
            assert_eq!(report.threads, threads);
            assert_eq!(report.per_thread_steps.len(), threads);
            assert_eq!(report.chunk_lens.iter().sum::<usize>(), db.len());
            let sum: u64 = report.per_thread_steps.iter().sum();
            assert_eq!(counter.steps(), sum, "threads = {threads}");
            assert!(counter.steps() > 0);
            assert!(trace.leaf_distances() > 0, "joined trace saw leaves");
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let n = 16;
        let query = signal(n, 0.1);
        let db = database(3, n);
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let (hit, report) = engine
            .nearest_parallel_observed(&db, 100, &mut StepCounter::new(), &mut NoopObserver)
            .unwrap();
        assert_eq!(hit, engine.nearest(&db).unwrap());
        assert_eq!(report.threads, 3, "clamped to database size");
    }

    #[test]
    fn parallel_error_paths_match_sequential() {
        let engine = RotationQuery::new(&signal(16, 0.0), Invariance::Rotation).unwrap();
        assert_eq!(
            engine.nearest_parallel(&[], 4).unwrap_err(),
            SearchError::EmptyDatabase
        );
        let bad = vec![vec![0.0; 8]];
        assert!(matches!(
            engine.nearest_parallel(&bad, 4).unwrap_err(),
            SearchError::LengthMismatch { .. }
        ));
        assert!(engine.range_parallel(&database(3, 16), -1.0, 4).is_err());
        assert!(engine
            .range_parallel(&database(3, 16), f64::NAN, 4)
            .is_err());
    }

    #[test]
    fn batch_answers_every_query_in_order() {
        let n = 20;
        let db = database(15, n);
        let engines: Vec<RotationQuery> = (0..7)
            .map(|i| RotationQuery::new(&signal(n, 0.1 * i as f64), Invariance::Rotation).unwrap())
            .collect();
        let expected: Vec<Neighbor> = engines.iter().map(|e| e.nearest(&db).unwrap()).collect();
        for threads in [1, 2, 4, 32] {
            let got = nearest_batch(&engines, &db, threads).unwrap();
            assert_eq!(got, expected, "threads = {threads}");
        }
        // No queries: trivially empty.
        assert_eq!(nearest_batch(&[], &db, 4).unwrap(), vec![]);
        // Empty database errors like the sequential path.
        assert_eq!(
            nearest_batch(&engines, &[], 4).unwrap_err(),
            SearchError::EmptyDatabase
        );
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
