//! The shared best-so-far primitive of the parallel scan.
//!
//! Split out of [`parallel`](crate::parallel) so the concurrency model
//! tests (`tests/loom_model.rs`, behind `--features loom-tests`) can
//! drive the exact CAS-min loop the engine runs, under the vendored
//! loom scheduler. Outside a model the loom atomics are transparent
//! passthroughs, so the engine's behaviour is identical under either
//! build (DESIGN.md §14).

#[cfg(feature = "loom-tests")]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "loom-tests"))]
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically tightening best-so-far shared across worker threads.
///
/// Stores the `f64` bit pattern in an [`AtomicU64`]; updates go through
/// a compare-exchange loop that only ever *lowers* the stored value, so
/// every load observes a radius at least as large as the global minimum
/// achieved distance. Distances are non-negative and never NaN, so the
/// plain `f64` comparison in the loop is a total order here.
///
/// This is the project's blessed CAS-min protocol (the
/// `shared-atomic-protocol` lint checks conformance): `Acquire` load,
/// retry on `AcqRel`/`Acquire` `compare_exchange_weak`, never a plain
/// store, never a decision taken on a `Relaxed` load.
#[derive(Debug)]
pub struct SharedRadius(AtomicU64);

impl SharedRadius {
    /// A radius starting at `initial` (the scan starts at `+∞`).
    pub fn new(initial: f64) -> Self {
        SharedRadius(AtomicU64::new(initial.to_bits()))
    }

    /// The current radius. Never tighter than the global minimum
    /// achieved distance.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    /// Lower the shared radius to `value` unless it is already as low.
    pub fn update_min(&self, value: f64) {
        let mut current = self.0.load(Ordering::Acquire);
        loop {
            if f64::from_bits(current) <= value {
                return;
            }
            match self.0.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn shared_radius_only_tightens() {
        let r = SharedRadius::new(f64::INFINITY);
        assert_eq!(r.get(), f64::INFINITY);
        r.update_min(5.0);
        assert_eq!(r.get(), 5.0);
        r.update_min(7.0); // looser: ignored
        assert_eq!(r.get(), 5.0);
        r.update_min(5.0); // equal: no-op
        assert_eq!(r.get(), 5.0);
        r.update_min(0.0);
        assert_eq!(r.get(), 0.0);
    }

    #[test]
    fn shared_radius_tightens_under_contention() {
        let r = SharedRadius::new(f64::INFINITY);
        thread::scope(|s| {
            for t in 0..4 {
                let r = &r;
                s.spawn(move || {
                    for i in (0..1000).rev() {
                        r.update_min((t * 1000 + i) as f64);
                    }
                });
            }
        });
        assert_eq!(r.get(), 0.0, "global minimum survives the race");
    }
}
