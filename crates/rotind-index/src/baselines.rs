//! The rival search methods of the efficiency experiments (Section 5.3).
//!
//! Figures 19–23 compare four algorithms by average `num_steps` per
//! comparison: **brute force** (no optimisation at all), **early
//! abandon** (Tables 1–3 with best-so-far threading), **FFT** (the
//! Fourier-magnitude lower bound with the paper's `n·log₂n` cost model,
//! falling back to the early-abandon scan when the bound fails), and
//! **wedge** (the engine of this crate). The exact **convolution trick**
//! of Section 2.4 is included as a fifth method for the light-curve
//! discussion. All five return identical answers; only the step counts
//! differ.

use crate::error::SearchError;
use rotind_distance::measure::Measure;
use rotind_distance::rotation::{test_all_rotations, DatabaseMatch};
use rotind_fft::convolution::min_shift_euclidean;
use rotind_fft::lower_bound::{fft_cost_model, magnitude_distance};
use rotind_fft::magnitudes;
use rotind_obs::{NoopObserver, SearchObserver};
use rotind_ts::rotate::{Rotation, RotationMatrix};
use rotind_ts::StepCounter;

fn check(database: &[Vec<f64>], n: usize) -> Result<(), SearchError> {
    if database.is_empty() {
        return Err(SearchError::EmptyDatabase);
    }
    for (index, item) in database.iter().enumerate() {
        if item.len() != n {
            return Err(SearchError::LengthMismatch {
                index,
                expected: n,
                actual: item.len(),
            });
        }
    }
    Ok(())
}

/// Brute force: the full distance for every rotation of every item, with
/// no early abandoning and no best-so-far threading. The paper's 1.0
/// reference line.
pub fn brute_force_scan(
    query_rotations: &RotationMatrix,
    database: &[Vec<f64>],
    measure: Measure,
    counter: &mut StepCounter,
) -> Result<DatabaseMatch, SearchError> {
    check(database, query_rotations.series_len())?;
    let mut best: Option<DatabaseMatch> = None;
    let mut rotated = Vec::with_capacity(query_rotations.series_len());
    for (index, item) in database.iter().enumerate() {
        for row in 0..query_rotations.num_rotations() {
            query_rotations.row(row).copy_into(&mut rotated);
            let d = measure.distance(item, &rotated, counter);
            if best.is_none_or(|b| d < b.distance) {
                best = Some(DatabaseMatch {
                    index,
                    distance: d,
                    rotation: query_rotations.rotations()[row],
                });
            }
        }
    }
    Ok(best.expect("non-empty database"))
}

/// Early abandon: Table 3 — `Test_All_Rotations` per item with the
/// best-so-far threaded into every distance computation.
pub fn early_abandon_scan(
    query_rotations: &RotationMatrix,
    database: &[Vec<f64>],
    measure: Measure,
    counter: &mut StepCounter,
) -> Result<DatabaseMatch, SearchError> {
    check(database, query_rotations.series_len())?;
    rotind_distance::rotation::search_database(query_rotations, database, measure, counter)
        .ok_or(SearchError::EmptyDatabase)
}

/// [`early_abandon_scan`] reporting each completed rotation-invariant
/// item distance via [`SearchObserver::on_leaf_distance`] (items whose
/// every rotation early-abandoned fire nothing). The baselines have no
/// wedge structure, so the per-level wedge callbacks stay silent — the
/// shared currency with the wedge engine is distance evaluations.
pub fn early_abandon_scan_observed<O: SearchObserver>(
    query_rotations: &RotationMatrix,
    database: &[Vec<f64>],
    measure: Measure,
    counter: &mut StepCounter,
    observer: &mut O,
) -> Result<DatabaseMatch, SearchError> {
    check(database, query_rotations.series_len())?;
    let mut best: Option<DatabaseMatch> = None;
    let mut best_so_far = f64::INFINITY;
    for (index, item) in database.iter().enumerate() {
        if let Some(m) = test_all_rotations(item, query_rotations, best_so_far, measure, counter) {
            observer.on_leaf_distance(m.distance);
            // Inclusive admission means a later item at exactly
            // `best_so_far` returns `Some`; keep the incumbent on ties so
            // the winner is the lowest index, like `search_database`.
            if best.is_none_or(|b| m.distance < b.distance) {
                best_so_far = m.distance;
                best = Some(DatabaseMatch {
                    index,
                    distance: m.distance,
                    rotation: m.rotation,
                });
            }
        }
    }
    best.ok_or(SearchError::EmptyDatabase)
}

/// FFT filter (Euclidean only): per item, charge the paper's `n·log₂n`
/// cost model for the magnitude lower bound; when the bound fails to
/// prune, fall back to the early-abandoning rotation scan (Section 5.3:
/// *"If the FFT lower bound fails we allow the approach to avail of our
/// early abandoning techniques"*).
pub fn fft_scan(
    query_rotations: &RotationMatrix,
    database: &[Vec<f64>],
    counter: &mut StepCounter,
) -> Result<DatabaseMatch, SearchError> {
    fft_scan_observed(query_rotations, database, counter, &mut NoopObserver)
}

/// [`fft_scan`] with observer callbacks: the magnitude lower bound is a
/// single flat filter, reported as a level-0 wedge test
/// ([`SearchObserver::on_wedge_tested`] with `pruned` when the bound
/// beat best-so-far); completed item distances fire
/// [`SearchObserver::on_leaf_distance`].
pub fn fft_scan_observed<O: SearchObserver>(
    query_rotations: &RotationMatrix,
    database: &[Vec<f64>],
    counter: &mut StepCounter,
    observer: &mut O,
) -> Result<DatabaseMatch, SearchError> {
    let n = query_rotations.series_len();
    check(database, n)?;
    let query_mags = magnitudes(query_rotations.base());
    let mut best: Option<DatabaseMatch> = None;
    let mut best_so_far = f64::INFINITY;
    let mut scratch = StepCounter::new();
    for (index, item) in database.iter().enumerate() {
        // Cost model: one n·log2(n) transform per item tested.
        counter.add(fft_cost_model(n));
        let item_mags = magnitudes(item);
        let lb = magnitude_distance(&query_mags, &item_mags, &mut scratch);
        // Dismissal is strict against the admitted radius, like every
        // other prune in the workspace: `lb == best_so_far` does not
        // prove the item is farther than best-so-far.
        let pruned = lb > best_so_far;
        observer.on_wedge_tested(0, lb, best_so_far, pruned);
        if pruned {
            continue; // admissibly pruned
        }
        if let Some(m) = test_all_rotations(
            item,
            query_rotations,
            best_so_far,
            Measure::Euclidean,
            counter,
        ) {
            observer.on_leaf_distance(m.distance);
            if best.is_none_or(|b| m.distance < b.distance) {
                best_so_far = m.distance;
                best = Some(DatabaseMatch {
                    index,
                    distance: m.distance,
                    rotation: m.rotation,
                });
            }
        }
    }
    Ok(best.expect("non-empty database; infinite initial threshold"))
}

/// Convolution trick (Euclidean, full rotation invariance only): the
/// exact minimum-shift distance per item in `O(n log n)`, charged at
/// `3·n·log₂n` steps (two forward transforms and one inverse).
///
/// # Errors
///
/// [`SearchError::InvalidParam`] when the rotation matrix is not a plain
/// full-rotation matrix — the trick cannot express mirror or limited
/// invariance without extra passes.
pub fn convolution_scan(
    query_rotations: &RotationMatrix,
    database: &[Vec<f64>],
    counter: &mut StepCounter,
) -> Result<DatabaseMatch, SearchError> {
    let n = query_rotations.series_len();
    if query_rotations.num_rotations() != n
        || query_rotations.rotations().iter().any(|r| r.mirrored)
    {
        return Err(SearchError::invalid_param(
            "query_rotations",
            "convolution scan requires a full, mirror-free rotation matrix",
        ));
    }
    check(database, n)?;
    let base = query_rotations.base();
    let mut best: Option<DatabaseMatch> = None;
    for (index, item) in database.iter().enumerate() {
        counter.add(3 * fft_cost_model(n));
        let (d, shift) = min_shift_euclidean(item, base);
        if best.is_none_or(|b| d < b.distance) {
            best = Some(DatabaseMatch {
                index,
                distance: d,
                rotation: Rotation::shift(shift),
            });
        }
    }
    Ok(best.expect("non-empty database"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_distance::dtw::DtwParams;
    use rotind_ts::rotate::rotated;

    fn signal(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.33 + phase).sin() + 0.3 * (i as f64 * 0.71 + phase).cos())
            .collect()
    }

    fn setup(m: usize, n: usize) -> (RotationMatrix, Vec<Vec<f64>>) {
        let query = signal(n, 0.17);
        let mut db: Vec<Vec<f64>> = (0..m).map(|k| signal(n, 1.0 + k as f64 * 0.41)).collect();
        db[m / 2] = rotated(&query, n / 3);
        (RotationMatrix::full(&query).unwrap(), db)
    }

    #[test]
    fn all_baselines_agree() {
        let (matrix, db) = setup(12, 32);
        let mut c = StepCounter::new();
        let brute = brute_force_scan(&matrix, &db, Measure::Euclidean, &mut c).unwrap();
        let ea = early_abandon_scan(&matrix, &db, Measure::Euclidean, &mut c).unwrap();
        let fft = fft_scan(&matrix, &db, &mut c).unwrap();
        let conv = convolution_scan(&matrix, &db, &mut c).unwrap();
        for m in [&ea, &fft, &conv] {
            assert_eq!(m.index, brute.index);
            assert!((m.distance - brute.distance).abs() < 1e-7);
        }
        assert_eq!(brute.index, 6);
        assert!(brute.distance < 1e-7);
    }

    #[test]
    fn step_ordering_brute_worst() {
        let (matrix, db) = setup(20, 48);
        let mut brute = StepCounter::new();
        brute_force_scan(&matrix, &db, Measure::Euclidean, &mut brute).unwrap();
        let mut ea = StepCounter::new();
        early_abandon_scan(&matrix, &db, Measure::Euclidean, &mut ea).unwrap();
        assert_eq!(
            brute.steps(),
            (20 * 48 * 48) as u64,
            "brute force = m · n · n exactly"
        );
        assert!(ea.steps() < brute.steps());
    }

    #[test]
    fn fft_cost_model_charged() {
        let (matrix, db) = setup(5, 64);
        let mut c = StepCounter::new();
        fft_scan(&matrix, &db, &mut c).unwrap();
        assert!(
            c.steps() >= 5 * fft_cost_model(64),
            "per-item transform cost"
        );
    }

    #[test]
    fn brute_force_works_with_dtw() {
        let (matrix, db) = setup(8, 24);
        let measure = Measure::Dtw(DtwParams::new(2));
        let mut c = StepCounter::new();
        let brute = brute_force_scan(&matrix, &db, measure, &mut c).unwrap();
        let mut c2 = StepCounter::new();
        let ea = early_abandon_scan(&matrix, &db, measure, &mut c2).unwrap();
        assert_eq!(brute.index, ea.index);
        assert!((brute.distance - ea.distance).abs() < 1e-9);
        assert!(c2.steps() <= c.steps());
    }

    #[test]
    fn convolution_rejects_mirror_matrix() {
        let query = signal(16, 0.0);
        let matrix = RotationMatrix::with_mirror(&query).unwrap();
        let db = vec![signal(16, 1.0)];
        assert!(matches!(
            convolution_scan(&matrix, &db, &mut StepCounter::new()),
            Err(SearchError::InvalidParam { .. })
        ));
    }

    #[test]
    fn observed_baselines_match_plain_and_fire_events() {
        use rotind_obs::QueryTrace;
        let (matrix, db) = setup(16, 32);
        let mut c1 = StepCounter::new();
        let ea = early_abandon_scan(&matrix, &db, Measure::Euclidean, &mut c1).unwrap();
        let mut trace = QueryTrace::new(32);
        let mut c2 = StepCounter::new();
        let ea_obs =
            early_abandon_scan_observed(&matrix, &db, Measure::Euclidean, &mut c2, &mut trace)
                .unwrap();
        assert_eq!(ea.index, ea_obs.index);
        assert_eq!(c1.steps(), c2.steps(), "observer is step-neutral");
        assert!(trace.leaf_distances() >= 1);

        let mut c3 = StepCounter::new();
        let fft = fft_scan(&matrix, &db, &mut c3).unwrap();
        let mut fft_trace = QueryTrace::new(32);
        let mut c4 = StepCounter::new();
        let fft_obs = fft_scan_observed(&matrix, &db, &mut c4, &mut fft_trace).unwrap();
        assert_eq!(fft.index, fft_obs.index);
        assert_eq!(c3.steps(), c4.steps());
        assert_eq!(
            fft_trace.tested(0),
            db.len() as u64,
            "one magnitude-bound test per item"
        );
    }

    #[test]
    fn error_paths() {
        let query = signal(8, 0.0);
        let matrix = RotationMatrix::full(&query).unwrap();
        let mut c = StepCounter::new();
        assert_eq!(
            brute_force_scan(&matrix, &[], Measure::Euclidean, &mut c).unwrap_err(),
            SearchError::EmptyDatabase
        );
        let bad = vec![vec![1.0; 4]];
        assert!(matches!(
            fft_scan(&matrix, &bad, &mut c),
            Err(SearchError::LengthMismatch { .. })
        ));
    }
}
