//! # rotind-index — wedge-based rotation-invariant search and indexing
//!
//! The paper's search machinery (Section 4):
//!
//! * [`hmerge`] — the H-Merge algorithm (Table 6): traverse a wedge-set
//!   cut of the hierarchical wedge tree with `EA_LB_Keogh`, descending
//!   into child wedges only where the bound fails to prune, and
//!   evaluating the exact measure at single-rotation leaves;
//! * [`planner`] — the dynamic wedge-set-size controller: start at
//!   `K = 2` and, each time the best-so-far improves, probe the values
//!   that evenly divide `[1, K]` and `[K, K_max]` into five intervals,
//!   adopting the cheapest (Section 4.1);
//! * [`engine`] — the user-facing [`engine::RotationQuery`]: exact
//!   rotation-invariant nearest-neighbour / k-NN / range search over a
//!   database, for Euclidean, DTW and LCSS, with mirror-image and
//!   rotation-limited invariance;
//! * [`cascade`] — the tiered admissible-bound cascade the engine runs
//!   per (candidate, wedge) pair: the `O(1)` endpoint bound, the
//!   reduced-space PAA bound, reordered early-abandoning LB_Keogh and
//!   the LB_Improved second pass (DESIGN.md §12);
//! * [`parallel`] — chunked multi-threaded database scans sharing an
//!   atomic best-so-far, bit-identical to the sequential scan
//!   (DESIGN.md §10), plus a batch-of-queries entry point;
//! * [`radius`] — the CAS-min shared best-so-far those scans use,
//!   model-checked under loom (`--features loom-tests`, DESIGN.md §14);
//! * [`snapshot`] — the immutable, `Arc`-shared database handle a
//!   long-lived query service owns, with a batch-level cache of
//!   candidate PAA projections (DESIGN.md §15);
//! * [`baselines`] — the rival methods of Figures 19–23: brute force,
//!   early abandon, the FFT magnitude filter and the convolution trick;
//! * [`reduced`] — reduced representations for disk-based indexing:
//!   Fourier magnitudes (Euclidean) and PAA projections of the wedge
//!   envelopes (DTW), both admissible;
//! * [`vptree`] — a vantage-point tree over the reduced space (Table 7),
//!   searched with any 1-Lipschitz lower-bound function;
//! * [`disk`] — the simulated disk and the fraction-retrieved accounting
//!   of Figure 24, via [`disk::IndexedDatabase`];
//! * [`stream`] — wedge-based streaming query filtering over sets of
//!   monitored patterns (the "Atomic Wedgie" application the paper
//!   cites);
//! * [`motif`] — shape motif discovery (rotation-invariant closest
//!   pairs), the data-mining subroutine of the paper's conclusion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod cascade;
pub mod disk;
pub mod engine;
pub mod error;
pub mod hmerge;
pub mod motif;
pub mod parallel;
pub mod planner;
pub mod radius;
pub mod reduced;
pub mod snapshot;
pub mod stream;
pub mod vptree;

pub use cascade::{BatchPaaCache, BoundCascade, CascadeConfig};
pub use engine::{Invariance, Neighbor, RotationQuery};
pub use error::SearchError;
pub use parallel::{default_threads, nearest_batch, ParallelReport};
pub use snapshot::{IndexSnapshot, QueryKind, QuerySpec};
