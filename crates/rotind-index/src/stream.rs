//! Streaming query filtering with wedges ("Atomic Wedgie").
//!
//! Section 1 of the paper lists *"query by humming and monitoring
//! streams"* among the adopted applications of LB_Keogh wedges, citing
//! Wei et al.'s Atomic Wedgie \[40\]: a set of *pattern* series is merged
//! into hierarchical wedges, and each incoming sliding window of a live
//! stream is tested against the wedge set — one early-abandoning
//! `LB_Keogh` pass can dismiss *every* pattern at once, which is what
//! makes monitoring hundreds of patterns at stream rate feasible.
//!
//! The wedge machinery is exactly the one the shape engine uses; only
//! the candidate set differs (arbitrary patterns instead of the
//! rotations of one query). Patterns may carry individual thresholds.

use crate::error::SearchError;
use rotind_cluster::linkage::{cluster_series, Linkage};
use rotind_cluster::Dendrogram;
use rotind_distance::measure::Measure;
use rotind_envelope::lb_keogh::lb_keogh_early_abandon;
use rotind_envelope::Wedge;
use rotind_ts::rotate::Rotation;
use rotind_ts::StepCounter;

/// A match reported by the filter: which pattern fired, at which stream
/// offset its window *ended*, and the distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternMatch {
    /// Index of the matched pattern (order of construction).
    pub pattern: usize,
    /// Stream position (0-based sample count) of the window's last
    /// sample.
    pub end_position: usize,
    /// Distance between the window and the pattern.
    pub distance: f64,
}

/// A monitoring filter over a fixed set of equal-length patterns.
///
/// Patterns are clustered (group-average) into a hierarchical wedge
/// tree once; [`StreamFilter::push`] then slides a ring buffer over the
/// stream and reports every pattern within its threshold of the current
/// window.
///
/// ```
/// use rotind_index::stream::StreamFilter;
/// use rotind_distance::Measure;
/// use rotind_ts::StepCounter;
/// let pattern = vec![0.0, 1.0, 2.0, 1.0];
/// let mut filter =
///     StreamFilter::new(vec![pattern.clone()], vec![0.1], Measure::Euclidean).unwrap();
/// let mut steps = StepCounter::new();
/// let mut stream = vec![9.0; 10];
/// stream.extend(pattern);         // the pattern appears at offset 10
/// let matches = filter.scan(&stream, &mut steps);
/// assert_eq!(matches.len(), 1);
/// assert_eq!(matches[0].end_position, 13);
/// ```
#[derive(Debug, Clone)]
pub struct StreamFilter {
    patterns: Vec<Vec<f64>>,
    thresholds: Vec<f64>,
    /// Wedges per dendrogram node (leaves first, then merges).
    wedges: Vec<Wedge>,
    dendrogram: Dendrogram,
    /// For pruning, the largest threshold below a node (a wedge may be
    /// dismissed only when the bound exceeds every member's threshold).
    node_max_threshold: Vec<f64>,
    measure: Measure,
    /// Ring buffer holding the most recent `n` samples.
    window: Vec<f64>,
    head: usize,
    seen: usize,
}

impl StreamFilter {
    /// Build a filter: `patterns[i]` fires when a window is within
    /// `thresholds[i]` of it under `measure` (Euclidean or DTW; the
    /// paper's framework supports LCSS too but monitoring thresholds are
    /// distance-based here).
    ///
    /// # Errors
    ///
    /// [`SearchError`] on empty input, length mismatches, non-positive
    /// thresholds, or an LCSS measure.
    // lint: panic-exempt(patterns is checked non-empty a few lines above the first index)
    pub fn new(
        patterns: Vec<Vec<f64>>,
        thresholds: Vec<f64>,
        measure: Measure,
    ) -> Result<Self, SearchError> {
        if patterns.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        if patterns.len() != thresholds.len() {
            return Err(SearchError::invalid_param(
                "thresholds",
                format!(
                    "{} thresholds for {} patterns",
                    thresholds.len(),
                    patterns.len()
                ),
            ));
        }
        if matches!(measure, Measure::Lcss(_)) {
            return Err(SearchError::invalid_param(
                "measure",
                "the stream filter supports Euclidean and DTW",
            ));
        }
        let n = patterns[0].len();
        if n == 0 {
            return Err(SearchError::invalid_param("patterns", "must be non-empty"));
        }
        for (index, p) in patterns.iter().enumerate() {
            if p.len() != n {
                return Err(SearchError::LengthMismatch {
                    index,
                    expected: n,
                    actual: p.len(),
                });
            }
        }
        if thresholds.iter().any(|&t| !t.is_finite() || t <= 0.0) {
            return Err(SearchError::invalid_param(
                "thresholds",
                "must be finite and positive",
            ));
        }

        let dendrogram = cluster_series(&patterns, Linkage::Average);
        let band = measure.warping_band();
        // Leaf wedges (widened for DTW), then internal merges. The `tag`
        // on each wedge member records the pattern index in the
        // `Rotation::shift` field (wedge members are nominally rotations;
        // here the "rotation" is simply an id).
        let mut wedges: Vec<Wedge> = (0..patterns.len())
            .map(|i| Wedge::from_single(&patterns[i], Rotation::shift(i)).widened(band))
            .collect();
        let mut node_max_threshold: Vec<f64> = thresholds.clone();
        for merge in dendrogram.merges() {
            wedges.push(Wedge::merge(&wedges[merge.left], &wedges[merge.right]));
            node_max_threshold
                .push(node_max_threshold[merge.left].max(node_max_threshold[merge.right]));
        }
        Ok(StreamFilter {
            patterns,
            thresholds,
            wedges,
            dendrogram,
            node_max_threshold,
            measure,
            window: vec![0.0; n],
            head: 0,
            seen: 0,
        })
    }

    /// Pattern length `n` (= window size).
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Number of monitored patterns.
    pub fn num_patterns(&self) -> usize {
        self.patterns.len()
    }

    /// Samples consumed so far.
    pub fn position(&self) -> usize {
        self.seen
    }

    /// The current window, oldest sample first (empty until `n` samples
    /// have been consumed).
    // lint: panic-exempt(ring indices are reduced mod the window length)
    pub fn current_window(&self) -> Option<Vec<f64>> {
        (self.seen >= self.window.len()).then(|| {
            let n = self.window.len();
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(self.window[(self.head + i) % n]);
            }
            out
        })
    }

    /// Consume one stream sample; report every pattern whose threshold
    /// the window ending at this sample satisfies. Steps are charged to
    /// `counter` (one LB pass can dismiss a whole wedge of patterns).
    // lint: panic-exempt(head stays below the window length, and the window expect only fires once seen >= n)
    pub fn push(&mut self, sample: f64, counter: &mut StepCounter) -> Vec<PatternMatch> {
        let n = self.window.len();
        self.window[self.head] = sample;
        self.head = (self.head + 1) % n;
        self.seen += 1;
        if self.seen < n {
            return Vec::new();
        }
        let window = self.current_window().expect("window is full");
        let mut matches = Vec::new();
        let mut stack = vec![self.dendrogram.root().expect("non-empty pattern set")];
        while let Some(node) = stack.pop() {
            let cap = self.node_max_threshold[node];
            // Dismiss the whole wedge when even the loosest member
            // threshold is provably exceeded.
            if lb_keogh_early_abandon(&window, &self.wedges[node], cap, counter).is_none() {
                continue;
            }
            match self.dendrogram.children(node) {
                Some((l, r)) => {
                    stack.push(l);
                    stack.push(r);
                }
                None => {
                    let threshold = self.thresholds[node];
                    if let Some(d) = self.measure.distance_early_abandon(
                        &window,
                        &self.patterns[node],
                        threshold,
                        counter,
                    ) {
                        if d <= threshold {
                            matches.push(PatternMatch {
                                pattern: node,
                                end_position: self.seen - 1,
                                distance: d,
                            });
                        }
                    }
                }
            }
        }
        matches.sort_by_key(|m| m.pattern);
        matches
    }

    /// Convenience: run the filter over a whole batch of samples.
    pub fn scan(&mut self, samples: &[f64], counter: &mut StepCounter) -> Vec<PatternMatch> {
        samples
            .iter()
            .flat_map(|&s| self.push(s, counter))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_distance::DtwParams;

    fn steps() -> StepCounter {
        StepCounter::new()
    }

    fn pattern(n: usize, freq: f64) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * freq).sin()).collect()
    }

    fn filter(measure: Measure) -> StreamFilter {
        StreamFilter::new(
            vec![pattern(16, 0.5), pattern(16, 1.1), pattern(16, 2.3)],
            vec![0.5, 0.5, 0.5],
            measure,
        )
        .unwrap()
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(
            StreamFilter::new(vec![], vec![], Measure::Euclidean),
            Err(SearchError::EmptyDatabase)
        ));
        assert!(
            StreamFilter::new(vec![vec![1.0, 2.0]], vec![1.0, 2.0], Measure::Euclidean).is_err()
        );
        assert!(StreamFilter::new(
            vec![vec![1.0, 2.0], vec![1.0]],
            vec![1.0, 1.0],
            Measure::Euclidean
        )
        .is_err());
        assert!(StreamFilter::new(vec![vec![1.0]], vec![-1.0], Measure::Euclidean).is_err());
        assert!(StreamFilter::new(
            vec![vec![1.0]],
            vec![1.0],
            Measure::Lcss(rotind_distance::LcssParams::new(0.5, 1))
        )
        .is_err());
    }

    #[test]
    fn no_matches_before_window_fills() {
        let mut f = filter(Measure::Euclidean);
        let mut c = steps();
        for i in 0..15 {
            assert!(f.push(0.0, &mut c).is_empty(), "sample {i}");
            assert!(f.current_window().is_none());
        }
        assert_eq!(f.position(), 15);
    }

    #[test]
    fn detects_embedded_pattern() {
        let mut f = filter(Measure::Euclidean);
        let mut c = steps();
        // Stream: noise-ish preamble, then pattern 1 verbatim, then junk.
        let mut stream: Vec<f64> = (0..40).map(|i| 3.0 + (i as f64 * 0.17).cos()).collect();
        stream.extend(pattern(16, 1.1));
        stream.extend((0..20).map(|i| -2.0 + (i as f64 * 0.4).sin()));
        let matches = f.scan(&stream, &mut c);
        let hit = matches
            .iter()
            .find(|m| m.pattern == 1 && m.distance < 1e-9)
            .expect("embedded pattern must fire");
        assert_eq!(hit.end_position, 40 + 16 - 1);
        // The other patterns never fire exactly.
        assert!(matches.iter().all(|m| m.pattern == 1 || m.distance > 1e-9));
    }

    #[test]
    fn matches_agree_with_naive_scan() {
        let patterns = vec![pattern(12, 0.4), pattern(12, 0.9), pattern(12, 1.7)];
        let thresholds = vec![1.2, 0.8, 2.0];
        let stream: Vec<f64> = (0..120)
            .map(|i| (i as f64 * 0.4).sin() + 0.3 * (i as f64 * 0.05).cos())
            .collect();
        let mut f =
            StreamFilter::new(patterns.clone(), thresholds.clone(), Measure::Euclidean).unwrap();
        let mut c = steps();
        let fast = f.scan(&stream, &mut c);
        // Naive: every window against every pattern.
        let mut naive = Vec::new();
        for end in 11..120 {
            let window = &stream[end - 11..=end];
            for (p, pat) in patterns.iter().enumerate() {
                let d: f64 = window
                    .iter()
                    .zip(pat)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                if d <= thresholds[p] {
                    naive.push((p, end, d));
                }
            }
        }
        assert_eq!(fast.len(), naive.len());
        for (m, (p, end, d)) in fast.iter().zip(&naive) {
            assert_eq!(m.pattern, *p);
            assert_eq!(m.end_position, *end);
            assert!((m.distance - d).abs() < 1e-9);
        }
    }

    #[test]
    fn wedge_dismissal_saves_steps_on_hopeless_streams() {
        // A stream far from every pattern: the root wedge dismisses all
        // patterns in a few steps per window.
        let mut f = filter(Measure::Euclidean);
        let mut c = steps();
        let stream = vec![50.0; 200];
        assert!(f.scan(&stream, &mut c).is_empty());
        // Naive cost would be >= 3 patterns × 16 steps × 185 windows.
        let naive_floor = 3 * 16 * (200 - 15) as u64;
        assert!(
            c.steps() < naive_floor / 4,
            "wedge filter used {} steps vs naive floor {naive_floor}",
            c.steps()
        );
    }

    #[test]
    fn dtw_filter_tolerates_local_warping() {
        let n = 24;
        let base = pattern(n, 0.7);
        // A locally warped copy: the middle third lags by one sample
        // (endpoints untouched, so DTW's anchored corners are unaffected).
        let mut warped = base.clone();
        warped[8..16].copy_from_slice(&base[7..15]);
        let threshold = 0.8;
        let mut ed_filter =
            StreamFilter::new(vec![base.clone()], vec![threshold], Measure::Euclidean).unwrap();
        let mut dtw_filter = StreamFilter::new(
            vec![base.clone()],
            vec![threshold],
            Measure::Dtw(DtwParams::new(3)),
        )
        .unwrap();
        let mut c = steps();
        let ed_hits = ed_filter.scan(&warped, &mut c).len();
        let dtw_hits = dtw_filter.scan(&warped, &mut c).len();
        assert!(dtw_hits >= ed_hits, "DTW must be at least as tolerant");
        assert!(dtw_hits >= 1, "warped copy should fire under DTW");
    }

    #[test]
    fn per_pattern_thresholds_respected() {
        let p0 = pattern(10, 0.8);
        let mut near = p0.clone();
        near[4] += 0.4; // distance 0.4 from p0
        let f = StreamFilter::new(
            vec![p0.clone(), p0.clone()],
            vec![0.1, 1.0],
            Measure::Euclidean,
        )
        .unwrap();
        let mut f = f;
        let mut c = steps();
        let matches = f.scan(&near, &mut c);
        assert_eq!(matches.len(), 1, "only the loose-threshold copy fires");
        assert_eq!(matches[0].pattern, 1);
    }

    #[test]
    fn window_accessors() {
        let mut f = filter(Measure::Euclidean);
        let mut c = steps();
        assert_eq!(f.window_len(), 16);
        assert_eq!(f.num_patterns(), 3);
        for i in 0..20 {
            f.push(i as f64, &mut c);
        }
        let w = f.current_window().unwrap();
        assert_eq!(w, (4..20).map(|i| i as f64).collect::<Vec<_>>());
    }
}
