//! The H-Merge algorithm (Section 4.1, Table 6).
//!
//! Given a candidate series and a wedge-set cut of the query's
//! hierarchical wedge tree, H-Merge pushes the cut's wedges onto a stack
//! and repeatedly pops: if `EA_LB_Keogh` against the popped wedge early
//! abandons, *every* rotation covered by that wedge is pruned with a
//! single (partial) pass; otherwise the wedge's children are pushed, down
//! to single-rotation leaves where the exact measure is evaluated.
//!
//! The paper's Table 6 is phrased for query filtering (return the first
//! leaf within `r`); the search engines need the *best* rotation, so this
//! implementation keeps scanning with the running best as the abandoning
//! threshold — exactly how `NNSearch` (Table 7) consumes it.

use crate::cascade::{BoundCascade, CandidateCtx};
use rotind_distance::measure::Measure;
use rotind_envelope::lb_keogh::{
    lb_improved_second_pass, lb_keogh_early_abandon_at, lb_keogh_reordered_early_abandon_at,
    lb_kim, lcss_distance_lower_bound, lcss_distance_lower_bound_with,
};
use rotind_envelope::WedgeTree;
use rotind_obs::{BudgetHook, CascadeTier, NoBudget, NoopObserver, ProfilePhase, SearchObserver};
use rotind_ts::rotate::Rotation;
use rotind_ts::StepCounter;

/// Best rotation found by an H-Merge scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HMergeOutcome {
    /// The minimal distance over all admitted rotations (at most the
    /// threshold passed in — the admitted radius is inclusive).
    pub distance: f64,
    /// The rotation achieving it.
    pub rotation: Rotation,
}

/// Canonical ordering of rotations for tie-breaking: unmirrored shifts
/// first, then mirrored, each by ascending shift. This matches the row
/// order of [`rotind_ts::rotate::RotationMatrix`], so H-Merge and the
/// `Test_All_Rotations` oracle break exact distance ties identically —
/// and, because the ordering does not depend on traversal order, the
/// H-Merge outcome is a pure function of (candidate, tree, measure) for
/// any threshold admitting the true minimum. The parallel scan relies on
/// that to stay bit-identical to the sequential scan while sharing a
/// best-so-far that tightens in nondeterministic order.
#[inline]
fn rotation_key(r: Rotation) -> (bool, usize) {
    (r.mirrored, r.shift)
}

/// Result of bounding one wedge node against the threshold (used by the
/// Table 6 filter; the search scan runs the tier cascade instead).
enum NodeBound {
    /// The bound admits the subtree; the value is exact.
    Admitted(f64),
    /// The subtree is pruned.
    Pruned,
}

/// Lower bound of `measure` from `candidate` to every rotation covered by
/// `node`'s wedge, with pruning diagnostics for the observer.
fn node_lower_bound(
    candidate: &[f64],
    tree: &WedgeTree,
    node: usize,
    r: f64,
    measure: Measure,
    counter: &mut StepCounter,
) -> NodeBound {
    match measure {
        Measure::Euclidean | Measure::Dtw(_) => {
            // For DTW the tree's lb wedges are pre-widened by the band
            // (Proposition 2); for Euclidean they are the plain wedges
            // (Proposition 1).
            match lb_keogh_early_abandon_at(candidate, tree.lb_wedge(node), r, counter) {
                Ok(lb) => NodeBound::Admitted(lb),
                Err(_position) => NodeBound::Pruned,
            }
        }
        Measure::Lcss(p) => {
            let lb = lcss_distance_lower_bound(candidate, tree.wedge(node), p, counter);
            if lb <= r {
                NodeBound::Admitted(lb)
            } else {
                NodeBound::Pruned
            }
        }
    }
}

/// Exact distance at a single-rotation leaf, early-abandoning against `r`.
fn leaf_distance(
    candidate: &[f64],
    tree: &WedgeTree,
    leaf: usize,
    r: f64,
    lb_at_leaf: f64,
    measure: Measure,
    counter: &mut StepCounter,
) -> Option<f64> {
    match measure {
        // A singleton wedge's LB_Keogh IS the Euclidean distance — no
        // second pass needed (Section 4.1: "in the special case where W is
        // created from a single candidate sequence, it degenerates to the
        // Euclidean distance").
        Measure::Euclidean => Some(lb_at_leaf),
        _ => {
            let series = tree.leaf_series(leaf);
            measure.distance_early_abandon(candidate, &series, r, counter)
        }
    }
}

/// Scan the wedge set `cut` (node ids of `tree`) for the best rotation
/// match to `candidate` within `r` (inclusive: a rotation at exactly
/// distance `r` is returned). Returns `None` only when every rotation is
/// provably farther than `r`. Exact-distance ties are broken by the
/// canonical rotation order ([`rotation_key`]), never by traversal order.
pub fn h_merge(
    candidate: &[f64],
    tree: &WedgeTree,
    cut: &[usize],
    r: f64,
    measure: Measure,
    counter: &mut StepCounter,
) -> Option<HMergeOutcome> {
    h_merge_observed(candidate, tree, cut, r, measure, counter, &mut NoopObserver)
}

/// [`h_merge`] reporting every wedge test, prune, early abandon and leaf
/// distance to `observer`.
///
/// Event semantics:
/// - `on_wedge_tested(level, lb, best_so_far, pruned)` fires per wedge
///   bound, with `level` the descent depth below the cut (cut members
///   are level 0). For bounds that early-abandoned, the exact `lb` is
///   unknown; the crossed threshold (`best_so_far`) is reported in its
///   place.
/// - `on_early_abandon(position)` follows a pruned LB_Keogh bound with
///   the number of query positions consumed.
/// - A *Euclidean leaf* is special: its singleton-wedge bound **is** the
///   exact distance (Section 4.1), so an admitted one fires only
///   `on_leaf_distance` — this keeps the observer's picture faithful
///   (no bound was tested, a distance was computed) and lets traces pair
///   each leaf distance with the most recent admitted ancestor bound
///   for LB-tightness accounting.
#[allow(clippy::too_many_arguments)] // mirrors h_merge + the observer
pub fn h_merge_observed<O: SearchObserver>(
    candidate: &[f64],
    tree: &WedgeTree,
    cut: &[usize],
    r: f64,
    measure: Measure,
    counter: &mut StepCounter,
    observer: &mut O,
) -> Option<HMergeOutcome> {
    h_merge_cascade_observed(
        candidate,
        tree,
        &BoundCascade::legacy(),
        cut,
        r,
        measure,
        counter,
        observer,
    )
}

/// Run the bound cascade for one wedge node: the configured tiers in
/// increasing cost order, each dismissing strictly against `best_so_far`
/// before the next runs. Returns the tightest admitted bound, or `None`
/// when some tier pruned the node (prune events already fired). For a
/// Euclidean singleton leaf the returned value *is* the exact distance
/// (natural-order accumulation, no admit events — the legacy special
/// case).
// Admissibility: every tier delegates to a witnessed lb_* kernel in
// rotind-envelope (lb_kim / PaaEnvelope::min_dist via PaaWedgeSet's
// argument / lb_keogh_early_abandon_at / lb_improved_second_pass).
#[allow(clippy::too_many_arguments)] // one hot-path call site, in h_merge_cascade_observed
fn node_tier_bound<O: SearchObserver>(
    candidate: &[f64],
    tree: &WedgeTree,
    cascade: &BoundCascade,
    ctx: &mut CandidateCtx,
    node: usize,
    level: usize,
    best_so_far: f64,
    measure: Measure,
    counter: &mut StepCounter,
    observer: &mut O,
) -> Option<f64> {
    let config = cascade.config();
    let euclid_leaf = tree.is_leaf(node) && matches!(measure, Measure::Euclidean);
    // For DTW the tree's lb wedges are pre-widened by the band
    // (Proposition 2); for Euclidean they are the plain wedges
    // (Proposition 1).
    let lb_wedge = tree.lb_wedge(node);
    // Cost-model gates (see CascadeConfig): tiers only run where the
    // ablation bench shows they pay for themselves.
    let cardinality = lb_wedge.cardinality();

    // Tier 1: O(1) endpoint bound.
    if config.kim && cardinality >= config.kim_min_cardinality {
        observer.on_phase_start(ProfilePhase::Tier(CascadeTier::Kim), counter.steps());
        let lb = lb_kim(candidate, lb_wedge, counter);
        observer.on_phase_end(ProfilePhase::Tier(CascadeTier::Kim), counter.steps());
        let pruned = lb > best_so_far;
        observer.on_cascade_tier(CascadeTier::Kim, pruned);
        if pruned {
            observer.on_wedge_tested(level, lb, best_so_far, true);
            return None;
        }
    }

    // Tier 2: reduced-space PAA envelope bound.
    if let Some(env) = (cardinality >= config.reduced_min_cardinality)
        .then(|| cascade.paa_envelope(node))
        .flatten()
    {
        observer.on_phase_start(ProfilePhase::Tier(CascadeTier::Reduced), counter.steps());
        let paa = ctx.paa(candidate, config.dims, counter);
        let lb = env.min_dist(paa, counter);
        observer.on_phase_end(ProfilePhase::Tier(CascadeTier::Reduced), counter.steps());
        let pruned = lb > best_so_far;
        observer.on_cascade_tier(CascadeTier::Reduced, pruned);
        if pruned {
            observer.on_wedge_tested(level, lb, best_so_far, true);
            return None;
        }
    }

    // Tier 4 runs only under a positive warping band: at band 0 the
    // LB_Improved second pass is identically zero. Its gate is inverted
    // — the second pass buys the most where a prune replaces an exact
    // DTW evaluation, i.e. at (near-)singleton wedges.
    let improved_applies =
        config.improved && tree.band() > 0 && cardinality <= config.improved_max_cardinality;

    // Tier 3: LB_Keogh with early abandoning. It also runs when only
    // tier 4 is configured (LB_Improved's first pass IS LB_Keogh, then
    // attributed to the Improved tier) and always at a Euclidean
    // singleton leaf, whose natural-order sum is the exact distance —
    // never reordered, so the scan stays bit-identical to the legacy
    // engine.
    if !(config.keogh || improved_applies || euclid_leaf) {
        // Only pre-filters are configured and none pruned: descend on
        // the trivial zero bound (exactness never needs tier 3 — leaves
        // still evaluate the exact measure).
        observer.on_wedge_tested(level, 0.0, best_so_far, false);
        return Some(0.0);
    }
    let keogh_tier = if config.keogh || !improved_applies {
        CascadeTier::Keogh
    } else {
        CascadeTier::Improved
    };
    // A Euclidean singleton leaf's accumulation IS the exact distance
    // (Section 4.1), so its phase is `distance`, not a tier — the
    // profile tree attributes that work to where it economically
    // belongs. Pruned (early-abandoned) evaluations count too: the
    // phase measures attempted work, while `on_leaf_distance` keeps
    // counting only completed distances.
    let keogh_phase = if euclid_leaf {
        ProfilePhase::Distance
    } else {
        ProfilePhase::Tier(keogh_tier)
    };
    observer.on_phase_start(keogh_phase, counter.steps());
    let keogh = if config.reorder && !euclid_leaf {
        lb_keogh_reordered_early_abandon_at(candidate, lb_wedge, best_so_far, counter)
    } else {
        lb_keogh_early_abandon_at(candidate, lb_wedge, best_so_far, counter)
    };
    observer.on_phase_end(keogh_phase, counter.steps());
    let lb = match keogh {
        Ok(lb) => lb,
        Err(position) => {
            observer.on_cascade_tier(keogh_tier, true);
            // The exact bound is unknown after an early abandon; the
            // crossed threshold is reported in its place.
            observer.on_wedge_tested(level, best_so_far, best_so_far, true);
            observer.on_early_abandon(position);
            return None;
        }
    };
    if euclid_leaf {
        // Legacy special case: no bound was tested — the value is the
        // exact distance and on_leaf_distance will fire for it.
        return Some(lb);
    }
    if keogh_tier == CascadeTier::Keogh {
        observer.on_cascade_tier(CascadeTier::Keogh, false);
    }

    // Tier 4: LB_Improved second pass, only after tier 3 failed to prune
    // and only when the first pass got close enough to the best-so-far
    // that the second pass has a realistic chance of crossing it. (With
    // an infinite best-so-far the product is infinite — or NaN at ratio
    // zero — and the comparison is false: nothing dismisses against
    // infinity, so skipping is free.)
    let run_improved = improved_applies && lb >= config.improved_min_ratio * best_so_far;
    if run_improved {
        observer.on_phase_start(ProfilePhase::Tier(CascadeTier::Improved), counter.steps());
        let second = lb_improved_second_pass(
            candidate,
            tree.wedge(node),
            lb_wedge,
            tree.band(),
            lb * lb,
            best_so_far,
            &mut ctx.improved,
            counter,
        );
        observer.on_phase_end(ProfilePhase::Tier(CascadeTier::Improved), counter.steps());
        match second {
            Some(lb) => {
                observer.on_cascade_tier(CascadeTier::Improved, false);
                observer.on_wedge_tested(level, lb, best_so_far, false);
                Some(lb)
            }
            None => {
                observer.on_cascade_tier(CascadeTier::Improved, true);
                observer.on_wedge_tested(level, best_so_far, best_so_far, true);
                None
            }
        }
    } else {
        if keogh_tier == CascadeTier::Improved {
            // Improved-only configuration with the tier-4 gate closed:
            // the admitted first pass is still the Improved tier's work.
            observer.on_cascade_tier(CascadeTier::Improved, false);
        }
        observer.on_wedge_tested(level, lb, best_so_far, false);
        Some(lb)
    }
}

/// [`h_merge_observed`] under an arbitrary [`BoundCascade`]: the tiered
/// scan the engine runs. With [`BoundCascade::legacy`] it reproduces the
/// historical single-bound scan step-for-step; with richer
/// configurations extra tiers prune earlier but — every tier being
/// admissible and every dismissal strict — the outcome is bit-identical
/// (see `tests/cascade.rs`). Tier activity is reported through
/// [`SearchObserver::on_cascade_tier`], *in addition to* the legacy
/// per-wedge events: every pruned wedge is attributed to exactly one
/// tier (LCSS keeps its own single envelope bound outside the cascade
/// and fires no tier events).
#[allow(clippy::too_many_arguments)] // mirrors h_merge_observed + the cascade
pub fn h_merge_cascade_observed<O: SearchObserver>(
    candidate: &[f64],
    tree: &WedgeTree,
    cascade: &BoundCascade,
    cut: &[usize],
    r: f64,
    measure: Measure,
    counter: &mut StepCounter,
    observer: &mut O,
) -> Option<HMergeOutcome> {
    h_merge_cascade_budgeted(
        candidate,
        tree,
        cascade,
        cut,
        r,
        measure,
        counter,
        observer,
        &mut NoBudget,
    )
}

/// [`h_merge_cascade_observed`] under a [`BudgetHook`]: the budget is
/// checked at every dismissal boundary (the top of the pop loop, before
/// any bound is evaluated for the popped wedge). When it trips, the walk
/// stops and the running best is returned — a valid *partial* result:
/// every admitted leaf was fully evaluated, so the returned distance is
/// exact for the rotations actually visited, just not necessarily the
/// global minimum. With [`NoBudget`] the check monomorphizes to a
/// constant `true` and this is bit-identical to the un-budgeted scan.
///
/// The whole walk is bracketed in a [`ProfilePhase::WedgeMerge`] phase;
/// tier evaluations and leaf distances report their own nested phases.
#[allow(clippy::too_many_arguments)] // mirrors h_merge_cascade_observed + the budget
pub fn h_merge_cascade_budgeted<O: SearchObserver, B: BudgetHook>(
    candidate: &[f64],
    tree: &WedgeTree,
    cascade: &BoundCascade,
    cut: &[usize],
    r: f64,
    measure: Measure,
    counter: &mut StepCounter,
    observer: &mut O,
    budget: &mut B,
) -> Option<HMergeOutcome> {
    let mut ctx = CandidateCtx::new();
    h_merge_cascade_budgeted_ctx(
        candidate, tree, cascade, cut, r, measure, counter, observer, budget, &mut ctx,
    )
}

/// [`h_merge_cascade_budgeted`] with a caller-owned [`CandidateCtx`]:
/// the batch entry points pass a context taken from a
/// [`crate::cascade::BatchPaaCache`], so a candidate's tier-2 PAA
/// projection built by one query is reused (uncharged) by the next.
/// The projection is query-independent, so the cached walk is
/// result-identical to a fresh one — only the step accounting of
/// later queries shrinks.
#[allow(clippy::too_many_arguments)] // mirrors h_merge_cascade_budgeted + the ctx
                                     // lint: panic-exempt(candidate length is validated against the snapshot at admission; the assert documents the contract)
pub(crate) fn h_merge_cascade_budgeted_ctx<O: SearchObserver, B: BudgetHook>(
    candidate: &[f64],
    tree: &WedgeTree,
    cascade: &BoundCascade,
    cut: &[usize],
    r: f64,
    measure: Measure,
    counter: &mut StepCounter,
    observer: &mut O,
    budget: &mut B,
    ctx: &mut CandidateCtx,
) -> Option<HMergeOutcome> {
    assert_eq!(
        candidate.len(),
        tree.matrix().series_len(),
        "h_merge: candidate length mismatch"
    );
    observer.on_phase_start(ProfilePhase::WedgeMerge, counter.steps());
    let mut best: Option<HMergeOutcome> = None;
    let mut best_so_far = r;
    let mut stack: Vec<(usize, usize)> = cut.iter().map(|&node| (node, 0)).collect();
    while let Some((node, level)) = stack.pop() {
        // Dismissal boundary: a tripped budget abandons the remaining
        // wedges. The hook is sticky, so the caller can read the trip
        // reason afterwards.
        if !budget.check(counter.steps()) {
            break;
        }
        let is_leaf = tree.is_leaf(node);
        let bound = match measure {
            // LCSS has a single similarity-count bound; no tiers apply.
            Measure::Lcss(p) => {
                let lb = lcss_distance_lower_bound_with(
                    candidate,
                    tree.wedge(node),
                    p,
                    &mut ctx.improved,
                    counter,
                );
                if lb <= best_so_far {
                    observer.on_wedge_tested(level, lb, best_so_far, false);
                    Some(lb)
                } else {
                    observer.on_wedge_tested(level, lb, best_so_far, true);
                    None
                }
            }
            Measure::Euclidean | Measure::Dtw(_) => node_tier_bound(
                candidate,
                tree,
                cascade,
                ctx,
                node,
                level,
                best_so_far,
                measure,
                counter,
                observer,
            ),
        };
        let Some(lb) = bound else {
            continue; // the whole wedge is pruned
        };
        if is_leaf {
            // Euclidean leaves fire their `distance` phase inside the
            // cascade (the singleton bound IS the distance); the other
            // measures compute the real thing here.
            let phased = !matches!(measure, Measure::Euclidean);
            if phased {
                observer.on_phase_start(ProfilePhase::Distance, counter.steps());
            }
            let d = leaf_distance(candidate, tree, node, best_so_far, lb, measure, counter);
            if phased {
                observer.on_phase_end(ProfilePhase::Distance, counter.steps());
            }
            if let Some(d) = d {
                observer.on_leaf_distance(d);
                let rotation = tree.leaf_rotation(node);
                // Admission against the caller's radius is inclusive
                // (`d == r` matches — every dismissal in this crate is
                // strict), and among equal distances the canonical lowest
                // rotation key wins, so the outcome is independent of
                // traversal order and of any threshold that admits the
                // true minimum.
                let improved = match &best {
                    None => d <= best_so_far,
                    Some(b) => {
                        d < b.distance
                            || (d == b.distance
                                && rotation_key(rotation) < rotation_key(b.rotation))
                    }
                };
                if improved {
                    // For Euclidean leaves `d` is the singleton-wedge
                    // LB_Keogh, which §4.1 proves degenerates to the
                    // exact distance — the one place a bound-tainted
                    // value may legally tighten the radius.
                    // rotind-lint: allow(prune-only)
                    best_so_far = d;
                    best = Some(HMergeOutcome {
                        distance: d,
                        rotation,
                    });
                }
            }
        } else {
            let (left, right) = tree.children(node).expect("internal node has children");
            stack.push((left, level + 1));
            stack.push((right, level + 1));
        }
    }
    observer.on_phase_end(ProfilePhase::WedgeMerge, counter.steps());
    best
}

/// Table 6 *verbatim*: a boolean query **filter**. Returns the first
/// rotation found within `r` of the candidate (not necessarily the
/// best), or `None` when every rotation is provably farther than `r`.
///
/// This is the streaming use-case the paper highlights (query filtering
/// over streams, "Atomic Wedgie" \[40\]): for monitoring, *any* match
/// within `r` suffices and scanning on after the first hit is wasted
/// work. For nearest-neighbour search use [`h_merge`], which keeps
/// scanning with the running best.
pub fn h_merge_filter(
    candidate: &[f64],
    tree: &WedgeTree,
    cut: &[usize],
    r: f64,
    measure: Measure,
    counter: &mut StepCounter,
) -> Option<HMergeOutcome> {
    assert_eq!(
        candidate.len(),
        tree.matrix().series_len(),
        "h_merge_filter: candidate length mismatch"
    );
    let mut stack: Vec<usize> = cut.to_vec();
    while let Some(node) = stack.pop() {
        let NodeBound::Admitted(lb) = node_lower_bound(candidate, tree, node, r, measure, counter)
        else {
            continue;
        };
        if tree.is_leaf(node) {
            if let Some(d) = leaf_distance(candidate, tree, node, r, lb, measure, counter) {
                if d <= r {
                    return Some(HMergeOutcome {
                        distance: d,
                        rotation: tree.leaf_rotation(node),
                    });
                }
            }
        } else {
            let (left, right) = tree.children(node).expect("internal node has children");
            stack.push(left);
            stack.push(right);
        }
    }
    None
}

/// H-Merge over the whole tree starting from the root (`K = 1`).
pub fn h_merge_from_root(
    candidate: &[f64],
    tree: &WedgeTree,
    r: f64,
    measure: Measure,
    counter: &mut StepCounter,
) -> Option<HMergeOutcome> {
    h_merge_from_root_observed(candidate, tree, r, measure, counter, &mut NoopObserver)
}

/// [`h_merge_from_root`] with observer callbacks (see
/// [`h_merge_observed`] for the event semantics; the root is level 0).
pub fn h_merge_from_root_observed<O: SearchObserver>(
    candidate: &[f64],
    tree: &WedgeTree,
    r: f64,
    measure: Measure,
    counter: &mut StepCounter,
    observer: &mut O,
) -> Option<HMergeOutcome> {
    let root = [tree.root()];
    h_merge_observed(candidate, tree, &root, r, measure, counter, observer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_distance::dtw::DtwParams;
    use rotind_distance::lcss::LcssParams;
    use rotind_distance::rotation::test_all_rotations;
    use rotind_ts::rotate::{rotated, RotationMatrix};

    fn steps() -> StepCounter {
        StepCounter::new()
    }

    fn signal(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.31 + phase).sin() + 0.4 * (i as f64 * 0.83 + phase).cos())
            .collect()
    }

    fn tree_for(query: &[f64], band: usize) -> WedgeTree {
        WedgeTree::new(RotationMatrix::full(query).unwrap(), band)
    }

    #[test]
    fn equals_test_all_rotations_for_every_k_euclidean() {
        let query = signal(24, 0.0);
        let candidate = signal(24, 1.9);
        let tree = tree_for(&query, 0);
        let matrix = RotationMatrix::full(&query).unwrap();
        let oracle = test_all_rotations(
            &candidate,
            &matrix,
            f64::INFINITY,
            Measure::Euclidean,
            &mut steps(),
        )
        .unwrap();
        for k in 1..=24 {
            let cut = tree.cut_nodes(k);
            let got = h_merge(
                &candidate,
                &tree,
                &cut,
                f64::INFINITY,
                Measure::Euclidean,
                &mut steps(),
            )
            .unwrap();
            assert!(
                (got.distance - oracle.distance).abs() < 1e-9,
                "k = {k}: {} vs {}",
                got.distance,
                oracle.distance
            );
        }
    }

    #[test]
    fn equals_oracle_for_dtw_and_lcss() {
        let query = signal(20, 0.0);
        let candidate = signal(20, 2.6);
        let matrix = RotationMatrix::full(&query).unwrap();
        for (measure, band) in [
            (Measure::Dtw(DtwParams::new(3)), 3usize),
            (Measure::Lcss(LcssParams::for_normalized(20)), 0),
        ] {
            let tree = tree_for(&query, band);
            let oracle =
                test_all_rotations(&candidate, &matrix, f64::INFINITY, measure, &mut steps())
                    .unwrap();
            for k in [1usize, 2, 5, 10, 20] {
                let cut = tree.cut_nodes(k);
                let got = h_merge(
                    &candidate,
                    &tree,
                    &cut,
                    f64::INFINITY,
                    measure,
                    &mut steps(),
                )
                .unwrap();
                assert!(
                    (got.distance - oracle.distance).abs() < 1e-9,
                    "{} k = {k}",
                    measure.name()
                );
            }
        }
    }

    #[test]
    fn finds_planted_rotation() {
        let query = signal(32, 0.0);
        let candidate = rotated(&query, 13);
        let tree = tree_for(&query, 0);
        let got = h_merge_from_root(
            &candidate,
            &tree,
            f64::INFINITY,
            Measure::Euclidean,
            &mut steps(),
        )
        .unwrap();
        assert!(got.distance < 1e-9);
        assert_eq!(got.rotation.shift, 13);
    }

    #[test]
    fn threshold_below_exact_returns_none() {
        let query = signal(18, 0.0);
        let candidate = signal(18, 2.2);
        let tree = tree_for(&query, 0);
        let exact = h_merge_from_root(
            &candidate,
            &tree,
            f64::INFINITY,
            Measure::Euclidean,
            &mut steps(),
        )
        .unwrap()
        .distance;
        assert!(h_merge_from_root(
            &candidate,
            &tree,
            exact * 0.99,
            Measure::Euclidean,
            &mut steps()
        )
        .is_none());
    }

    #[test]
    fn candidate_at_exactly_r_is_returned_by_every_scan_path() {
        // Exactly-representable construction: the candidate is the query
        // plus a single +3.0 spike, so the shift-0 Euclidean distance is
        // sqrt(3.0²) = 3.0 with no rounding anywhere (3.0² = 9.0 and
        // sqrt(9.0) = 3.0 are both exact in f64). Setting r to exactly
        // that distance must admit the candidate on every path: the
        // admitted radius is inclusive and every dismissal is strict.
        let n = 16;
        let query: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut candidate = query.clone();
        candidate[5] += 3.0;
        let tree = tree_for(&query, 0);
        let matrix = RotationMatrix::full(&query).unwrap();
        let exact = test_all_rotations(
            &candidate,
            &matrix,
            f64::INFINITY,
            Measure::Euclidean,
            &mut steps(),
        )
        .unwrap();
        assert_eq!(exact.distance, 3.0, "distance must be exactly 3.0");
        assert_eq!(exact.rotation, rotind_ts::rotate::Rotation::shift(0));
        let r = exact.distance;
        // Oracle at r == d.
        let oracle = test_all_rotations(&candidate, &matrix, r, Measure::Euclidean, &mut steps())
            .expect("candidate at exactly r is admitted by the oracle");
        assert_eq!(oracle.distance, 3.0);
        // H-Merge at every cut size, and the Table 6 filter.
        for k in 1..=n {
            let cut = tree.cut_nodes(k);
            let hit = h_merge(&candidate, &tree, &cut, r, Measure::Euclidean, &mut steps())
                .unwrap_or_else(|| panic!("k = {k}: candidate at exactly r must be returned"));
            assert_eq!(hit.distance, 3.0);
            assert_eq!(hit.rotation.shift, 0);
            let filtered =
                h_merge_filter(&candidate, &tree, &cut, r, Measure::Euclidean, &mut steps())
                    .unwrap_or_else(|| panic!("k = {k}: filter must admit d == r"));
            assert!(filtered.distance <= r);
        }
    }

    #[test]
    fn equal_distance_ties_break_on_rotation_key() {
        // A constant query has n bitwise-identical rotations, so every
        // leaf distance ties exactly; the winner must be the canonical
        // lowest rotation key (shift 0, unmirrored) for every cut size —
        // independent of stack traversal order. (A constant *candidate*
        // would not do: summing the same terms in rotated order is not
        // FP-associative, so those ties need not be exact.)
        let n = 8;
        let query = vec![1.0f64; n];
        let candidate = signal(n, 0.4);
        let tree = tree_for(&query, 0);
        for k in 1..=n {
            let cut = tree.cut_nodes(k);
            let hit = h_merge(
                &candidate,
                &tree,
                &cut,
                f64::INFINITY,
                Measure::Euclidean,
                &mut steps(),
            )
            .unwrap();
            assert_eq!(
                hit.rotation,
                rotind_ts::rotate::Rotation::shift(0),
                "k = {k}: ties must go to the canonical first rotation"
            );
        }
    }

    #[test]
    fn wedge_pruning_saves_steps_vs_early_abandon_scan() {
        // A dissimilar candidate with a tight threshold: one fat wedge
        // abandons in a few steps, while per-rotation early abandon pays
        // at least one step per rotation.
        let n = 64;
        let query = signal(n, 0.0);
        let candidate: Vec<f64> = vec![50.0; n];
        let tree = tree_for(&query, 0);
        let mut wedge_steps = steps();
        let cut = tree.cut_nodes(1);
        assert!(h_merge(
            &candidate,
            &tree,
            &cut,
            0.5,
            Measure::Euclidean,
            &mut wedge_steps
        )
        .is_none());
        let matrix = RotationMatrix::full(&query).unwrap();
        let mut scan_steps = steps();
        assert!(test_all_rotations(
            &candidate,
            &matrix,
            0.5,
            Measure::Euclidean,
            &mut scan_steps
        )
        .is_none());
        assert!(
            wedge_steps.steps() * 10 < scan_steps.steps(),
            "wedge {} vs scan {}",
            wedge_steps.steps(),
            scan_steps.steps()
        );
    }

    #[test]
    fn mirror_and_limited_invariance() {
        let query = signal(22, 0.0);
        // Mirror: the candidate is a rotated mirror image.
        let candidate = rotated(&rotind_ts::rotate::mirror(&query), 5);
        let tree = WedgeTree::new(RotationMatrix::with_mirror(&query).unwrap(), 0);
        let got = h_merge_from_root(
            &candidate,
            &tree,
            f64::INFINITY,
            Measure::Euclidean,
            &mut steps(),
        )
        .unwrap();
        assert!(got.distance < 1e-9);
        assert!(got.rotation.mirrored);

        // Limited: a far rotation must not be matched exactly.
        let far = rotated(&query, 11);
        let tree = WedgeTree::new(RotationMatrix::limited(&query, 2).unwrap(), 0);
        let got = h_merge_from_root(&far, &tree, f64::INFINITY, Measure::Euclidean, &mut steps())
            .unwrap();
        assert!(got.distance > 0.1);
    }

    #[test]
    fn filter_agrees_with_search_on_matchability() {
        let query = signal(24, 0.0);
        let tree = tree_for(&query, 0);
        let cut = tree.cut_nodes(4);
        for phase in [0.3, 0.9, 1.7, 2.8] {
            let candidate = signal(24, phase);
            let exact = h_merge(
                &candidate,
                &tree,
                &cut,
                f64::INFINITY,
                Measure::Euclidean,
                &mut steps(),
            )
            .unwrap()
            .distance;
            // r == exact exactly is FP-fragile (squaring the sqrt can
            // round below the accumulated sum); pad by one ulp-ish.
            for r in [exact * 0.5, exact + 1e-9, exact * 2.0] {
                let hit =
                    h_merge_filter(&candidate, &tree, &cut, r, Measure::Euclidean, &mut steps());
                if exact <= r {
                    let hit = hit.expect("a rotation within r exists");
                    assert!(hit.distance <= r, "returned match must be within r");
                } else {
                    assert!(hit.is_none(), "no rotation within r exists");
                }
            }
        }
    }

    #[test]
    fn filter_stops_early_and_saves_steps() {
        // A self-match is found long before all rotations are examined.
        let query = signal(64, 0.0);
        let tree = tree_for(&query, 0);
        let cut = tree.cut_nodes(8);
        let candidate = rotated(&query, 20);
        let mut filter_steps = steps();
        let hit = h_merge_filter(
            &candidate,
            &tree,
            &cut,
            1e-6,
            Measure::Euclidean,
            &mut filter_steps,
        )
        .unwrap();
        assert_eq!(hit.rotation.shift, 20);
        let mut search_steps = steps();
        h_merge(
            &candidate,
            &tree,
            &cut,
            f64::INFINITY,
            Measure::Euclidean,
            &mut search_steps,
        )
        .unwrap();
        assert!(
            filter_steps.steps() < search_steps.steps(),
            "filter {} !< search {}",
            filter_steps.steps(),
            search_steps.steps()
        );
    }

    #[test]
    fn observed_scan_is_neutral_and_fires_events() {
        use rotind_obs::QueryTrace;
        let n = 48;
        let query = signal(n, 0.0);
        let tree = tree_for(&query, 0);
        let cut = tree.cut_nodes(4);
        for phase in [0.7, 1.9, 3.1] {
            let candidate = signal(n, phase);
            let mut plain_steps = steps();
            let plain = h_merge(
                &candidate,
                &tree,
                &cut,
                f64::INFINITY,
                Measure::Euclidean,
                &mut plain_steps,
            );
            let mut trace = QueryTrace::new(n);
            let mut observed_steps = steps();
            let observed = h_merge_observed(
                &candidate,
                &tree,
                &cut,
                f64::INFINITY,
                Measure::Euclidean,
                &mut observed_steps,
                &mut trace,
            );
            assert_eq!(plain, observed, "observer must not change the answer");
            assert_eq!(
                plain_steps.steps(),
                observed_steps.steps(),
                "observer must not change the step count"
            );
            // The running best-so-far prunes most rotations even with an
            // infinite initial threshold; at least the first admitted
            // leaf must have fired a distance event, and every cut node
            // is tested at level 0 (admitted or pruned).
            assert!(trace.leaf_distances() >= 1);
            assert!(trace.tested(0) + trace.leaf_distances() >= cut.len() as u64);
            assert!(trace.wedges_tested() > 0);
        }
    }

    #[test]
    fn observed_scan_reports_abandon_positions() {
        use rotind_obs::QueryTrace;
        let n = 64;
        let query = signal(n, 0.0);
        let candidate: Vec<f64> = vec![50.0; n];
        let tree = tree_for(&query, 0);
        let cut = tree.cut_nodes(1);
        let mut trace = QueryTrace::new(n);
        let mut counter = steps();
        assert!(h_merge_observed(
            &candidate,
            &tree,
            &cut,
            0.5,
            Measure::Euclidean,
            &mut counter,
            &mut trace,
        )
        .is_none());
        assert_eq!(trace.pruned(0), 1, "the single fat wedge prunes");
        assert_eq!(trace.early_abandons(), 1);
        assert!(trace.abandon_depth().mean().unwrap() <= 1.0);
        assert_eq!(trace.leaf_distances(), 0);
    }

    #[test]
    fn k_equal_n_behaves_like_early_abandon_rotation_scan() {
        // At K = n every wedge is a singleton: the result must match and
        // the work is comparable to Table 2 with best-so-far threading.
        let query = signal(16, 0.0);
        let candidate = signal(16, 0.9);
        let tree = tree_for(&query, 0);
        let cut = tree.cut_nodes(16);
        assert_eq!(cut.len(), 16);
        let got = h_merge(
            &candidate,
            &tree,
            &cut,
            f64::INFINITY,
            Measure::Euclidean,
            &mut steps(),
        )
        .unwrap();
        let matrix = RotationMatrix::full(&query).unwrap();
        let oracle = test_all_rotations(
            &candidate,
            &matrix,
            f64::INFINITY,
            Measure::Euclidean,
            &mut steps(),
        )
        .unwrap();
        assert!((got.distance - oracle.distance).abs() < 1e-9);
    }
}
