//! Disk-based indexing and the fraction-retrieved metric (Section 4.2,
//! Figure 24).
//!
//! The wedge machinery makes rotation-invariant CPU cost negligible, so
//! *"we should therefore also attempt to minimize disk accesses"*. The
//! model: only `D` reduced coefficients per item live in the index (in
//! memory); the full series lives "on disk" and retrieving it is the
//! expensive event being counted. A VP-tree over the reduced vectors is
//! searched with an admissible lower bound; whenever the bound cannot
//! prune an item, the item is retrieved and its exact rotation-invariant
//! distance computed with H-Merge — exactly `NNSearch` of Table 7.
//!
//! Two index flavours match the two Figure 24 series: Fourier magnitudes
//! for Euclidean queries, PAA wedge envelopes for DTW queries.

use crate::engine::{Invariance, Neighbor, RotationQuery};
use crate::error::SearchError;
use crate::hmerge::h_merge;
use crate::reduced::{Paa, PaaWedgeSet};
use crate::vptree::{BoundKind, VpTree};
use rotind_distance::measure::Measure;
use rotind_envelope::Wedge;
use rotind_fft::lower_bound::magnitude_distance;
use rotind_fft::magnitude_features;
use rotind_ts::{StepCounter, TsError};

/// Disk-access accounting for one query.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskStats {
    /// Items whose full series was fetched from "disk".
    pub retrieved: usize,
    /// Database size.
    pub total: usize,
}

impl DiskStats {
    /// Fraction of the database retrieved — the y-axis of Figure 24.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.retrieved as f64 / self.total as f64
        }
    }
}

/// Which reduced representation an [`IndexedDatabase`] stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReducedRepr {
    /// First `D` Fourier magnitude coefficients — admissible for
    /// rotation-invariant **Euclidean** queries.
    FourierMagnitude,
    /// `D`-segment PAA vectors — admissible for rotation-invariant
    /// **DTW** (and Euclidean) queries via wedge-envelope projection.
    Paa,
}

/// A database with a VP-tree index over `D` reduced coefficients per
/// item; full series are only touched through the counted retrieval path.
///
/// ```
/// use rotind_index::disk::{IndexedDatabase, ReducedRepr};
/// use rotind_distance::Measure;
/// use rotind_ts::rotate::rotated;
/// let db: Vec<Vec<f64>> = (0..24)
///     .map(|k| (0..64).map(|i| ((i * (k + 1)) as f64 * 0.07).sin()).collect())
///     .collect();
/// let query = rotated(&db[9], 30);
/// let index = IndexedDatabase::build(db, 8, ReducedRepr::FourierMagnitude).unwrap();
/// let (hit, stats) = index.nearest(&query, Measure::Euclidean).unwrap();
/// assert_eq!(hit.index, 9);
/// assert!(stats.fraction() <= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct IndexedDatabase {
    items: Vec<Vec<f64>>,
    n: usize,
    d: usize,
    repr: ReducedRepr,
    tree: VpTree,
}

/// Wedge-set size used for the query-side PAA envelopes; Figure 24 does
/// not sweep this, and tightness saturates quickly.
const INDEX_WEDGE_SET_SIZE: usize = 16;

impl IndexedDatabase {
    /// Build an index holding `d` coefficients of `repr` per item.
    ///
    /// # Errors
    ///
    /// [`SearchError::EmptyDatabase`] / [`SearchError::LengthMismatch`]
    /// on malformed input; `d` is clamped to `n`.
    pub fn build(items: Vec<Vec<f64>>, d: usize, repr: ReducedRepr) -> Result<Self, SearchError> {
        let Some(first) = items.first() else {
            return Err(SearchError::EmptyDatabase);
        };
        let n = first.len();
        if n == 0 {
            return Err(SearchError::invalid_param(
                "items",
                "series must be non-empty",
            ));
        }
        for (index, item) in items.iter().enumerate() {
            if item.len() != n {
                return Err(SearchError::LengthMismatch {
                    index,
                    expected: n,
                    actual: item.len(),
                });
            }
        }
        if d == 0 {
            return Err(SearchError::invalid_param("d", "must be >= 1"));
        }
        let d = d.min(n);
        let reduced: Vec<Vec<f64>> = match repr {
            ReducedRepr::FourierMagnitude => {
                items.iter().map(|s| magnitude_features(s, d)).collect()
            }
            ReducedRepr::Paa => items
                .iter()
                .map(|s| Paa::of(s, d).values().to_vec())
                .collect(),
        };
        let tree = VpTree::build(reduced);
        Ok(IndexedDatabase {
            items,
            n,
            d,
            repr,
            tree,
        })
    }

    /// Database size.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no items are indexed (construction forbids this).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Series length `n`.
    pub fn series_len(&self) -> usize {
        self.n
    }

    /// Reduced dimensionality `D`.
    pub fn dims(&self) -> usize {
        self.d
    }

    /// The reduced representation stored.
    pub fn repr(&self) -> ReducedRepr {
        self.repr
    }

    /// Exact rotation-invariant 1-NN through the index, counting disk
    /// retrievals. The measure must be admissible for the stored
    /// representation: Euclidean for [`ReducedRepr::FourierMagnitude`],
    /// Euclidean or DTW for [`ReducedRepr::Paa`].
    pub fn nearest(
        &self,
        query: &[f64],
        measure: Measure,
    ) -> Result<(Neighbor, DiskStats), SearchError> {
        if query.len() != self.n {
            return Err(SearchError::LengthMismatch {
                index: usize::MAX,
                expected: self.n,
                actual: query.len(),
            });
        }
        if matches!(measure, Measure::Lcss(_)) {
            return Err(SearchError::invalid_param(
                "measure",
                "the disk index supports Euclidean and DTW queries",
            ));
        }
        if matches!(self.repr, ReducedRepr::FourierMagnitude)
            && !matches!(measure, Measure::Euclidean)
        {
            return Err(SearchError::invalid_param(
                "measure",
                "Fourier magnitudes only lower-bound Euclidean; build a Paa index for DTW",
            ));
        }

        // Query-side machinery: the H-Merge engine for exact refinement...
        let engine = RotationQuery::with_measure(query, Invariance::Rotation, measure)
            .map_err(|e: TsError| SearchError::invalid_param("query", e.to_string()))?;
        let tree = engine.tree();
        let cut = tree.cut_nodes(INDEX_WEDGE_SET_SIZE.min(tree.max_k()));
        let mut counter = StepCounter::new();
        let mut retrieved = 0usize;

        // Table 7: the retrieved item's exact distance is computed by
        // H-Merge *under the running best-so-far*, so hopeless rotations
        // abandon early; items that cannot beat the threshold report +∞.
        let mut refine = |i: usize, bsf: f64| -> f64 {
            retrieved += 1;
            h_merge(&self.items[i], tree, &cut, bsf, measure, &mut counter)
                .map_or(f64::INFINITY, |o| o.distance)
        };

        let (best, _stats) = match self.repr {
            ReducedRepr::FourierMagnitude => {
                let qm = magnitude_features(query, self.d);
                let mut scratch = StepCounter::new();
                self.tree.search(
                    BoundKind::MetricToPoint,
                    |x| magnitude_distance(&qm, x, &mut scratch),
                    &mut refine,
                    f64::INFINITY,
                )
            }
            ReducedRepr::Paa => {
                let wedges: Vec<&Wedge> = cut.iter().map(|&node| tree.lb_wedge(node)).collect();
                let set = PaaWedgeSet::new(&wedges, self.d);
                let seg = self.n / self.d.min(self.n);
                let mut scratch = StepCounter::new();
                self.tree.search(
                    BoundKind::Lipschitz,
                    |x| set.lower_bound(&Paa::from_scaled(x.to_vec(), seg), &mut scratch),
                    &mut refine,
                    f64::INFINITY,
                )
            }
        };

        let (index, _) = best.expect("non-empty database with infinite threshold");
        // Recompute the winning neighbour's rotation (cheap: one item).
        let outcome = h_merge(
            &self.items[index],
            tree,
            &cut,
            f64::INFINITY,
            measure,
            &mut counter,
        )
        .expect("infinite threshold always matches");
        Ok((
            Neighbor {
                index,
                distance: outcome.distance,
                rotation: outcome.rotation,
            },
            DiskStats {
                retrieved,
                total: self.items.len(),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_distance::dtw::DtwParams;
    use rotind_distance::rotation::search_database;
    use rotind_ts::rotate::{rotated, RotationMatrix};

    fn signal(n: usize, phase: f64, w: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * w + phase).sin() + 0.4 * (i as f64 * 0.11).cos())
            .collect()
    }

    fn diverse_db(m: usize, n: usize) -> Vec<Vec<f64>> {
        (0..m)
            .map(|k| signal(n, k as f64 * 0.9, 0.07 + 0.011 * (k % 17) as f64))
            .collect()
    }

    #[test]
    fn fourier_index_exact_vs_brute_force() {
        let n = 64;
        let mut db = diverse_db(60, n);
        let query = signal(n, 0.123, 0.20);
        db[41] = rotated(&query, 30);
        for d in [4usize, 8, 16, 32] {
            let index =
                IndexedDatabase::build(db.clone(), d, ReducedRepr::FourierMagnitude).unwrap();
            let (hit, stats) = index.nearest(&query, Measure::Euclidean).unwrap();
            let matrix = RotationMatrix::full(&query).unwrap();
            let oracle =
                search_database(&matrix, &db, Measure::Euclidean, &mut StepCounter::new()).unwrap();
            assert_eq!(hit.index, oracle.index, "d = {d}");
            assert!((hit.distance - oracle.distance).abs() < 1e-9);
            assert!(stats.retrieved >= 1 && stats.retrieved <= stats.total);
        }
    }

    #[test]
    fn paa_index_exact_for_dtw() {
        let n = 48;
        let measure = Measure::Dtw(DtwParams::new(2));
        let mut db = diverse_db(40, n);
        let query = signal(n, 0.321, 0.23);
        db[17] = rotated(&query, 11);
        for d in [4usize, 8, 16] {
            let index = IndexedDatabase::build(db.clone(), d, ReducedRepr::Paa).unwrap();
            let (hit, stats) = index.nearest(&query, measure).unwrap();
            let matrix = RotationMatrix::full(&query).unwrap();
            let oracle = search_database(&matrix, &db, measure, &mut StepCounter::new()).unwrap();
            assert_eq!(hit.index, oracle.index, "d = {d}");
            assert!((hit.distance - oracle.distance).abs() < 1e-9);
            assert!(stats.fraction() <= 1.0);
        }
    }

    #[test]
    fn higher_dimensionality_retrieves_no_more() {
        // More coefficients → tighter bounds → (weakly) fewer disk reads.
        let n = 64;
        let db = diverse_db(120, n);
        let query = signal(n, 2.0, 0.16);
        let frac = |d: usize| {
            let index =
                IndexedDatabase::build(db.clone(), d, ReducedRepr::FourierMagnitude).unwrap();
            index
                .nearest(&query, Measure::Euclidean)
                .unwrap()
                .1
                .fraction()
        };
        // Not strictly monotone point-by-point (tree layout changes with
        // d), but the trend across the sweep must not invert grossly.
        let f4 = frac(4);
        let f32 = frac(32);
        assert!(
            f32 <= f4 + 0.1,
            "d=32 fraction {f32} grossly above d=4 fraction {f4}"
        );
    }

    #[test]
    fn index_beats_full_retrieval() {
        let n = 64;
        let db = diverse_db(200, n);
        let query = signal(n, 2.2, 0.18);
        let index = IndexedDatabase::build(db.clone(), 16, ReducedRepr::FourierMagnitude).unwrap();
        let (_, stats) = index.nearest(&query, Measure::Euclidean).unwrap();
        assert!(
            stats.fraction() < 0.8,
            "index should prune: fraction = {}",
            stats.fraction()
        );
    }

    #[test]
    fn error_paths() {
        assert_eq!(
            IndexedDatabase::build(Vec::new(), 4, ReducedRepr::Paa).unwrap_err(),
            SearchError::EmptyDatabase
        );
        let db = vec![vec![1.0; 8], vec![1.0; 7]];
        assert!(matches!(
            IndexedDatabase::build(db, 4, ReducedRepr::Paa),
            Err(SearchError::LengthMismatch { index: 1, .. })
        ));
        let db = diverse_db(5, 16);
        let index = IndexedDatabase::build(db, 4, ReducedRepr::FourierMagnitude).unwrap();
        assert!(index.nearest(&[0.0; 9], Measure::Euclidean).is_err());
        assert!(index
            .nearest(&[0.0; 16], Measure::Dtw(DtwParams::new(2)))
            .is_err());
        let db = diverse_db(5, 16);
        let paa_index = IndexedDatabase::build(db, 4, ReducedRepr::Paa).unwrap();
        assert!(paa_index
            .nearest(
                &[0.0; 16],
                Measure::Lcss(rotind_distance::lcss::LcssParams::new(0.5, 2))
            )
            .is_err());
    }

    #[test]
    fn disk_stats_fraction() {
        let s = DiskStats {
            retrieved: 5,
            total: 20,
        };
        assert_eq!(s.fraction(), 0.25);
        assert_eq!(DiskStats::default().fraction(), 0.0);
    }
}
