//! A vantage-point tree over the reduced representation (Table 7).
//!
//! The tree is built on the plain Euclidean metric of the reduced space
//! (Fourier magnitudes or scaled PAA vectors). Search prunes with any
//! **1-Lipschitz** lower-bound function `g` over that space: since
//! `|g(x) − g(vp)| ≤ d(x, vp)`, a subtree whose members lie within
//! distance `hi` of the vantage point satisfies
//! `min_subtree g ≥ g(vp) − hi`, so the subtree can be skipped whenever
//! `g(vp) − hi ≥ best-so-far`.
//!
//! * Euclidean queries use `g(x) = ‖x − q_mags‖` — the magnitude lower
//!   bound, which is literally the metric distance to a point, enabling
//!   the additional two-sided prune `lo − g(vp) ≥ bsf`.
//! * DTW queries use `g(x) = min_k rectdist(x, PAA-envelope_k)` — a
//!   minimum of point-to-rectangle distances, each 1-Lipschitz, hence
//!   1-Lipschitz (one-sided pruning only).

/// Shape of the lower-bound function passed to [`VpTree::search`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// `g` is the metric distance to a fixed query point: both
    /// `g(vp) − hi` and `lo − g(vp)` prune.
    MetricToPoint,
    /// `g` is merely 1-Lipschitz: only `g(vp) − hi` prunes.
    Lipschitz,
}

#[derive(Debug, Clone)]
struct Node {
    /// Index (into the point set) of the vantage point.
    vp: usize,
    /// Distance range `[lo, hi]` of the inside subtree from `vp`.
    inside_range: (f64, f64),
    /// Distance range of the outside subtree from `vp`.
    outside_range: (f64, f64),
    inside: Option<Box<Node>>,
    outside: Option<Box<Node>>,
}

/// Search-cost accounting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VpSearchStats {
    /// Lower-bound (`g`) evaluations performed.
    pub bound_evals: usize,
    /// Items whose bound failed to prune (handed to `refine`).
    pub refined: usize,
}

/// A static vantage-point tree over reduced vectors.
#[derive(Debug, Clone)]
pub struct VpTree {
    points: Vec<Vec<f64>>,
    root: Option<Box<Node>>,
}

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

impl VpTree {
    /// Build over `points` (all the same dimensionality).
    ///
    /// Vantage points are chosen deterministically (first element of each
    /// subset) and the remainder is split at the median distance.
    ///
    /// # Panics
    ///
    /// Panics when point dimensionalities differ.
    pub fn build(points: Vec<Vec<f64>>) -> Self {
        if let Some(first) = points.first() {
            let dim = first.len();
            assert!(
                points.iter().all(|p| p.len() == dim),
                "VpTree::build: dimensionality mismatch"
            );
        }
        let indices: Vec<usize> = (0..points.len()).collect();
        let root = Self::build_node(&points, indices);
        VpTree { points, root }
    }

    fn build_node(points: &[Vec<f64>], mut indices: Vec<usize>) -> Option<Box<Node>> {
        let vp = indices.pop()?;
        if indices.is_empty() {
            return Some(Box::new(Node {
                vp,
                inside_range: (f64::INFINITY, f64::NEG_INFINITY),
                outside_range: (f64::INFINITY, f64::NEG_INFINITY),
                inside: None,
                outside: None,
            }));
        }
        let mut with_dist: Vec<(usize, f64)> = indices
            .into_iter()
            .map(|i| (i, euclid(&points[i], &points[vp])))
            .collect();
        with_dist.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mid = with_dist.len() / 2;
        let (inside_part, outside_part) = with_dist.split_at(mid.max(1).min(with_dist.len()));
        let range = |part: &[(usize, f64)]| -> (f64, f64) {
            part.iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, d)| {
                    (lo.min(d), hi.max(d))
                })
        };
        let inside_range = range(inside_part);
        let outside_range = range(outside_part);
        let inside_idx: Vec<usize> = inside_part.iter().map(|&(i, _)| i).collect();
        let outside_idx: Vec<usize> = outside_part.iter().map(|&(i, _)| i).collect();
        Some(Box::new(Node {
            vp,
            inside_range,
            outside_range,
            inside: Self::build_node(points, inside_idx),
            outside: Self::build_node(points, outside_idx),
        }))
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The stored reduced vector for item `i`.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.points[i]
    }

    /// Exact best-first search.
    ///
    /// `bound(x)` evaluates the admissible lower bound at a stored
    /// vector; `refine(i, bsf)` computes the item's *true* distance (and
    /// models the disk retrieval), receiving the current best-so-far so
    /// its own computation can early abandon — exactly Table 7, where
    /// `H-Merge(Q, W, BSF.distance)` is invoked with the running
    /// threshold. `refine` may return any value `> bsf` (e.g. infinity)
    /// when the item provably cannot beat it. The search maintains the
    /// best-so-far over true distances, calls `refine` only when
    /// `bound < bsf`, and prunes subtrees with the Lipschitz/metric
    /// rules. Returns the best `(index, distance)` and the stats.
    pub fn search(
        &self,
        kind: BoundKind,
        mut bound: impl FnMut(&[f64]) -> f64,
        mut refine: impl FnMut(usize, f64) -> f64,
        initial_bsf: f64,
    ) -> (Option<(usize, f64)>, VpSearchStats) {
        let mut stats = VpSearchStats::default();
        let mut best: Option<(usize, f64)> = None;
        let mut bsf = initial_bsf;
        if let Some(root) = &self.root {
            self.search_node(
                root,
                kind,
                &mut bound,
                &mut refine,
                &mut bsf,
                &mut best,
                &mut stats,
            );
        }
        (best, stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn search_node(
        &self,
        node: &Node,
        kind: BoundKind,
        bound: &mut impl FnMut(&[f64]) -> f64,
        refine: &mut impl FnMut(usize, f64) -> f64,
        bsf: &mut f64,
        best: &mut Option<(usize, f64)>,
        stats: &mut VpSearchStats,
    ) {
        let g = bound(&self.points[node.vp]);
        stats.bound_evals += 1;
        if g < *bsf {
            stats.refined += 1;
            let d = refine(node.vp, *bsf);
            if d < *bsf {
                *bsf = d;
                *best = Some((node.vp, d));
            }
        }
        // Visit the side whose optimistic bound is smaller first, so the
        // best-so-far shrinks before the other side is considered.
        let min_possible = |range: (f64, f64)| -> f64 {
            let (lo, hi) = range;
            if hi < lo {
                return f64::INFINITY; // empty side
            }
            let mut m: f64 = g - hi;
            if kind == BoundKind::MetricToPoint {
                m = m.max(lo - g);
            }
            m.max(0.0)
        };
        let sides: [(&Option<Box<Node>>, f64); 2] = [
            (&node.inside, min_possible(node.inside_range)),
            (&node.outside, min_possible(node.outside_range)),
        ];
        let order = if sides[0].1 <= sides[1].1 {
            [0, 1]
        } else {
            [1, 0]
        };
        for &i in &order {
            let (child, min_poss) = &sides[i];
            if let Some(child) = child {
                if *min_poss < *bsf {
                    self.search_node(child, kind, bound, refine, bsf, best, stats);
                }
            }
        }
    }

    /// Linear-scan reference search (same bound/refine contract), for
    /// correctness tests and the fraction-retrieved denominator.
    pub fn linear_scan(
        &self,
        mut bound: impl FnMut(&[f64]) -> f64,
        mut refine: impl FnMut(usize, f64) -> f64,
        initial_bsf: f64,
    ) -> (Option<(usize, f64)>, VpSearchStats) {
        let mut stats = VpSearchStats::default();
        let mut best = None;
        let mut bsf = initial_bsf;
        for i in 0..self.points.len() {
            let g = bound(&self.points[i]);
            stats.bound_evals += 1;
            if g < bsf {
                stats.refined += 1;
                let d = refine(i, bsf);
                if d < bsf {
                    bsf = d;
                    best = Some((i, d));
                }
            }
        }
        (best, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for x in 0..6 {
            for y in 0..6 {
                pts.push(vec![x as f64, y as f64]);
            }
        }
        pts
    }

    #[test]
    fn build_shapes() {
        let t = VpTree::build(grid_points());
        assert_eq!(t.len(), 36);
        assert!(!t.is_empty());
        let empty = VpTree::build(Vec::new());
        assert!(empty.is_empty());
        let single = VpTree::build(vec![vec![1.0]]);
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn metric_search_finds_nearest_point() {
        let pts = grid_points();
        let t = VpTree::build(pts.clone());
        for query in [
            vec![2.2, 3.1],
            vec![0.0, 0.0],
            vec![5.4, 5.4],
            vec![-3.0, 2.0],
        ] {
            let (best, _) = t.search(
                BoundKind::MetricToPoint,
                |x| euclid(x, &query),
                |i, _bsf| euclid(&pts[i], &query),
                f64::INFINITY,
            );
            let (bi, bd) = best.unwrap();
            // Brute-force oracle.
            let (oi, od) = pts
                .iter()
                .enumerate()
                .map(|(i, p)| (i, euclid(p, &query)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            assert!((bd - od).abs() < 1e-12, "query {query:?}");
            assert_eq!(euclid(&pts[bi], &query), euclid(&pts[oi], &query));
        }
    }

    #[test]
    fn search_prunes_versus_linear_scan() {
        // Clustered points: tree search should refine far fewer items.
        let mut pts = Vec::new();
        for k in 0..10 {
            for j in 0..30 {
                pts.push(vec![
                    k as f64 * 100.0 + (j % 5) as f64 * 0.01,
                    (j / 5) as f64 * 0.01,
                ]);
            }
        }
        let t = VpTree::build(pts.clone());
        let query = vec![305.0, 0.0];
        let (best_t, stats_t) = t.search(
            BoundKind::MetricToPoint,
            |x| euclid(x, &query),
            |i, _bsf| euclid(&pts[i], &query),
            f64::INFINITY,
        );
        let (best_l, stats_l) = t.linear_scan(
            |x| euclid(x, &query),
            |i, _bsf| euclid(&pts[i], &query),
            f64::INFINITY,
        );
        assert!((best_t.unwrap().1 - best_l.unwrap().1).abs() < 1e-12);
        assert!(
            stats_t.bound_evals < stats_l.bound_evals,
            "tree {} !< linear {}",
            stats_t.bound_evals,
            stats_l.bound_evals
        );
    }

    #[test]
    fn lipschitz_bound_search_is_exact() {
        // g = distance to the nearest of two rectangles (1-Lipschitz, not
        // a point distance); refine = true distance to a hidden target
        // that g genuinely lower-bounds (here: rect distance + offset
        // structure kept admissible by construction).
        let pts = grid_points();
        let t = VpTree::build(pts.clone());
        let rect_dist = |p: &[f64]| -> f64 {
            // Rectangle [4,5]×[4,5].
            let dx = (4.0 - p[0]).max(p[0] - 5.0).max(0.0);
            let dy = (4.0 - p[1]).max(p[1] - 5.0).max(0.0);
            (dx * dx + dy * dy).sqrt()
        };
        // True distance: distance to the rectangle's corner (admissible:
        // rect_dist(p) <= |p − corner|).
        let corner = [4.0, 4.0];
        let truth = |i: usize, _bsf: f64| euclid(&pts[i], &corner);
        let (best, _) = t.search(BoundKind::Lipschitz, rect_dist, truth, f64::INFINITY);
        let (bi, bd) = best.unwrap();
        let od = pts
            .iter()
            .map(|p| euclid(p, &corner))
            .fold(f64::INFINITY, f64::min);
        assert!((bd - od).abs() < 1e-12);
        assert_eq!(pts[bi], vec![4.0, 4.0]);
    }

    #[test]
    fn initial_bsf_limits_refinement() {
        let pts = grid_points();
        let t = VpTree::build(pts.clone());
        let query = vec![100.0, 100.0]; // far from everything
        let (best, stats) = t.search(
            BoundKind::MetricToPoint,
            |x| euclid(x, &query),
            |i, _bsf| euclid(&pts[i], &query),
            1.0, // nothing is within 1.0
        );
        assert!(best.is_none());
        assert_eq!(stats.refined, 0);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn mixed_dims_panic() {
        VpTree::build(vec![vec![1.0], vec![1.0, 2.0]]);
    }
}
