//! Shape motif discovery: the closest pair under rotation invariance.
//!
//! The paper's conclusion: *"we have begun to use our algorithm as a
//! subroutine in several data mining algorithms which attempt to
//! cluster, classify and discover motifs in a variety of anthropological
//! datasets"*. The motif primitive is the closest pair of shapes in a
//! collection — the most-repeated design in a projectile-point or
//! petroglyph database. A naive scan is `O(m²)` rotation-invariant
//! comparisons; threading one *global* best-so-far through H-Merge makes
//! the overwhelming majority of those comparisons abandon after a few
//! steps.

use crate::error::SearchError;
use crate::hmerge::h_merge;
use rotind_distance::measure::Measure;
use rotind_envelope::WedgeTree;
use rotind_ts::rotate::{Rotation, RotationMatrix};
use rotind_ts::StepCounter;

/// A motif: two items and their rotation-invariant distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotifPair {
    /// First item index (the one whose rotations were enveloped).
    pub a: usize,
    /// Second item index.
    pub b: usize,
    /// Rotation-invariant distance between them.
    pub distance: f64,
    /// The rotation of `a` that realises the distance against `b`.
    pub rotation: Rotation,
}

/// The closest pair in `items` under rotation-invariant `measure`
/// (LCSS included — its distance form is scanned without abandoning).
///
/// Exact: equals the brute-force double loop, verified by the unit
/// tests. Steps are charged to `counter`.
///
/// # Errors
///
/// [`SearchError::EmptyDatabase`] with fewer than two items;
/// [`SearchError::LengthMismatch`] on ragged input.
pub fn closest_pair(
    items: &[Vec<f64>],
    measure: Measure,
    counter: &mut StepCounter,
) -> Result<MotifPair, SearchError> {
    let pairs = top_motifs(items, 1, measure, counter)?;
    Ok(pairs.into_iter().next().expect("k = 1 yields one pair"))
}

/// The `k` closest pairs, each involving distinct index pairs (items may
/// repeat across pairs), sorted ascending by distance.
///
/// # Errors
///
/// As [`closest_pair`]; additionally `k = 0` is invalid.
pub fn top_motifs(
    items: &[Vec<f64>],
    k: usize,
    measure: Measure,
    counter: &mut StepCounter,
) -> Result<Vec<MotifPair>, SearchError> {
    if k == 0 {
        return Err(SearchError::invalid_param("k", "must be >= 1"));
    }
    if items.len() < 2 {
        return Err(SearchError::EmptyDatabase);
    }
    let n = items[0].len();
    for (index, item) in items.iter().enumerate() {
        if item.len() != n {
            return Err(SearchError::LengthMismatch {
                index,
                expected: n,
                actual: item.len(),
            });
        }
    }

    // Best-k pairs, sorted ascending; the k-th distance is the global
    // pruning threshold for every remaining comparison.
    let mut best: Vec<MotifPair> = Vec::with_capacity(k + 1);
    for a in 0..items.len() - 1 {
        let matrix = RotationMatrix::full(&items[a])
            .map_err(|e| SearchError::invalid_param("items", e.to_string()))?;
        let tree = WedgeTree::new(matrix, measure.warping_band());
        // A mid-sized fixed cut works well for one-shot scans (the
        // dynamic planner needs a longer scan to pay off).
        let cut = tree.cut_nodes(16.min(tree.max_k()));
        #[allow(clippy::needless_range_loop)] // b is also stored in the MotifPair
        for b in a + 1..items.len() {
            let threshold = if best.len() == k {
                best[k - 1].distance
            } else {
                f64::INFINITY
            };
            if let Some(outcome) = h_merge(&items[b], &tree, &cut, threshold, measure, counter) {
                best.push(MotifPair {
                    a,
                    b,
                    distance: outcome.distance,
                    rotation: outcome.rotation,
                });
                best.sort_by(|x, y| x.distance.total_cmp(&y.distance));
                best.truncate(k);
            }
        }
    }
    if best.is_empty() {
        // Unreachable for k >= 1 and >= 2 items: an infinite threshold
        // always yields a pair on the very first comparison.
        return Err(SearchError::EmptyDatabase);
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_distance::rotation::rotation_invariant_distance;
    use rotind_distance::DtwParams;
    use rotind_ts::rotate::rotated;

    fn steps() -> StepCounter {
        StepCounter::new()
    }

    fn collection(m: usize, n: usize) -> Vec<Vec<f64>> {
        (0..m)
            .map(|k| {
                (0..n)
                    .map(|i| (i as f64 * (0.11 + 0.017 * k as f64)).sin() + (k as f64 * 0.9).cos())
                    .collect()
            })
            .collect()
    }

    /// Oracle: brute-force closest pair.
    fn oracle(items: &[Vec<f64>], measure: Measure) -> (usize, usize, f64) {
        let mut best = (0, 0, f64::INFINITY);
        for a in 0..items.len() {
            for b in a + 1..items.len() {
                let d = rotation_invariant_distance(&items[b], &items[a], measure, &mut steps());
                if d < best.2 {
                    best = (a, b, d);
                }
            }
        }
        best
    }

    #[test]
    fn finds_planted_near_duplicate() {
        let mut items = collection(14, 40);
        // Plant: item 11 is a rotated, slightly noisy copy of item 3.
        items[11] = rotated(&items[3], 17)
            .iter()
            .enumerate()
            .map(|(i, v)| v + 0.001 * (i as f64).sin())
            .collect();
        let motif = closest_pair(&items, Measure::Euclidean, &mut steps()).unwrap();
        assert_eq!((motif.a, motif.b), (3, 11));
        assert!(motif.distance < 0.1);
        // The reported rotation reproduces the distance.
        let d = rotated(&items[3], motif.rotation.shift)
            .iter()
            .zip(&items[11])
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!((d - motif.distance).abs() < 1e-9);
    }

    #[test]
    fn equals_brute_force_oracle() {
        let items = collection(10, 24);
        for measure in [Measure::Euclidean, Measure::Dtw(DtwParams::new(2))] {
            let motif = closest_pair(&items, measure, &mut steps()).unwrap();
            let (oa, ob, od) = oracle(&items, measure);
            assert!((motif.distance - od).abs() < 1e-9, "{}", measure.name());
            // Index equality up to exact distance ties.
            if (motif.a, motif.b) != (oa, ob) {
                let d = rotation_invariant_distance(
                    &items[motif.b],
                    &items[motif.a],
                    measure,
                    &mut steps(),
                );
                assert!((d - od).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn top_k_is_sorted_and_distinct() {
        let items = collection(9, 20);
        let motifs = top_motifs(&items, 3, Measure::Euclidean, &mut steps()).unwrap();
        assert_eq!(motifs.len(), 3);
        assert!(motifs.windows(2).all(|w| w[0].distance <= w[1].distance));
        let mut pairs: Vec<(usize, usize)> = motifs.iter().map(|m| (m.a, m.b)).collect();
        pairs.dedup();
        assert_eq!(pairs.len(), 3, "pairs must be distinct");
    }

    #[test]
    fn global_threshold_prunes() {
        // With a planted duplicate, the global best-so-far collapses
        // early and the remaining comparisons mostly abandon: the scan
        // must use far fewer steps than the exhaustive double loop.
        let mut items = collection(20, 48);
        items[1] = rotated(&items[0], 5);
        let mut fast = steps();
        closest_pair(&items, Measure::Euclidean, &mut fast).unwrap();
        let exhaustive = (20 * 19 / 2) as u64 * 48 * 48; // pairs × n rotations × n
        assert!(
            fast.steps() * 4 < exhaustive,
            "{} !<< {exhaustive}",
            fast.steps()
        );
    }

    #[test]
    fn error_paths() {
        assert!(matches!(
            closest_pair(&[], Measure::Euclidean, &mut steps()),
            Err(SearchError::EmptyDatabase)
        ));
        assert!(matches!(
            closest_pair(&[vec![1.0, 2.0]], Measure::Euclidean, &mut steps()),
            Err(SearchError::EmptyDatabase)
        ));
        let ragged = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(matches!(
            closest_pair(&ragged, Measure::Euclidean, &mut steps()),
            Err(SearchError::LengthMismatch { index: 1, .. })
        ));
        assert!(top_motifs(&collection(3, 8), 0, Measure::Euclidean, &mut steps()).is_err());
    }
}
