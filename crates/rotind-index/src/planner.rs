//! Dynamic wedge-set-size selection (Section 4.1).
//!
//! The best wedge-set size `K` depends on the current best-so-far `r`:
//! a large `r` prunes little, favouring many thin wedges (large `K`);
//! a small `r` prunes a lot, favouring few fat wedges that abandon many
//! rotations with one pass. The paper's controller: *"We start with the
//! wedge set where K = 2. Each time the bestSoFar value changes, we test
//! a subset of the possible values of K and choose the most efficient
//! one (as measured by num_steps) as the next K to use. [The candidates]
//! are the values which evenly divide the ranges [1, current_K] and
//! [current_K, max_K] into 5 intervals."*
//!
//! The probe here is *free*: candidate `K` values are tried on
//! consecutive database items (one candidate per item, work that had to
//! be done anyway), their `num_steps` recorded, and the cheapest adopted.
//! Re-running one item under every candidate would multiply the scan cost
//! by the candidate count and, measured on our workloads, erases the
//! entire wedge advantage — so the sequential form is used and its
//! (zero) overhead is naturally included in every experiment, as the
//! paper requires.

use rotind_obs::{NoopObserver, SearchObserver};

/// Number of intervals each side of `current_K` is divided into.
/// The paper finds any value in 3..=20 changes performance by < 4%.
pub const PROBE_INTERVALS: usize = 5;

/// State machine selecting the wedge-set size `K`.
#[derive(Debug, Clone)]
pub struct KPlanner {
    current_k: usize,
    max_k: usize,
    intervals: usize,
    /// Candidate Ks still to be measured (reverse order, popped from the
    /// back), plus measurements taken so far in this probe cycle.
    pending: Vec<usize>,
    measured: Vec<(usize, u64)>,
}

impl KPlanner {
    /// A planner over wedge sets of size `1..=max_k`, starting at the
    /// paper's initial `K = 2`.
    pub fn new(max_k: usize) -> Self {
        Self::with_intervals(max_k, PROBE_INTERVALS)
    }

    /// A planner with a custom probe-interval count (the paper: any
    /// value in `3..=20` changes performance by less than 4%; the
    /// sensitivity is measured by the ablation harness).
    pub fn with_intervals(max_k: usize, intervals: usize) -> Self {
        let max_k = max_k.max(1);
        KPlanner {
            current_k: 2.min(max_k),
            max_k,
            intervals: intervals.max(1),
            pending: Vec::new(),
            measured: Vec::new(),
        }
    }

    /// The `K` to use for the next comparison: the next probe candidate
    /// while a probe cycle is active, the adopted `K` otherwise.
    pub fn next_k(&mut self) -> usize {
        self.effective_k()
    }

    fn effective_k(&self) -> usize {
        match self.pending.last() {
            Some(&k) => k,
            None => self.current_k,
        }
    }

    /// `true` while a probe cycle is measuring candidates.
    pub fn probing(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Largest admissible `K`.
    pub fn max_k(&self) -> usize {
        self.max_k
    }

    /// Currently adopted `K`.
    pub fn current_k(&self) -> usize {
        self.current_k
    }

    /// Record the `num_steps` cost of the comparison just performed with
    /// [`next_k`](Self::next_k)'s value. Advances the probe cycle; when
    /// the last candidate is measured, the cheapest is adopted.
    pub fn record(&mut self, steps: u64) {
        self.record_observed(steps, &mut NoopObserver);
    }

    /// [`record`](Self::record) that reports every effective-K transition
    /// to `observer` via [`SearchObserver::on_k_change`] — advancing to
    /// the next probe candidate (`probing = true`) or adopting the
    /// measured winner at the end of a cycle (`probing = false`).
    pub fn record_observed<O: SearchObserver>(&mut self, steps: u64, observer: &mut O) {
        let old = self.effective_k();
        if let Some(k) = self.pending.pop() {
            self.measured.push((k, steps));
            if self.pending.is_empty() {
                if let Some(&(best_k, _)) = self.measured.iter().min_by_key(|&&(_, cost)| cost) {
                    self.current_k = best_k;
                }
                self.measured.clear();
            }
        }
        let new = self.effective_k();
        if new != old {
            observer.on_k_change(old, new, self.probing());
        }
    }

    /// Notify the planner that best-so-far improved: start (or restart) a
    /// probe cycle over the candidate values that evenly divide
    /// `[1, current_K]` and `[current_K, max_K]` into
    /// [`PROBE_INTERVALS`] intervals.
    pub fn on_best_so_far_change(&mut self) {
        self.on_best_so_far_change_observed(&mut NoopObserver);
    }

    /// [`on_best_so_far_change`](Self::on_best_so_far_change) that
    /// reports the jump to the first probe candidate (when it differs
    /// from the current effective K) via
    /// [`SearchObserver::on_k_change`] with `probing = true`.
    pub fn on_best_so_far_change_observed<O: SearchObserver>(&mut self, observer: &mut O) {
        let old = self.effective_k();
        self.measured.clear();
        let intervals = self.intervals;
        let mut cands = Vec::with_capacity(2 * intervals + 2);
        let spread = |lo: usize, hi: usize, out: &mut Vec<usize>| {
            if hi <= lo {
                out.push(lo);
                return;
            }
            for i in 0..=intervals {
                let v = lo as f64 + (hi - lo) as f64 * i as f64 / intervals as f64;
                out.push(v.round() as usize);
            }
        };
        spread(1, self.current_k, &mut cands);
        spread(self.current_k, self.max_k, &mut cands);
        cands.sort_unstable();
        cands.dedup();
        cands.retain(|&k| (1..=self.max_k).contains(&k));
        cands.reverse(); // popped from the back → ascending trial order
        self.pending = cands;
        let new = self.effective_k();
        if new != old {
            observer.on_k_change(old, new, true);
        }
    }

    /// Force-adopt a `K` (used by tests and ablations).
    pub fn adopt(&mut self, k: usize) {
        self.current_k = k.clamp(1, self.max_k);
        self.pending.clear();
        self.measured.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_two() {
        assert_eq!(KPlanner::new(100).next_k(), 2);
        assert_eq!(KPlanner::new(1).next_k(), 1, "clamped to max_k");
    }

    #[test]
    fn no_probe_until_notified() {
        let mut p = KPlanner::new(50);
        assert!(!p.probing());
        assert_eq!(p.next_k(), 2);
        p.record(100); // recording outside a probe is a no-op
        assert_eq!(p.next_k(), 2);
    }

    #[test]
    fn probe_cycle_adopts_cheapest() {
        let mut p = KPlanner::new(10);
        p.adopt(5);
        p.on_best_so_far_change();
        assert!(p.probing());
        let mut seen = Vec::new();
        // Feed costs so that K = 7 is cheapest (if present), else make a
        // specific candidate cheapest.
        while p.probing() {
            let k = p.next_k();
            seen.push(k);
            p.record(if k == 7 { 1 } else { 100 + k as u64 });
        }
        assert!(seen.contains(&1) && seen.contains(&5) && seen.contains(&10));
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "ascending trials");
        if seen.contains(&7) {
            assert_eq!(p.current_k(), 7);
        }
        assert!(!p.probing());
    }

    #[test]
    fn candidates_cover_both_ranges() {
        let mut p = KPlanner::new(100);
        p.adopt(20);
        p.on_best_so_far_change();
        let mut cands = Vec::new();
        while p.probing() {
            cands.push(p.next_k());
            p.record(1);
        }
        assert!(cands.contains(&1));
        assert!(cands.contains(&20));
        assert!(cands.contains(&100));
        assert!(cands.iter().any(|&k| k > 1 && k < 20));
        assert!(cands.iter().any(|&k| k > 20 && k < 100));
        assert!(cands.iter().all(|&k| (1..=100).contains(&k)));
    }

    #[test]
    fn bsf_change_mid_probe_restarts() {
        let mut p = KPlanner::new(30);
        p.on_best_so_far_change();
        let first = p.next_k();
        p.record(10);
        p.on_best_so_far_change(); // restart before the cycle completes
        assert!(p.probing());
        assert_eq!(p.next_k(), first, "cycle restarted from the beginning");
    }

    #[test]
    fn degenerate_ranges() {
        let mut p = KPlanner::new(1);
        p.on_best_so_far_change();
        assert_eq!(p.next_k(), 1);
        p.record(5);
        assert!(!p.probing());
        assert_eq!(p.current_k(), 1);
    }

    #[test]
    fn custom_intervals_change_candidate_density() {
        let mut coarse = KPlanner::with_intervals(100, 3);
        let mut fine = KPlanner::with_intervals(100, 20);
        coarse.adopt(50);
        fine.adopt(50);
        let count = |p: &mut KPlanner| {
            p.on_best_so_far_change();
            let mut c = 0;
            while p.probing() {
                p.next_k();
                p.record(1);
                c += 1;
            }
            c
        };
        assert!(count(&mut fine) > count(&mut coarse));
    }

    #[test]
    fn adopt_clamps() {
        let mut p = KPlanner::new(30);
        p.adopt(0);
        assert_eq!(p.current_k(), 1);
        p.adopt(99);
        assert_eq!(p.current_k(), 30);
    }

    #[derive(Default)]
    struct KLog(Vec<(usize, usize, bool)>);

    impl SearchObserver for KLog {
        fn on_k_change(&mut self, old: usize, new: usize, probing: bool) {
            self.0.push((old, new, probing));
        }
    }

    #[test]
    fn observed_variants_report_every_k_transition() {
        let mut p = KPlanner::new(10);
        p.adopt(5);
        let mut log = KLog::default();
        p.on_best_so_far_change_observed(&mut log);
        assert_eq!(log.0.len(), 1, "probe start is one transition");
        assert_eq!(log.0[0], (5, p.next_k(), true));
        // Make the FIRST candidate (K = 1) cheapest, so the adoption at
        // cycle end is a visible transition away from the last candidate.
        while p.probing() {
            let k = p.next_k();
            p.record_observed(if k == 1 { 1 } else { 50 }, &mut log);
        }
        let last = *log.0.last().unwrap();
        assert!(!last.2, "final transition adopts (probing = false)");
        assert_eq!(last.1, 1, "cheapest candidate adopted");
        // Every transition chains: new of one is old of the next.
        assert!(log.0.windows(2).all(|w| w[0].1 == w[1].0));
    }

    #[test]
    fn observed_variants_match_unobserved_decisions() {
        // The observer must not influence the adopted K.
        let mut a = KPlanner::new(40);
        let mut b = KPlanner::new(40);
        let mut log = KLog::default();
        a.on_best_so_far_change();
        b.on_best_so_far_change_observed(&mut log);
        let mut cost = 17u64;
        while a.probing() {
            assert_eq!(a.next_k(), b.next_k());
            cost = cost.wrapping_mul(31).wrapping_add(7) % 1000;
            a.record(cost);
            b.record_observed(cost, &mut log);
        }
        assert!(!b.probing());
        assert_eq!(a.current_k(), b.current_k());
    }
}
