//! Error type for search and indexing operations.

use std::fmt;

/// Errors from the search engine and the disk index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchError {
    /// The database contains no items.
    EmptyDatabase,
    /// A database item's length differs from the query length.
    LengthMismatch {
        /// Index of the offending database item.
        index: usize,
        /// Expected series length (the query length).
        expected: usize,
        /// Actual length of the item.
        actual: usize,
    },
    /// An invalid parameter (e.g. `k = 0` for k-NN).
    InvalidParam {
        /// Parameter name.
        name: &'static str,
        /// Violation description.
        message: String,
    },
}

impl SearchError {
    /// Convenience constructor for [`SearchError::InvalidParam`].
    pub fn invalid_param(name: &'static str, message: impl Into<String>) -> Self {
        SearchError::InvalidParam {
            name,
            message: message.into(),
        }
    }
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::EmptyDatabase => write!(f, "database contains no items"),
            SearchError::LengthMismatch {
                index,
                expected,
                actual,
            } => write!(
                f,
                "database item {index} has length {actual}, expected {expected}"
            ),
            SearchError::InvalidParam { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for SearchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            SearchError::EmptyDatabase.to_string(),
            "database contains no items"
        );
        let e = SearchError::LengthMismatch {
            index: 3,
            expected: 64,
            actual: 32,
        };
        assert_eq!(e.to_string(), "database item 3 has length 32, expected 64");
        assert_eq!(
            SearchError::invalid_param("k", "must be >= 1").to_string(),
            "invalid parameter `k`: must be >= 1"
        );
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(SearchError::EmptyDatabase);
        assert!(!e.to_string().is_empty());
    }
}
