//! The user-facing rotation-invariant search engine.
//!
//! A [`RotationQuery`] packages the paper's full pipeline for one query
//! shape: expand the query into its admitted rotations (full, mirrored
//! and/or rotation-limited — Section 3), cluster them into a hierarchical
//! wedge tree (Section 4.1), then scan a database with H-Merge under the
//! dynamically tuned wedge-set size `K`. All searches are **exact**: they
//! return precisely the answers of the brute-force Table 3 scan, verified
//! by the property tests in `tests/`.

use crate::cascade::{BatchPaaCache, BoundCascade, CandidateCtx, CascadeConfig};
use crate::error::SearchError;
use crate::hmerge::{h_merge_cascade_budgeted_ctx, h_merge_from_root, HMergeOutcome};
use crate::planner::KPlanner;
use rotind_distance::measure::Measure;
use rotind_envelope::WedgeTree;
use rotind_obs::{
    BudgetHook, BudgetOutcome, Exhausted, NoBudget, NoopObserver, ProfilePhase, SearchObserver,
};
use rotind_ts::rotate::{Rotation, RotationMatrix};
use rotind_ts::{StepCounter, TsError};
use std::collections::HashMap;

/// Which rotations of the query are admitted as matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Invariance {
    /// All `n` circular shifts (full rotation invariance).
    Rotation,
    /// All shifts of the query and of its mirror image (enantiomorphic
    /// invariance — matching skulls facing either direction).
    RotationMirror,
    /// Only shifts within `max_shift` samples of zero — the paper's
    /// rotation-limited query (*"find the best match allowing a maximum
    /// rotation of 15 degrees"*); convert degrees to samples with
    /// `n·deg/360`. `max_shift == 0` admits exactly the identity
    /// rotation; `max_shift >= n` saturates to full invariance
    /// ([`Invariance::Rotation`]) — the window already covers every
    /// shift, so the engine clamps rather than erroring.
    RotationLimited {
        /// Maximum admitted shift, in samples, in either direction.
        max_shift: usize,
    },
    /// Rotation-limited with mirror rows; the same `max_shift` edge
    /// semantics as [`Invariance::RotationLimited`] apply.
    RotationLimitedMirror {
        /// Maximum admitted shift, in samples, in either direction.
        max_shift: usize,
    },
}

impl Invariance {
    fn matrix(self, query: &[f64]) -> Result<RotationMatrix, TsError> {
        // `RotationMatrix::limited` rejects `max_shift >= n` so that raw
        // huge limits are caught there; at the engine level a saturated
        // window is well-defined — it is full invariance — so clamp.
        let saturated = |max_shift: usize| max_shift >= query.len();
        match self {
            Invariance::Rotation => RotationMatrix::full(query),
            Invariance::RotationMirror => RotationMatrix::with_mirror(query),
            Invariance::RotationLimited { max_shift } if saturated(max_shift) => {
                RotationMatrix::full(query)
            }
            Invariance::RotationLimited { max_shift } => RotationMatrix::limited(query, max_shift),
            Invariance::RotationLimitedMirror { max_shift } if saturated(max_shift) => {
                RotationMatrix::with_mirror(query)
            }
            Invariance::RotationLimitedMirror { max_shift } => {
                RotationMatrix::limited_with_mirror(query, max_shift)
            }
        }
    }
}

/// How the wedge-set size `K` is chosen during a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KPolicy {
    /// The paper's controller: start at 2, re-probe when best-so-far
    /// improves (Section 4.1). The default.
    Dynamic,
    /// A fixed `K` (clamped to the number of rotations); used by the
    /// ablation benches.
    Fixed(usize),
}

/// One search hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the database item.
    pub index: usize,
    /// Rotation-invariant distance to the query.
    pub distance: f64,
    /// The query rotation realising that distance.
    pub rotation: Rotation,
}

/// An exact rotation-invariant query engine for one query series.
///
/// Building the engine costs the paper's `O(n²)` startup (shift profiles,
/// clustering, wedges); each search over `m` items then costs an
/// empirical `O(m·n^{1.06})` instead of the brute-force `O(m·n²)`.
///
/// ```
/// use rotind_index::engine::{Invariance, RotationQuery};
/// use rotind_ts::rotate::rotated;
/// let db: Vec<Vec<f64>> = (0..10)
///     .map(|k| (0..32).map(|i| ((i * (k + 2)) as f64 * 0.1).sin()).collect())
///     .collect();
/// let query = rotated(&db[4], 13); // item 4 at a different orientation
/// let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
/// let hit = engine.nearest(&db).unwrap();
/// assert_eq!(hit.index, 4);
/// assert!(hit.distance < 1e-9);
/// assert_eq!(hit.rotation.shift, 32 - 13);
/// ```
#[derive(Debug, Clone)]
pub struct RotationQuery {
    tree: WedgeTree,
    measure: Measure,
    cascade: BoundCascade,
    pub(crate) k_policy: KPolicy,
    pub(crate) probe_intervals: usize,
}

impl RotationQuery {
    /// Engine under Euclidean distance with the dynamic-K policy.
    pub fn new(query: &[f64], invariance: Invariance) -> Result<Self, TsError> {
        Self::with_measure(query, invariance, Measure::Euclidean)
    }

    /// Engine under an arbitrary measure (Euclidean, DTW or LCSS). For
    /// DTW the wedge envelopes are widened by the measure's band.
    pub fn with_measure(
        query: &[f64],
        invariance: Invariance,
        measure: Measure,
    ) -> Result<Self, TsError> {
        let matrix = invariance.matrix(query)?;
        let tree = WedgeTree::new(matrix, measure.warping_band());
        let cascade = BoundCascade::build(&tree, CascadeConfig::from_env());
        Ok(RotationQuery {
            tree,
            measure,
            cascade,
            k_policy: KPolicy::Dynamic,
            probe_intervals: crate::planner::PROBE_INTERVALS,
        })
    }

    /// Replace the K policy (builder style).
    pub fn with_k_policy(mut self, policy: KPolicy) -> Self {
        self.k_policy = policy;
        self
    }

    /// Replace the bound-cascade configuration (builder style),
    /// rebuilding any per-tree tier data. Every configuration yields
    /// bit-identical search results; only the work profile changes.
    pub fn with_cascade(mut self, config: CascadeConfig) -> Self {
        self.cascade = BoundCascade::build(&self.tree, config);
        self
    }

    /// The bound cascade this engine scans with.
    pub fn cascade(&self) -> &BoundCascade {
        &self.cascade
    }

    /// Set the dynamic planner's probe-interval count (builder style).
    /// The paper reports that any value in `3..=20` changes performance
    /// by less than 4%; the default is 5.
    pub fn with_probe_intervals(mut self, intervals: usize) -> Self {
        self.probe_intervals = intervals.max(1);
        self
    }

    /// The measure this engine searches under.
    pub fn measure(&self) -> Measure {
        self.measure
    }

    /// Query series length `n`.
    pub fn series_len(&self) -> usize {
        self.tree.matrix().series_len()
    }

    /// The hierarchical wedge tree (for diagnostics and benches).
    pub fn tree(&self) -> &WedgeTree {
        &self.tree
    }

    /// Exact rotation-invariant distance from the query to `candidate`.
    pub fn distance_to(&self, candidate: &[f64]) -> Result<f64, SearchError> {
        self.check_len(0, candidate)?;
        let mut counter = StepCounter::new();
        Ok(h_merge_from_root(
            candidate,
            &self.tree,
            f64::INFINITY,
            self.measure,
            &mut counter,
        )
        .expect("infinite threshold always matches")
        .distance)
    }

    /// Exact 1-nearest-neighbour search.
    pub fn nearest(&self, database: &[Vec<f64>]) -> Result<Neighbor, SearchError> {
        let mut counter = StepCounter::new();
        self.nearest_with_steps(database, &mut counter)
    }

    /// 1-NN search that also reports the `num_steps` cost — the metric of
    /// Figures 19–23.
    pub fn nearest_with_steps(
        &self,
        database: &[Vec<f64>],
        counter: &mut StepCounter,
    ) -> Result<Neighbor, SearchError> {
        let hits = self.k_nearest_with_steps(database, 1, counter)?;
        Ok(hits.into_iter().next().expect("k = 1 yields one hit"))
    }

    /// 1-NN search reporting every wedge test, prune, early abandon and
    /// planner decision to `observer` (typically a
    /// [`rotind_obs::QueryTrace`]). The observer never changes the
    /// answer or the step count — see `tests/observability.rs`.
    pub fn nearest_observed<O: SearchObserver>(
        &self,
        database: &[Vec<f64>],
        counter: &mut StepCounter,
        observer: &mut O,
    ) -> Result<Neighbor, SearchError> {
        let hits = self.k_nearest_observed(database, 1, counter, observer)?;
        Ok(hits.into_iter().next().expect("k = 1 yields one hit"))
    }

    /// Exact k-nearest-neighbour search (ties broken by database order).
    pub fn k_nearest(&self, database: &[Vec<f64>], k: usize) -> Result<Vec<Neighbor>, SearchError> {
        let mut counter = StepCounter::new();
        self.k_nearest_with_steps(database, k, &mut counter)
    }

    /// k-NN with step accounting.
    pub fn k_nearest_with_steps(
        &self,
        database: &[Vec<f64>],
        k: usize,
        counter: &mut StepCounter,
    ) -> Result<Vec<Neighbor>, SearchError> {
        self.k_nearest_observed(database, k, counter, &mut NoopObserver)
    }

    /// k-NN with step accounting and observer callbacks.
    pub fn k_nearest_observed<O: SearchObserver>(
        &self,
        database: &[Vec<f64>],
        k: usize,
        counter: &mut StepCounter,
        observer: &mut O,
    ) -> Result<Vec<Neighbor>, SearchError> {
        // NoBudget monomorphizes every budget check to a constant, so
        // this is the exact pre-budget scan — see tests/profiling.rs.
        Ok(self
            .k_nearest_budgeted(database, k, counter, observer, &mut NoBudget)?
            .into_inner())
    }

    /// 1-NN under a [`BudgetHook`]: like
    /// [`nearest_observed`](Self::nearest_observed) but the budget is
    /// checked before every candidate item and inside every wedge walk.
    /// On exhaustion the partial result is the best neighbour among the
    /// items fully or partially scanned so far — `None` only when the
    /// budget tripped before any leaf was admitted.
    pub fn nearest_budgeted<O: SearchObserver, B: BudgetHook>(
        &self,
        database: &[Vec<f64>],
        counter: &mut StepCounter,
        observer: &mut O,
        budget: &mut B,
    ) -> Result<BudgetOutcome<Option<Neighbor>>, SearchError> {
        Ok(self
            .k_nearest_budgeted(database, 1, counter, observer, budget)?
            .map(|hits| hits.into_iter().next()))
    }

    /// k-NN under a [`BudgetHook`] (see
    /// [`nearest_budgeted`](Self::nearest_budgeted)): the budget is
    /// checked at every dismissal boundary — before each database item
    /// here, and before each popped wedge inside H-Merge. On exhaustion
    /// the partial heap holds exact distances for every admitted item,
    /// but may miss closer items that were never (or only partially)
    /// scanned.
    pub fn k_nearest_budgeted<O: SearchObserver, B: BudgetHook>(
        &self,
        database: &[Vec<f64>],
        k: usize,
        counter: &mut StepCounter,
        observer: &mut O,
        budget: &mut B,
    ) -> Result<BudgetOutcome<Vec<Neighbor>>, SearchError> {
        self.k_nearest_budgeted_src(database, k, counter, observer, budget, &mut FreshPaa)
    }

    /// [`k_nearest_budgeted`](Self::k_nearest_budgeted) sharing a
    /// [`BatchPaaCache`] of candidate PAA projections across queries.
    /// Results are bit-identical to the uncached scan (the projection
    /// is query-independent); only the step counts of queries after
    /// the first drop, by the amortized `O(n)` projections. The cache
    /// must have been built at this engine's cascade `dims`.
    pub fn k_nearest_budgeted_cached<O: SearchObserver, B: BudgetHook>(
        &self,
        database: &[Vec<f64>],
        k: usize,
        counter: &mut StepCounter,
        observer: &mut O,
        budget: &mut B,
        cache: &mut BatchPaaCache,
    ) -> Result<BudgetOutcome<Vec<Neighbor>>, SearchError> {
        self.check_cache(cache)?;
        self.k_nearest_budgeted_src(database, k, counter, observer, budget, &mut &mut *cache)
    }

    fn k_nearest_budgeted_src<O: SearchObserver, B: BudgetHook>(
        &self,
        database: &[Vec<f64>],
        k: usize,
        counter: &mut StepCounter,
        observer: &mut O,
        budget: &mut B,
        paa_src: &mut impl PaaSource,
    ) -> Result<BudgetOutcome<Vec<Neighbor>>, SearchError> {
        if k == 0 {
            return Err(SearchError::invalid_param("k", "must be >= 1"));
        }
        if database.is_empty() {
            return Err(SearchError::EmptyDatabase);
        }
        self.check_all(database)?;

        observer.on_phase_start(ProfilePhase::Query, counter.steps());
        // Max-heap of the k best by distance; best-so-far is the k-th
        // best (pruning only starts once k hits are held).
        let mut heap: Vec<Neighbor> = Vec::with_capacity(k + 1);
        let mut scan = ScanState::new(
            &self.tree,
            &self.cascade,
            self.k_policy,
            self.probe_intervals,
        );
        for (index, item) in database.iter().enumerate() {
            // Dismissal boundary: stop admitting new candidates once the
            // budget trips (the sticky hook also cuts the wedge walk
            // below, so at most one partial walk runs after a trip).
            if !budget.check(counter.steps()) {
                break;
            }
            let bsf = if heap.len() == k {
                heap.last().map_or(f64::INFINITY, |h| h.distance)
            } else {
                f64::INFINITY
            };
            let mut ctx = paa_src.take(index);
            let compared = scan.compare_budgeted_ctx(
                item,
                bsf,
                self.measure,
                counter,
                observer,
                budget,
                &mut ctx,
            );
            paa_src.put(index, ctx);
            if let Some(outcome) = compared {
                // H-Merge admits inclusively, so with a full heap an item
                // at exactly the k-th distance comes back `Some`; it
                // cannot displace the (lower-index) incumbent, so skip it
                // rather than churn the heap and the planner. `>=` here is
                // not a false dismissal: the tie at exactly `bsf` is
                // already held by a lower index.
                // rotind-lint: allow(strict-dismissal)
                if heap.len() == k && outcome.distance >= bsf {
                    continue;
                }
                heap.push(Neighbor {
                    index,
                    distance: outcome.distance,
                    rotation: outcome.rotation,
                });
                heap.sort_by(|a, b| a.distance.total_cmp(&b.distance));
                if heap.len() > k {
                    heap.pop();
                }
                scan.notify_improvement_observed(observer);
            }
        }
        observer.on_phase_end(ProfilePhase::Query, counter.steps());
        Ok(match budget.trip_reason() {
            Some(reason) => BudgetOutcome::Exhausted(Exhausted {
                partial: heap,
                reason,
                steps_spent: counter.steps(),
            }),
            None => BudgetOutcome::Complete(heap),
        })
    }

    /// Exact range query: every item within `radius` (inclusive) of the
    /// query under the engine's measure.
    pub fn range(&self, database: &[Vec<f64>], radius: f64) -> Result<Vec<Neighbor>, SearchError> {
        let mut counter = StepCounter::new();
        self.range_observed(database, radius, &mut counter, &mut NoopObserver)
    }

    /// Range query with step accounting and observer callbacks.
    pub fn range_observed<O: SearchObserver>(
        &self,
        database: &[Vec<f64>],
        radius: f64,
        counter: &mut StepCounter,
        observer: &mut O,
    ) -> Result<Vec<Neighbor>, SearchError> {
        Ok(self
            .range_budgeted(database, radius, counter, observer, &mut NoBudget)?
            .into_inner())
    }

    /// Range query under a [`BudgetHook`] (see
    /// [`k_nearest_budgeted`](Self::k_nearest_budgeted)): on exhaustion
    /// the partial hit list covers the scanned prefix of the database.
    pub fn range_budgeted<O: SearchObserver, B: BudgetHook>(
        &self,
        database: &[Vec<f64>],
        radius: f64,
        counter: &mut StepCounter,
        observer: &mut O,
        budget: &mut B,
    ) -> Result<BudgetOutcome<Vec<Neighbor>>, SearchError> {
        self.range_budgeted_src(database, radius, counter, observer, budget, &mut FreshPaa)
    }

    /// [`range_budgeted`](Self::range_budgeted) sharing a
    /// [`BatchPaaCache`] across queries (see
    /// [`k_nearest_budgeted_cached`](Self::k_nearest_budgeted_cached)).
    pub fn range_budgeted_cached<O: SearchObserver, B: BudgetHook>(
        &self,
        database: &[Vec<f64>],
        radius: f64,
        counter: &mut StepCounter,
        observer: &mut O,
        budget: &mut B,
        cache: &mut BatchPaaCache,
    ) -> Result<BudgetOutcome<Vec<Neighbor>>, SearchError> {
        self.check_cache(cache)?;
        self.range_budgeted_src(
            database,
            radius,
            counter,
            observer,
            budget,
            &mut &mut *cache,
        )
    }

    fn range_budgeted_src<O: SearchObserver, B: BudgetHook>(
        &self,
        database: &[Vec<f64>],
        radius: f64,
        counter: &mut StepCounter,
        observer: &mut O,
        budget: &mut B,
        paa_src: &mut impl PaaSource,
    ) -> Result<BudgetOutcome<Vec<Neighbor>>, SearchError> {
        if !radius.is_finite() || radius < 0.0 {
            return Err(SearchError::invalid_param(
                "radius",
                "must be finite and >= 0",
            ));
        }
        self.check_all(database)?;
        observer.on_phase_start(ProfilePhase::Query, counter.steps());
        let mut scan = ScanState::new(
            &self.tree,
            &self.cascade,
            self.k_policy,
            self.probe_intervals,
        );
        let mut out = Vec::new();
        for (index, item) in database.iter().enumerate() {
            // Dismissal boundary (see k_nearest_budgeted).
            if !budget.check(counter.steps()) {
                break;
            }
            // H-Merge admits inclusively (`d == radius` matches), so the
            // radius is passed straight through — no epsilon padding.
            let mut ctx = paa_src.take(index);
            let compared = scan.compare_budgeted_ctx(
                item,
                radius,
                self.measure,
                counter,
                observer,
                budget,
                &mut ctx,
            );
            paa_src.put(index, ctx);
            if let Some(outcome) = compared {
                out.push(Neighbor {
                    index,
                    distance: outcome.distance,
                    rotation: outcome.rotation,
                });
            }
        }
        observer.on_phase_end(ProfilePhase::Query, counter.steps());
        Ok(match budget.trip_reason() {
            Some(reason) => BudgetOutcome::Exhausted(Exhausted {
                partial: out,
                reason,
                steps_spent: counter.steps(),
            }),
            None => BudgetOutcome::Complete(out),
        })
    }

    fn check_cache(&self, cache: &BatchPaaCache) -> Result<(), SearchError> {
        let dims = self.cascade.config().dims;
        if cache.dims() != dims {
            return Err(SearchError::invalid_param(
                "cache",
                format!(
                    "BatchPaaCache built at dims {} but this engine projects at dims {dims}",
                    cache.dims()
                ),
            ));
        }
        Ok(())
    }

    pub(crate) fn check_len(&self, index: usize, item: &[f64]) -> Result<(), SearchError> {
        let expected = self.series_len();
        if item.len() != expected {
            return Err(SearchError::LengthMismatch {
                index,
                expected,
                actual: item.len(),
            });
        }
        Ok(())
    }

    pub(crate) fn check_all(&self, database: &[Vec<f64>]) -> Result<(), SearchError> {
        for (i, item) in database.iter().enumerate() {
            self.check_len(i, item)?;
        }
        Ok(())
    }
}

/// Where the scan loop gets each candidate's [`CandidateCtx`]: a fresh
/// (empty) context per item for plain scans, or a [`BatchPaaCache`]
/// slot for the cached entry points. Private — the public surface is
/// the `*_cached` methods.
trait PaaSource {
    /// The context for candidate `index`.
    fn take(&mut self, index: usize) -> CandidateCtx;
    /// Return the context after the scan of candidate `index`.
    fn put(&mut self, index: usize, ctx: CandidateCtx);
}

/// Fresh context per candidate: the uncached scan, bit-identical to
/// the historical code path.
struct FreshPaa;

impl PaaSource for FreshPaa {
    fn take(&mut self, _index: usize) -> CandidateCtx {
        CandidateCtx::new()
    }

    fn put(&mut self, _index: usize, _ctx: CandidateCtx) {}
}

impl PaaSource for &mut BatchPaaCache {
    fn take(&mut self, index: usize) -> CandidateCtx {
        BatchPaaCache::take(self, index)
    }

    fn put(&mut self, index: usize, ctx: CandidateCtx) {
        BatchPaaCache::put(self, index, ctx);
    }
}

/// Per-scan state: the K planner plus a cache of dendrogram cuts.
/// `pub(crate)` so the parallel scan (`crate::parallel`) can give each
/// worker thread its own independent planner and cut cache.
pub(crate) struct ScanState<'a> {
    tree: &'a WedgeTree,
    cascade: &'a BoundCascade,
    planner: KPlanner,
    fixed_k: Option<usize>,
    cuts: HashMap<usize, Vec<usize>>,
}

impl<'a> ScanState<'a> {
    pub(crate) fn new(
        tree: &'a WedgeTree,
        cascade: &'a BoundCascade,
        policy: KPolicy,
        probe_intervals: usize,
    ) -> Self {
        let planner = KPlanner::with_intervals(tree.max_k(), probe_intervals);
        let fixed_k = match policy {
            KPolicy::Dynamic => None,
            KPolicy::Fixed(k) => Some(k.clamp(1, tree.max_k())),
        };
        ScanState {
            tree,
            cascade,
            planner,
            fixed_k,
            cuts: HashMap::new(),
        }
    }

    fn cut(&mut self, k: usize) -> &[usize] {
        let tree = self.tree;
        self.cuts.entry(k).or_insert_with(|| tree.cut_nodes(k))
    }

    pub(crate) fn notify_improvement_observed<O: SearchObserver>(&mut self, observer: &mut O) {
        if self.fixed_k.is_none() {
            self.planner.on_best_so_far_change_observed(observer);
        }
    }

    /// Compare one database item against the query's wedge tree under the
    /// current best-so-far. Under the dynamic policy, probe-cycle
    /// candidates are tried on consecutive items and their `num_steps`
    /// reported back to the planner — no extra work is performed, so the
    /// probe cost is (trivially) included in every experiment.
    ///
    /// Under a [`BudgetHook`], a tripped budget cuts the wedge walk at
    /// the next popped node. The (possibly truncated) step cost is
    /// still fed to the planner — its probes only tune future work,
    /// never exactness. Un-budgeted callers pass [`NoBudget`].
    pub(crate) fn compare_budgeted<O: SearchObserver, B: BudgetHook>(
        &mut self,
        item: &[f64],
        bsf: f64,
        measure: Measure,
        counter: &mut StepCounter,
        observer: &mut O,
        budget: &mut B,
    ) -> Option<HMergeOutcome> {
        let mut ctx = CandidateCtx::new();
        self.compare_budgeted_ctx(item, bsf, measure, counter, observer, budget, &mut ctx)
    }

    /// [`compare_budgeted`](Self::compare_budgeted) with a caller-owned
    /// candidate context, so batch scans can reuse a cached PAA
    /// projection (see [`BatchPaaCache`]).
    #[allow(clippy::too_many_arguments)] // mirrors compare_budgeted + the ctx
    pub(crate) fn compare_budgeted_ctx<O: SearchObserver, B: BudgetHook>(
        &mut self,
        item: &[f64],
        bsf: f64,
        measure: Measure,
        counter: &mut StepCounter,
        observer: &mut O,
        budget: &mut B,
        ctx: &mut CandidateCtx,
    ) -> Option<HMergeOutcome> {
        let k = match self.fixed_k {
            Some(k) => k,
            None => self.planner.next_k(),
        };
        let cut = self.cut(k).to_vec();
        let before = *counter;
        let outcome = h_merge_cascade_budgeted_ctx(
            item,
            self.tree,
            self.cascade,
            &cut,
            bsf,
            measure,
            counter,
            observer,
            budget,
            ctx,
        );
        if self.fixed_k.is_none() {
            self.planner
                .record_observed(counter.since(before), observer);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_distance::dtw::DtwParams;
    use rotind_distance::rotation::{search_database, test_all_rotations};
    use rotind_ts::rotate::{mirror, rotated};

    fn signal(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.29 + phase).sin() + 0.5 * (i as f64 * 0.91 + phase).cos())
            .collect()
    }

    fn database(m: usize, n: usize) -> Vec<Vec<f64>> {
        // Phases start away from the query phases used in the tests so no
        // database item accidentally coincides with a query.
        (0..m).map(|k| signal(n, 1.0 + k as f64 * 0.37)).collect()
    }

    #[test]
    fn nearest_matches_brute_force() {
        let n = 32;
        let query = signal(n, 0.11);
        let db = database(24, n);
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let hit = engine.nearest(&db).unwrap();
        let matrix = RotationMatrix::full(&query).unwrap();
        let oracle =
            search_database(&matrix, &db, Measure::Euclidean, &mut StepCounter::new()).unwrap();
        assert_eq!(hit.index, oracle.index);
        assert!((hit.distance - oracle.distance).abs() < 1e-9);
    }

    #[test]
    fn nearest_matches_brute_force_dtw() {
        let n = 24;
        let query = signal(n, 0.4);
        let db = database(15, n);
        let measure = Measure::Dtw(DtwParams::new(2));
        let engine = RotationQuery::with_measure(&query, Invariance::Rotation, measure).unwrap();
        let hit = engine.nearest(&db).unwrap();
        let matrix = RotationMatrix::full(&query).unwrap();
        let oracle = search_database(&matrix, &db, measure, &mut StepCounter::new()).unwrap();
        assert_eq!(hit.index, oracle.index);
        assert!((hit.distance - oracle.distance).abs() < 1e-9);
    }

    #[test]
    fn finds_planted_rotated_item() {
        let n = 40;
        let query = signal(n, 0.0);
        let mut db = database(30, n);
        db[17] = rotated(&query, 23);
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let hit = engine.nearest(&db).unwrap();
        assert_eq!(hit.index, 17);
        assert!(hit.distance < 1e-9);
        assert_eq!(hit.rotation.shift, 23);
    }

    #[test]
    fn k_nearest_is_sorted_and_exact() {
        let n = 28;
        let query = signal(n, 0.2);
        let db = database(20, n);
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let hits = engine.k_nearest(&db, 5).unwrap();
        assert_eq!(hits.len(), 5);
        assert!(hits.windows(2).all(|w| w[0].distance <= w[1].distance));
        // Oracle: all rotation-invariant distances, sorted.
        let matrix = RotationMatrix::full(&query).unwrap();
        let mut all: Vec<(usize, f64)> = db
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let d = test_all_rotations(
                    item,
                    &matrix,
                    f64::INFINITY,
                    Measure::Euclidean,
                    &mut StepCounter::new(),
                )
                .unwrap()
                .distance;
                (i, d)
            })
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (hit, (oi, od)) in hits.iter().zip(&all) {
            assert_eq!(hit.index, *oi);
            assert!((hit.distance - od).abs() < 1e-9);
        }
    }

    #[test]
    fn k_larger_than_database_returns_all() {
        let db = database(4, 16);
        let engine = RotationQuery::new(&signal(16, 0.0), Invariance::Rotation).unwrap();
        let hits = engine.k_nearest(&db, 10).unwrap();
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn range_query_inclusive_and_exact() {
        let n = 24;
        let query = signal(n, 0.0);
        let db = database(25, n);
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        // Oracle distances.
        let matrix = RotationMatrix::full(&query).unwrap();
        let dists: Vec<f64> = db
            .iter()
            .map(|item| {
                test_all_rotations(
                    item,
                    &matrix,
                    f64::INFINITY,
                    Measure::Euclidean,
                    &mut StepCounter::new(),
                )
                .unwrap()
                .distance
            })
            .collect();
        let mut sorted = dists.clone();
        sorted.sort_by(f64::total_cmp);
        let radius = sorted[10]; // exactly the 11th distance → inclusivity matters
        let hits = engine.range(&db, radius).unwrap();
        let expected: Vec<usize> = dists
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| (d <= radius).then_some(i))
            .collect();
        let mut got: Vec<usize> = hits.iter().map(|h| h.index).collect();
        got.sort_unstable();
        assert_eq!(got, expected);
        for h in &hits {
            assert!(h.distance <= radius);
        }
    }

    #[test]
    fn mirror_invariance_end_to_end() {
        let n = 30;
        let query = signal(n, 0.0);
        let mut db = database(12, n);
        db[5] = rotated(&mirror(&query), 9);
        let plain = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let with_mirror = RotationQuery::new(&query, Invariance::RotationMirror).unwrap();
        assert!(plain.nearest(&db).unwrap().distance > 1e-3);
        let hit = with_mirror.nearest(&db).unwrap();
        assert_eq!(hit.index, 5);
        assert!(hit.distance < 1e-9);
        assert!(hit.rotation.mirrored);
    }

    #[test]
    fn rotation_limited_end_to_end() {
        let n = 36;
        let query = signal(n, 0.0);
        let mut db = database(10, n);
        db[3] = rotated(&query, 12); // outside a ±2 window
        db[7] = rotated(&query, 1); // inside
        let engine =
            RotationQuery::new(&query, Invariance::RotationLimited { max_shift: 2 }).unwrap();
        let hit = engine.nearest(&db).unwrap();
        assert_eq!(hit.index, 7);
        assert!(hit.distance < 1e-9);
    }

    #[test]
    fn rotation_limited_zero_admits_identity_only() {
        // max_shift == 0 must still admit the identity rotation: the
        // engine degenerates to plain (unrotated) matching, not an error
        // and not an empty rotation set.
        let n = 24;
        let query = signal(n, 0.0);
        let mut db = database(8, n);
        db[2] = query.clone(); // exact unrotated copy
        db[5] = rotated(&query, 3); // rotated copy, outside the window
        let engine =
            RotationQuery::new(&query, Invariance::RotationLimited { max_shift: 0 }).unwrap();
        let hit = engine.nearest(&db).unwrap();
        assert_eq!(hit.index, 2);
        assert!(hit.distance < 1e-12);
        assert_eq!(hit.rotation, Rotation::shift(0));
        // The mirror variant keeps both identity rows.
        let engine =
            RotationQuery::new(&query, Invariance::RotationLimitedMirror { max_shift: 0 }).unwrap();
        assert_eq!(engine.tree().matrix().num_rotations(), 2);
        assert_eq!(engine.nearest(&db).unwrap().index, 2);
    }

    #[test]
    fn rotation_limited_saturated_equals_full_invariance() {
        // max_shift >= n saturates to full invariance: same rotation set
        // (no duplicate rows, no panic) and the same search answers.
        let n = 20;
        let query = signal(n, 0.1);
        let db = database(10, n);
        let full = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        for max_shift in [n, n + 1, 10 * n, usize::MAX] {
            let limited =
                RotationQuery::new(&query, Invariance::RotationLimited { max_shift }).unwrap();
            assert_eq!(
                limited.tree().matrix().rotations(),
                full.tree().matrix().rotations(),
                "max_shift = {max_shift}: saturated window must equal full invariance"
            );
            assert_eq!(
                limited.nearest(&db).unwrap(),
                full.nearest(&db).unwrap(),
                "max_shift = {max_shift}"
            );
        }
        let full_mirror = RotationQuery::new(&query, Invariance::RotationMirror).unwrap();
        let limited_mirror =
            RotationQuery::new(&query, Invariance::RotationLimitedMirror { max_shift: n }).unwrap();
        assert_eq!(
            limited_mirror.tree().matrix().rotations(),
            full_mirror.tree().matrix().rotations()
        );
        assert_eq!(
            limited_mirror.nearest(&db).unwrap(),
            full_mirror.nearest(&db).unwrap()
        );
    }

    #[test]
    fn range_at_exactly_representable_radius_includes_boundary_item() {
        // The planted item sits at exactly distance 3.0 (a single +3.0
        // spike on an exact-integer ramp: 3.0² = 9.0 and √9.0 = 3.0 are
        // exact in f64). A range query with radius == 3.0 must return it
        // — the admitted radius is inclusive on every scan path.
        let n = 16;
        let query: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut boundary = query.clone();
        boundary[5] += 3.0;
        let mut db = database(6, n);
        db[3] = boundary;
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let hits = engine.range(&db, 3.0).unwrap();
        assert!(
            hits.iter().any(|h| h.index == 3 && h.distance == 3.0),
            "item at exactly the radius must be returned: {hits:?}"
        );
    }

    #[test]
    fn fixed_k_policy_is_still_exact() {
        let n = 20;
        let query = signal(n, 0.3);
        let db = database(18, n);
        let reference = RotationQuery::new(&query, Invariance::Rotation)
            .unwrap()
            .nearest(&db)
            .unwrap();
        for k in [1usize, 3, 10, 20, 999] {
            let engine = RotationQuery::new(&query, Invariance::Rotation)
                .unwrap()
                .with_k_policy(KPolicy::Fixed(k));
            let hit = engine.nearest(&db).unwrap();
            assert_eq!(hit.index, reference.index, "K = {k}");
            assert!((hit.distance - reference.distance).abs() < 1e-9);
        }
    }

    #[test]
    fn lcss_nearest_matches_brute_force() {
        let n = 20;
        let query = signal(n, 0.4);
        let db = database(12, n);
        let measure = Measure::Lcss(rotind_distance::LcssParams::for_normalized(n));
        let engine = RotationQuery::with_measure(&query, Invariance::Rotation, measure).unwrap();
        let hit = engine.nearest(&db).unwrap();
        let matrix = RotationMatrix::full(&query).unwrap();
        let oracle = search_database(&matrix, &db, measure, &mut StepCounter::new()).unwrap();
        assert!((hit.distance - oracle.distance).abs() < 1e-9);
        // Indices may differ only under exact distance ties.
        if hit.index != oracle.index {
            let d_other = test_all_rotations(
                &db[hit.index],
                &matrix,
                f64::INFINITY,
                measure,
                &mut StepCounter::new(),
            )
            .unwrap()
            .distance;
            assert!((d_other - oracle.distance).abs() < 1e-9);
        }
    }

    #[test]
    fn error_paths() {
        let engine = RotationQuery::new(&signal(16, 0.0), Invariance::Rotation).unwrap();
        assert_eq!(engine.nearest(&[]).unwrap_err(), SearchError::EmptyDatabase);
        let bad = vec![vec![0.0; 8]];
        assert!(matches!(
            engine.nearest(&bad).unwrap_err(),
            SearchError::LengthMismatch {
                index: 0,
                expected: 16,
                actual: 8
            }
        ));
        assert!(matches!(
            engine.k_nearest(&database(3, 16), 0).unwrap_err(),
            SearchError::InvalidParam { .. }
        ));
        assert!(engine.range(&database(3, 16), -1.0).is_err());
        assert!(engine.range(&database(3, 16), f64::NAN).is_err());
    }

    #[test]
    fn distance_to_matches_oracle() {
        let query = signal(26, 0.0);
        let candidate = signal(26, 1.4);
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let got = engine.distance_to(&candidate).unwrap();
        let oracle = rotind_distance::rotation::rotation_invariant_distance(
            &candidate,
            &query,
            Measure::Euclidean,
            &mut StepCounter::new(),
        );
        assert!((got - oracle).abs() < 1e-9);
    }

    #[test]
    fn observed_search_is_neutral_and_sees_planner_activity() {
        use rotind_obs::QueryTrace;
        let n = 32;
        let query = signal(n, 0.15);
        let db = database(60, n);
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let mut plain_steps = StepCounter::new();
        let plain = engine.nearest_with_steps(&db, &mut plain_steps).unwrap();
        let mut trace = QueryTrace::new(n);
        let mut observed_steps = StepCounter::new();
        let observed = engine
            .nearest_observed(&db, &mut observed_steps, &mut trace)
            .unwrap();
        assert_eq!(plain, observed);
        assert_eq!(plain_steps.steps(), observed_steps.steps());
        assert!(trace.leaf_distances() > 0);
        assert!(trace.wedges_tested() > 0);
        assert!(
            !trace.k_timeline().is_empty(),
            "dynamic planner must have probed at least once"
        );
        // The first best-so-far improvement starts a probe cycle.
        assert!(trace.k_timeline()[0].probing);
    }

    #[test]
    fn observed_range_query_matches_plain() {
        use rotind_obs::QueryTrace;
        let n = 24;
        let query = signal(n, 0.0);
        let db = database(20, n);
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let radius = engine.nearest(&db).unwrap().distance * 1.5;
        let plain = engine.range(&db, radius).unwrap();
        let mut trace = QueryTrace::new(n);
        let mut counter = StepCounter::new();
        let observed = engine
            .range_observed(&db, radius, &mut counter, &mut trace)
            .unwrap();
        assert_eq!(plain, observed);
        assert!(counter.steps() > 0);
        assert!(trace.leaf_distances() > 0);
    }

    #[test]
    fn wedge_scan_beats_early_abandon_scan_on_steps() {
        // A diverse database (varying frequencies) with one planted
        // near-match: the regime of Figures 19–23, where the best-so-far
        // shrinks quickly and fat wedges prune whole rotation groups.
        let n = 64;
        let query: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).sin() * 2.0).collect();
        let mut db: Vec<Vec<f64>> = (0..200)
            .map(|k| {
                let w = 0.05 + 0.013 * k as f64;
                (0..n)
                    .map(|i| (i as f64 * w).sin() * 2.0 + (k as f64 * 0.77).cos())
                    .collect()
            })
            .collect();
        db[120] = rotated(&query, 31);
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let mut wedge_steps = StepCounter::new();
        engine.nearest_with_steps(&db, &mut wedge_steps).unwrap();
        let matrix = RotationMatrix::full(&query).unwrap();
        let mut ea_steps = StepCounter::new();
        search_database(&matrix, &db, Measure::Euclidean, &mut ea_steps).unwrap();
        assert!(
            wedge_steps.steps() < ea_steps.steps(),
            "wedge {} !< early-abandon {}",
            wedge_steps.steps(),
            ea_steps.steps()
        );
    }
}
