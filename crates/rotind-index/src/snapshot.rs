//! Immutable database snapshots for long-lived serving.
//!
//! A query service owns one validated, immutable database and
//! multiplexes many queries over it. [`IndexSnapshot`] is that handle:
//! the database sits behind an [`Arc`], so worker threads share it
//! without copies and a snapshot swap is a pointer swap; validation
//! (non-empty, uniform series length) happens once at construction
//! instead of once per query; and [`IndexSnapshot::execute`] is the
//! single entry point the serve crate drives, dispatching a
//! [`QuerySpec`] to the engine's budgeted scans — optionally through a
//! [`BatchPaaCache`] so the tier-2 candidate projections are amortized
//! across the queries of a worker instead of rebuilt per query.
//!
//! Results are bit-identical to calling [`RotationQuery`] directly:
//! `execute` adds no logic, only ownership and dispatch (the serve
//! integration tests replay fixed query sets both ways and assert
//! equality).

use crate::cascade::{BatchPaaCache, CascadeConfig};
use crate::engine::{Invariance, Neighbor, RotationQuery};
use crate::error::SearchError;
use rotind_distance::measure::Measure;
use rotind_obs::{BudgetHook, BudgetOutcome, SearchObserver};
use rotind_ts::StepCounter;
use std::sync::Arc;

/// What a query asks of the snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryKind {
    /// The single nearest neighbour.
    Nearest,
    /// The `k` nearest neighbours (ties broken by database order).
    KNearest(usize),
    /// Every item within the radius (inclusive).
    Range(f64),
}

/// One self-contained query against a snapshot: the series, the
/// admitted rotations, the measure and the kind of answer wanted.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// The query series (must match the snapshot's series length).
    pub series: Vec<f64>,
    /// Which rotations of the query are admitted.
    pub invariance: Invariance,
    /// The distance measure to search under.
    pub measure: Measure,
    /// Nearest / k-NN / range.
    pub kind: QueryKind,
}

/// A validated, immutable, shareable database handle.
///
/// Cloning a snapshot clones the [`Arc`], not the data — the server's
/// worker threads each hold one handle to the same database.
#[derive(Debug, Clone)]
pub struct IndexSnapshot {
    database: Arc<Vec<Vec<f64>>>,
    series_len: usize,
}

impl IndexSnapshot {
    /// Validate and take ownership of a database: it must be non-empty
    /// and every series must have the same length.
    pub fn new(database: Vec<Vec<f64>>) -> Result<Self, SearchError> {
        let Some(first) = database.first() else {
            return Err(SearchError::EmptyDatabase);
        };
        let series_len = first.len();
        for (index, item) in database.iter().enumerate() {
            if item.len() != series_len {
                return Err(SearchError::LengthMismatch {
                    index,
                    expected: series_len,
                    actual: item.len(),
                });
            }
        }
        Ok(IndexSnapshot {
            database: Arc::new(database),
            series_len,
        })
    }

    /// The snapshot's database.
    pub fn database(&self) -> &[Vec<f64>] {
        &self.database
    }

    /// Number of series in the snapshot.
    pub fn len(&self) -> usize {
        self.database.len()
    }

    /// Always false — construction rejects empty databases — but kept
    /// for the conventional pairing with [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        self.database.is_empty()
    }

    /// Length `n` of every series in the snapshot.
    pub fn series_len(&self) -> usize {
        self.series_len
    }

    /// A fresh candidate-projection cache sized for this snapshot, at
    /// the dimensionality the engine's default cascade configuration
    /// (`ROTIND_CASCADE`) will project at. One per worker thread; see
    /// [`BatchPaaCache`].
    pub fn paa_cache(&self) -> BatchPaaCache {
        BatchPaaCache::new(self.database.len(), CascadeConfig::from_env().dims)
    }

    /// Run one query against the snapshot under a budget, optionally
    /// through a worker's [`BatchPaaCache`].
    ///
    /// This is pure dispatch over [`RotationQuery`]'s budgeted entry
    /// points: [`QueryKind::Nearest`] is k-NN at `k = 1` (so the
    /// answer is a zero-or-one element vector — empty only when an
    /// exhausted budget tripped before any item was admitted), and
    /// results are bit-identical to calling the engine directly.
    /// Engine construction costs the paper's `O(n²)` startup per query
    /// and is not counted in `counter`, matching direct engine use.
    pub fn execute<O: SearchObserver, B: BudgetHook>(
        &self,
        spec: &QuerySpec,
        counter: &mut StepCounter,
        observer: &mut O,
        budget: &mut B,
        cache: Option<&mut BatchPaaCache>,
    ) -> Result<BudgetOutcome<Vec<Neighbor>>, SearchError> {
        let engine = RotationQuery::with_measure(&spec.series, spec.invariance, spec.measure)
            .map_err(|e| SearchError::invalid_param("query", e.to_string()))?;
        let db = self.database.as_slice();
        let k = match spec.kind {
            QueryKind::Nearest => 1,
            QueryKind::KNearest(k) => k,
            QueryKind::Range(radius) => {
                return match cache {
                    Some(c) => {
                        engine.range_budgeted_cached(db, radius, counter, observer, budget, c)
                    }
                    None => engine.range_budgeted(db, radius, counter, observer, budget),
                };
            }
        };
        match cache {
            Some(c) => engine.k_nearest_budgeted_cached(db, k, counter, observer, budget, c),
            None => engine.k_nearest_budgeted(db, k, counter, observer, budget),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_obs::{NoBudget, NoopObserver, QueryBudget};
    use rotind_ts::rotate::rotated;

    fn signal(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.31 + phase).sin() + 0.4 * (i as f64 * 0.83 + phase).cos())
            .collect()
    }

    fn database(m: usize, n: usize) -> Vec<Vec<f64>> {
        (0..m).map(|k| signal(n, 1.0 + k as f64 * 0.41)).collect()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            IndexSnapshot::new(vec![]).unwrap_err(),
            SearchError::EmptyDatabase
        );
        let ragged = vec![vec![0.0; 8], vec![0.0; 9]];
        assert!(matches!(
            IndexSnapshot::new(ragged).unwrap_err(),
            SearchError::LengthMismatch {
                index: 1,
                expected: 8,
                actual: 9
            }
        ));
        let snap = IndexSnapshot::new(database(5, 16)).unwrap();
        assert_eq!((snap.len(), snap.series_len()), (5, 16));
        assert!(!snap.is_empty());
    }

    #[test]
    fn execute_matches_direct_engine_calls() {
        let n = 32;
        let mut db = database(20, n);
        let query = signal(n, 0.12);
        db[7] = rotated(&query, 11);
        let snap = IndexSnapshot::new(db.clone()).unwrap();
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let radius = engine.nearest(&db).unwrap().distance + 1.0;

        for kind in [
            QueryKind::Nearest,
            QueryKind::KNearest(4),
            QueryKind::Range(radius),
        ] {
            let spec = QuerySpec {
                series: query.clone(),
                invariance: Invariance::Rotation,
                measure: Measure::Euclidean,
                kind,
            };
            let got = snap
                .execute(
                    &spec,
                    &mut StepCounter::new(),
                    &mut NoopObserver,
                    &mut NoBudget,
                    None,
                )
                .unwrap()
                .into_inner();
            let expected = match kind {
                QueryKind::Nearest => vec![engine.nearest(&db).unwrap()],
                QueryKind::KNearest(k) => engine.k_nearest(&db, k).unwrap(),
                QueryKind::Range(r) => engine.range(&db, r).unwrap(),
            };
            assert_eq!(got, expected, "{kind:?}");
        }
    }

    #[test]
    fn cached_execute_is_result_identical_and_amortizes_steps() {
        let n = 32;
        let db = database(40, n);
        let snap = IndexSnapshot::new(db).unwrap();
        let mut cache = snap.paa_cache();
        let specs: Vec<QuerySpec> = (0..4)
            .map(|i| QuerySpec {
                series: signal(n, 0.1 + i as f64 * 0.2),
                invariance: Invariance::Rotation,
                measure: Measure::Euclidean,
                kind: QueryKind::KNearest(3),
            })
            .collect();
        let mut cached_steps = 0u64;
        let mut fresh_steps = 0u64;
        for spec in &specs {
            let mut c1 = StepCounter::new();
            let cached = snap
                .execute(
                    spec,
                    &mut c1,
                    &mut NoopObserver,
                    &mut NoBudget,
                    Some(&mut cache),
                )
                .unwrap()
                .into_inner();
            let mut c2 = StepCounter::new();
            let fresh = snap
                .execute(spec, &mut c2, &mut NoopObserver, &mut NoBudget, None)
                .unwrap()
                .into_inner();
            assert_eq!(cached, fresh, "cache must never change results");
            cached_steps += c1.steps();
            fresh_steps += c2.steps();
        }
        assert!(
            cached_steps <= fresh_steps,
            "cached {cached_steps} !<= fresh {fresh_steps}"
        );
        if cache.reused() > 0 {
            assert!(
                cached_steps < fresh_steps,
                "reuse must save the recharged projections"
            );
        }
    }

    #[test]
    fn execute_rejects_mismatched_cache_dims() {
        let snap = IndexSnapshot::new(database(5, 16)).unwrap();
        let mut wrong = BatchPaaCache::new(snap.len(), CascadeConfig::from_env().dims + 1);
        let spec = QuerySpec {
            series: signal(16, 0.0),
            invariance: Invariance::Rotation,
            measure: Measure::Euclidean,
            kind: QueryKind::Nearest,
        };
        let err = snap
            .execute(
                &spec,
                &mut StepCounter::new(),
                &mut NoopObserver,
                &mut NoBudget,
                Some(&mut wrong),
            )
            .unwrap_err();
        assert!(matches!(err, SearchError::InvalidParam { .. }));
    }

    #[test]
    fn execute_surfaces_budget_exhaustion() {
        let snap = IndexSnapshot::new(database(30, 24)).unwrap();
        let spec = QuerySpec {
            series: signal(24, 0.2),
            invariance: Invariance::Rotation,
            measure: Measure::Euclidean,
            kind: QueryKind::Nearest,
        };
        let mut budget = QueryBudget::max_steps(1);
        let outcome = snap
            .execute(
                &spec,
                &mut StepCounter::new(),
                &mut NoopObserver,
                &mut budget,
                None,
            )
            .unwrap();
        assert!(!outcome.is_complete(), "a 1-step budget must trip");
    }

    #[test]
    fn bad_query_series_is_a_typed_error() {
        let snap = IndexSnapshot::new(database(5, 16)).unwrap();
        let spec = QuerySpec {
            series: signal(8, 0.0), // wrong length vs snapshot
            invariance: Invariance::Rotation,
            measure: Measure::Euclidean,
            kind: QueryKind::Nearest,
        };
        assert!(snap
            .execute(
                &spec,
                &mut StepCounter::new(),
                &mut NoopObserver,
                &mut NoBudget,
                None,
            )
            .is_err());
    }
}
