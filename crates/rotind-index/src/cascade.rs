//! The tiered admissible-bound cascade run per (candidate, wedge) pair.
//!
//! Each tier is a cheaper-but-looser admissible lower bound tried before
//! the next, in strictly increasing cost order; a tier that pushes the
//! bound above the current best-so-far dismisses the whole wedge and no
//! later tier runs:
//!
//! | tier | bound | cost per wedge | tightness |
//! |------|-------|----------------|-----------|
//! | 1    | `lb_kim` (endpoints only)          | `O(1)`          | loosest |
//! | 2    | reduced-space PAA envelope bound   | `O(D)` (+ lazy `O(n)` per candidate) | looser than LB_Keogh |
//! | 3    | LB_Keogh, reordered early abandon  | `O(n)` worst    | the paper's bound |
//! | 4    | LB_Improved second pass (DTW only) | `O(n)`          | tightest |
//!
//! Every tier prunes with a *strict* comparison against an admissible
//! bound, so the cascade can neither exclude a rotation at exactly the
//! admitted radius nor change any exact distance the scan computes — the
//! H-Merge outcome stays bit-identical to the single-bound scan (see
//! `tests/cascade.rs`). The tier list is configurable per engine via
//! [`CascadeConfig`] and, for the CI ablation matrix, via the
//! `ROTIND_CASCADE` environment variable.

use crate::reduced::{Paa, PaaEnvelope};
use rotind_envelope::lb_keogh::ImprovedScratch;
use rotind_envelope::WedgeTree;
use rotind_ts::StepCounter;

/// Default reduced-space dimensionality for tier 2 (segments per item).
/// Small on purpose: the tier has to amortise `D` steps per tested wedge
/// plus a lazy `n`-step projection per candidate.
pub const DEFAULT_DIMS: usize = 8;

/// Default cardinality gate for tier 1 (see [`CascadeConfig`]).
pub const DEFAULT_KIM_MIN_CARDINALITY: usize = 8;

/// Default cardinality gate for tier 2 (see [`CascadeConfig`]).
pub const DEFAULT_REDUCED_MIN_CARDINALITY: usize = 32;

/// Default cardinality gate for tier 4 (see [`CascadeConfig`]).
pub const DEFAULT_IMPROVED_MAX_CARDINALITY: usize = 1;

/// Default tightness gate for tier 4 (see [`CascadeConfig`]).
pub const DEFAULT_IMPROVED_MIN_RATIO: f64 = 0.5;

/// Which tiers of the bound cascade run, and where.
///
/// The exactness of the scan never depends on this configuration — every
/// tier is individually admissible — only the amount of work does. The
/// `*_cardinality` gates encode the cost model measured by the
/// `cascade` ablation bench: a cheap tier is only worth running where
/// the tier below it would be expensive. Tier 1's two endpoint terms
/// are dominated by reordered LB_Keogh's first two (contribution-sorted)
/// terms, so it earns its keep only on fat wedges where an admit is
/// costly anyway; tier 2 must amortise a lazy `O(n)` candidate
/// projection, so it is restricted to the fattest wedges; tier 4's
/// second pass buys the most where a prune replaces an exact DTW
/// evaluation, i.e. at (near-)singleton wedges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeConfig {
    /// Tier 1: the `O(1)` endpoint (LB_Kim-style) bound.
    pub kim: bool,
    /// Tier 2: the reduced-space PAA envelope bound.
    pub reduced: bool,
    /// Tier 3: full LB_Keogh with early abandoning.
    pub keogh: bool,
    /// Tier 4: the LB_Improved second pass (effective only under DTW,
    /// where the band is positive; at band 0 the second pass is
    /// identically zero).
    pub improved: bool,
    /// Accumulate tier 3 in the per-wedge contribution order instead of
    /// natural position order (prune-only wedges; Euclidean singleton
    /// leaves always use natural order because their sum *is* the exact
    /// distance).
    pub reorder: bool,
    /// Reduced-space dimensionality for tier 2.
    pub dims: usize,
    /// Tier 1 runs only on wedges covering at least this many rotations.
    pub kim_min_cardinality: usize,
    /// Tier 2 runs only on wedges covering at least this many rotations.
    pub reduced_min_cardinality: usize,
    /// Tier 4 runs only on wedges covering at most this many rotations.
    pub improved_max_cardinality: usize,
    /// Tier 4 runs only when the tier-3 bound is at least this fraction
    /// of the current best-so-far — when the first pass is already
    /// close, the second pass has a realistic chance of crossing it;
    /// when it is far below, the `O(n)` second pass is near-certain
    /// wasted work. (With an infinite best-so-far the tier never runs:
    /// no finite bound can dismiss against infinity.)
    pub improved_min_ratio: f64,
}

impl CascadeConfig {
    /// Every tier on, under the measured default gates — the engine
    /// default.
    pub fn all() -> Self {
        CascadeConfig {
            kim: true,
            reduced: true,
            keogh: true,
            improved: true,
            reorder: true,
            dims: DEFAULT_DIMS,
            kim_min_cardinality: DEFAULT_KIM_MIN_CARDINALITY,
            reduced_min_cardinality: DEFAULT_REDUCED_MIN_CARDINALITY,
            improved_max_cardinality: DEFAULT_IMPROVED_MAX_CARDINALITY,
            improved_min_ratio: DEFAULT_IMPROVED_MIN_RATIO,
        }
    }

    /// The pre-cascade engine: natural-order LB_Keogh and nothing else.
    /// [`crate::hmerge::h_merge_observed`] runs under this configuration,
    /// reproducing the historical scan step-for-step.
    pub fn legacy() -> Self {
        CascadeConfig {
            kim: false,
            reduced: false,
            keogh: false,
            improved: false,
            reorder: false,
            dims: DEFAULT_DIMS,
            kim_min_cardinality: 0,
            reduced_min_cardinality: 0,
            improved_max_cardinality: usize::MAX,
            improved_min_ratio: 0.0,
        }
        .with_keogh()
    }

    fn with_keogh(mut self) -> Self {
        self.keogh = true;
        self
    }

    /// Parse a `ROTIND_CASCADE` value: a single-tier name
    /// (`kim`/`reduced`/`keogh`/`improved`) or `all`. Single-tier
    /// configurations run their tier on *every* wedge (no cardinality
    /// gates) so the CI exactness matrix exercises each tier in
    /// isolation; `keogh` selects the reordered tier-3 scan, and
    /// `improved` runs LB_Improved whole (its first pass is LB_Keogh,
    /// attributed to the Improved tier).
    pub fn parse(s: &str) -> Option<Self> {
        let off = CascadeConfig {
            kim: false,
            reduced: false,
            keogh: false,
            improved: false,
            reorder: false,
            dims: DEFAULT_DIMS,
            kim_min_cardinality: 0,
            reduced_min_cardinality: 0,
            improved_max_cardinality: usize::MAX,
            improved_min_ratio: 0.0,
        };
        match s {
            "kim" => Some(CascadeConfig { kim: true, ..off }),
            "reduced" => Some(CascadeConfig {
                reduced: true,
                ..off
            }),
            "keogh" => Some(CascadeConfig {
                keogh: true,
                reorder: true,
                ..off
            }),
            "improved" => Some(CascadeConfig {
                improved: true,
                ..off
            }),
            "all" => Some(Self::all()),
            _ => None,
        }
    }

    /// Configuration from the `ROTIND_CASCADE` environment variable;
    /// unset or unrecognised values mean [`CascadeConfig::all`].
    pub fn from_env() -> Self {
        std::env::var("ROTIND_CASCADE")
            .ok()
            .and_then(|s| Self::parse(s.trim()))
            .unwrap_or_else(Self::all)
    }
}

impl Default for CascadeConfig {
    fn default() -> Self {
        Self::all()
    }
}

/// A [`CascadeConfig`] plus the per-tree data tier 2 needs: one reduced
/// envelope per wedge-tree node, projected from the node's *lower-bound*
/// wedge (widened by the DTW band) so the PAA bound stays admissible for
/// DTW exactly as it is for Euclidean.
#[derive(Debug, Clone)]
pub struct BoundCascade {
    config: CascadeConfig,
    paa: Option<Vec<PaaEnvelope>>,
}

impl BoundCascade {
    /// Precompute tier-2 envelopes for every node of `tree` (skipped
    /// entirely when the reduced tier is off).
    pub fn build(tree: &WedgeTree, config: CascadeConfig) -> Self {
        let paa = config.reduced.then(|| {
            (0..tree.dendrogram().num_nodes())
                .map(|node| PaaEnvelope::of_wedge(tree.lb_wedge(node), config.dims))
                .collect()
        });
        BoundCascade { config, paa }
    }

    /// The tree-independent legacy cascade (no tier-2 data to build).
    pub fn legacy() -> Self {
        BoundCascade {
            config: CascadeConfig::legacy(),
            paa: None,
        }
    }

    /// The active tier configuration.
    pub fn config(&self) -> CascadeConfig {
        self.config
    }

    /// Tier-2 envelope for `node`, when the reduced tier is on.
    // lint: panic-exempt(paa, when present, holds one envelope per tree node, and callers pass ids of that tree)
    pub(crate) fn paa_envelope(&self, node: usize) -> Option<&PaaEnvelope> {
        // Invariant: `paa` (when present) holds one envelope per tree
        // node and callers pass node ids of the same tree.
        // rotind-lint: allow(no-index)
        self.paa.as_deref().map(|v| &v[node])
    }
}

/// Per-candidate lazy state for one H-Merge call: the candidate's PAA
/// projection is only computed (and charged, `n` steps) if some wedge
/// actually reaches tier 2, plus the reusable projection/sliding-window
/// buffers the tier-4 second pass (and the LCSS envelope bound) fill per
/// node — owned here so the scan allocates nothing per wedge.
pub(crate) struct CandidateCtx {
    paa: Option<Paa>,
    /// True when the projection arrived pre-built from a cache (used
    /// only for the cache's built/reused accounting).
    seeded: bool,
    /// Scratch for `lb_improved_second_pass` / the widened LCSS bound.
    pub(crate) improved: ImprovedScratch,
}

impl CandidateCtx {
    pub(crate) fn new() -> Self {
        CandidateCtx {
            paa: None,
            seeded: false,
            improved: ImprovedScratch::new(),
        }
    }

    /// A context pre-seeded with an already-built projection (or
    /// explicitly empty) — how [`BatchPaaCache`] hands a candidate its
    /// cached state.
    pub(crate) fn with(paa: Option<Paa>) -> Self {
        let seeded = paa.is_some();
        CandidateCtx {
            paa,
            seeded,
            improved: ImprovedScratch::new(),
        }
    }

    /// Surrender the (possibly still unbuilt) projection, so a cache
    /// can keep it for the next query over the same candidate. The
    /// flag reports whether the context was seeded at construction.
    pub(crate) fn into_paa(self) -> (Option<Paa>, bool) {
        (self.paa, self.seeded)
    }

    /// The candidate's PAA projection, built on first use.
    // lint: panic-exempt(the expect follows the branch that builds the projection, so it is always present)
    pub(crate) fn paa(
        &mut self,
        candidate: &[f64],
        dims: usize,
        counter: &mut StepCounter,
    ) -> &Paa {
        if self.paa.is_none() {
            // One pass over the candidate to form segment means.
            counter.add(candidate.len() as u64);
            self.paa = Some(Paa::of(candidate, dims));
        }
        // rotind-lint: allow(no-panic)
        self.paa.as_ref().expect("projection was just built")
    }
}

/// A per-database cache of candidate PAA projections, shared across the
/// queries of a batch (or the lifetime of a serve worker).
///
/// Tier 2 charges a lazy `O(n)` projection per candidate per query —
/// but `Paa::of(candidate, dims)` is *query-independent*, so a server
/// answering many queries over one immutable snapshot recomputes the
/// identical projection over and over. This cache moves each
/// candidate's slot into the scan (via [`CandidateCtx`]) and takes it
/// back afterwards, so the projection is built (and charged) at most
/// once per cache instead of once per query. Search results are
/// unchanged — the cached value is bit-identical to a fresh build —
/// only later queries' step counts drop by the amortized projections.
///
/// The cache is single-threaded by design (`&mut` access, no locks):
/// a serve worker owns one and reuses it across its whole job stream.
#[derive(Debug, Clone)]
pub struct BatchPaaCache {
    dims: usize,
    slots: Vec<Option<Paa>>,
    reused: u64,
    built: u64,
}

impl BatchPaaCache {
    /// An empty cache for a database of `db_len` items, projecting at
    /// `dims` segments (must match the engine's
    /// [`CascadeConfig::dims`]; the cached entry points reject a
    /// mismatch).
    pub fn new(db_len: usize, dims: usize) -> Self {
        BatchPaaCache {
            dims,
            slots: vec![None; db_len],
            reused: 0,
            built: 0,
        }
    }

    /// The reduced-space dimensionality this cache projects at.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of database slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the cache covers no candidates.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// How many scans found their candidate's projection already built.
    pub fn reused(&self) -> u64 {
        self.reused
    }

    /// How many projections have been built into the cache.
    pub fn built(&self) -> u64 {
        self.built
    }

    /// Move candidate `index`'s slot into a scan context. Out-of-range
    /// indices get an empty context (the scan then behaves exactly as
    /// uncached).
    pub(crate) fn take(&mut self, index: usize) -> CandidateCtx {
        let slot = self.slots.get_mut(index).and_then(Option::take);
        if slot.is_some() {
            self.reused = self.reused.saturating_add(1);
        }
        CandidateCtx::with(slot)
    }

    /// Return candidate `index`'s (possibly now-built) state to the
    /// cache after a scan.
    pub(crate) fn put(&mut self, index: usize, ctx: CandidateCtx) {
        if let Some(slot) = self.slots.get_mut(index) {
            let (paa, seeded) = ctx.into_paa();
            if !seeded && paa.is_some() {
                self.built = self.built.saturating_add(1);
            }
            *slot = paa;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_ts::rotate::RotationMatrix;

    #[test]
    fn parse_recognises_every_ci_value_and_rejects_garbage() {
        for name in ["kim", "reduced", "keogh", "improved", "all"] {
            let c = CascadeConfig::parse(name).unwrap_or_else(|| panic!("{name} must parse"));
            let tiers = [c.kim, c.reduced, c.keogh, c.improved];
            if name == "all" {
                assert_eq!(c, CascadeConfig::all());
            } else {
                assert_eq!(tiers.iter().filter(|&&t| t).count(), 1, "{name}");
            }
        }
        assert_eq!(CascadeConfig::parse(""), None);
        assert_eq!(CascadeConfig::parse("keogh,kim"), None);
        assert_eq!(CascadeConfig::parse("ALL"), None);
    }

    #[test]
    fn legacy_is_natural_order_keogh_only() {
        let c = CascadeConfig::legacy();
        assert!(c.keogh && !c.kim && !c.reduced && !c.improved && !c.reorder);
    }

    #[test]
    fn build_projects_every_node_only_when_reduced_is_on() {
        let series: Vec<f64> = (0..24).map(|i| (i as f64 * 0.4).sin()).collect();
        let tree = WedgeTree::new(RotationMatrix::full(&series).unwrap(), 0);
        let with = BoundCascade::build(&tree, CascadeConfig::all());
        for node in 0..tree.dendrogram().num_nodes() {
            assert!(with.paa_envelope(node).is_some(), "node {node}");
        }
        let without = BoundCascade::build(&tree, CascadeConfig::legacy());
        assert!(without.paa_envelope(0).is_none());
        assert!(BoundCascade::legacy().paa_envelope(0).is_none());
    }

    #[test]
    fn batch_cache_amortizes_projection_across_queries() {
        let series: Vec<f64> = (0..32).map(|i| (i as f64 * 0.2).cos()).collect();
        let mut cache = BatchPaaCache::new(4, DEFAULT_DIMS);
        // Query 1 over candidate 2: builds and charges the projection.
        let mut ctx = cache.take(2);
        let mut counter = StepCounter::new();
        let first = ctx.paa(&series, DEFAULT_DIMS, &mut counter).clone();
        cache.put(2, ctx);
        assert_eq!(counter.steps(), 32);
        assert_eq!((cache.built(), cache.reused()), (1, 0));
        // Query 2 over the same candidate: free and bit-identical.
        let mut ctx = cache.take(2);
        let mut counter = StepCounter::new();
        let second = ctx.paa(&series, DEFAULT_DIMS, &mut counter).clone();
        cache.put(2, ctx);
        assert_eq!(counter.steps(), 0, "cached projection charges nothing");
        assert_eq!(first, second);
        assert_eq!((cache.built(), cache.reused()), (1, 1));
        // A scan that never reaches tier 2 stores nothing.
        let ctx = cache.take(3);
        cache.put(3, ctx);
        assert_eq!(cache.built(), 1);
        // Out-of-range indices degrade to an uncached scan.
        let ctx = cache.take(99);
        cache.put(99, ctx);
        assert_eq!((cache.len(), cache.dims()), (4, DEFAULT_DIMS));
    }

    #[test]
    fn candidate_ctx_builds_lazily_and_charges_once() {
        let series: Vec<f64> = (0..32).map(|i| (i as f64 * 0.2).cos()).collect();
        let mut ctx = CandidateCtx::new();
        let mut counter = StepCounter::new();
        let first = ctx.paa(&series, DEFAULT_DIMS, &mut counter).clone();
        assert_eq!(counter.steps(), 32, "projection charges one pass");
        let again = ctx.paa(&series, DEFAULT_DIMS, &mut counter).clone();
        assert_eq!(counter.steps(), 32, "second access is free");
        assert_eq!(first, again);
        assert_eq!(first, Paa::of(&series, DEFAULT_DIMS));
    }
}
