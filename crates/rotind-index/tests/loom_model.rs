//! Concurrency model tests (ISSUE 7 / DESIGN.md §14), compiled only
//! under `--features loom-tests`:
//!
//!     cargo test -p rotind-index --features loom-tests --test loom_model
//!
//! With the feature on, [`SharedRadius`] and [`SharedBudget`] are built
//! on the vendored loom atomics, so inside a `loom::model` closure
//! every atomic access is a scheduling point and the explorer
//! enumerates thread interleavings exhaustively. Each test asserts a
//! protocol invariant in *every* schedule:
//!
//! * the CAS-min best-so-far loop never loses an update and never
//!   loosens (monotonicity is what makes the parallel scan's dismissals
//!   admissible — DESIGN.md §10 step 1);
//! * `SharedBudget` charging never loses a step delta, and a trip seen
//!   by one worker is seen by all workers afterwards (stickiness);
//! * a deliberately broken load-then-store protocol IS caught by the
//!   explorer (`#[should_panic]` negative control), so a green run
//!   means the schedules were actually explored, not vacuously passed.
#![cfg(feature = "loom-tests")]

use loom::sync::Arc;
use loom::thread;
use rotind_index::radius::SharedRadius;
use rotind_obs::{BudgetHook, QueryBudget, SharedBudget};

/// Every interleaving of two workers CAS-lowering the shared radius
/// ends at the global minimum: no lost update, no loosening.
#[test]
fn cas_min_best_so_far_never_loses_an_update() {
    loom::model(|| {
        let radius = Arc::new(SharedRadius::new(f64::INFINITY));
        let handles: Vec<_> = [5.0f64, 3.0f64]
            .into_iter()
            .map(|achieved| {
                let radius = Arc::clone(&radius);
                thread::spawn(move || {
                    // What a worker does at an admission: read the
                    // current best, then CAS-tighten to its achieved
                    // exact distance.
                    let before = radius.get();
                    radius.update_min(achieved);
                    // Stale-read check: the radius a worker observes is
                    // never tighter than what has been achieved so far,
                    // and never loosens after its own update.
                    assert!(radius.get() <= before, "radius loosened");
                    assert!(radius.get() <= achieved, "own update lost");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            radius.get(),
            3.0,
            "final radius must be the minimum across workers"
        );
    });
}

/// A looser result arriving late must not overwrite a tighter one, in
/// any schedule — the monotonicity half of the DESIGN.md §10 argument.
#[test]
fn cas_min_is_monotone_under_any_interleaving() {
    loom::model(|| {
        let radius = Arc::new(SharedRadius::new(10.0));
        let tight = Arc::clone(&radius);
        let t = thread::spawn(move || tight.update_min(2.0));
        // The main thread races a looser update against the tighter one.
        radius.update_min(7.0);
        t.join().unwrap();
        assert_eq!(radius.get(), 2.0, "loose update clobbered a tight one");
    });
}

/// Two workers charging step deltas into one pool: the pool total is
/// exactly the sum in every schedule (the compare-exchange add loses
/// nothing), and the cap trips at most one admission late.
#[test]
fn shared_budget_spend_never_loses_a_delta() {
    loom::model(|| {
        let pool = Arc::new(SharedBudget::from_budget(&QueryBudget::max_steps(1000)));
        let handles: Vec<_> = [40u64, 60u64]
            .into_iter()
            .map(|steps| {
                let pool = Arc::clone(&pool);
                thread::spawn(move || {
                    let mut hook = pool.hook();
                    assert!(hook.check(steps), "well under the cap, must not trip");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.spent(), 100, "a charge delta was lost");
        assert_eq!(pool.trip_reason(), None);
    });
}

/// Once any worker trips the pool, every worker's next check fails —
/// the trip flag is sticky across every interleaving.
#[test]
fn shared_budget_trip_is_sticky_across_workers() {
    loom::model(|| {
        let pool = Arc::new(SharedBudget::from_budget(&QueryBudget::max_steps(50)));
        let worker = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || {
                let mut hook = pool.hook();
                hook.check(60) // 60 ≥ 50: this charge trips the pool
            })
        };
        let tripped_there = worker.join().unwrap();
        assert!(!tripped_there, "over-cap charge must trip its own worker");
        let mut hook = pool.hook();
        assert!(
            !hook.check(0),
            "trip must be visible to every other worker immediately"
        );
        assert!(pool.spent() >= 50);
    });
}

/// Negative control: replace the CAS retry loop with a stale
/// load-then-store and the explorer must find the lost-update
/// interleaving. This is what proves the green tests above actually
/// explored the schedule space.
#[test]
#[should_panic(expected = "lost an update")]
fn racy_store_min_is_rejected_by_the_model() {
    use loom::sync::atomic::{AtomicU64, Ordering};
    loom::model(|| {
        let radius = Arc::new(AtomicU64::new(f64::INFINITY.to_bits()));
        let handles: Vec<_> = [5.0f64, 3.0f64]
            .into_iter()
            .map(|achieved| {
                let radius = Arc::clone(&radius);
                thread::spawn(move || {
                    // BROKEN on purpose: decide on a stale load, then
                    // store unconditionally — exactly the protocol the
                    // shared-atomic-protocol lint forbids.
                    let current = f64::from_bits(radius.load(Ordering::SeqCst));
                    if achieved < current {
                        radius.store(achieved.to_bits(), Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let got = f64::from_bits(radius.load(Ordering::SeqCst));
        assert_eq!(got, 3.0, "store/store race lost an update");
    });
}
