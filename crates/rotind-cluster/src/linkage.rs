//! Nearest-neighbour-chain agglomerative clustering.
//!
//! The NN-chain algorithm produces the exact agglomerative clustering for
//! every *reducible* linkage — single, complete, group-average and Ward —
//! in `O(m²)` time and memory, without the `O(m³)` cost of the naive
//! method. The paper's wedge sets are derived from group-average
//! dendrograms (Figure 9); the other linkages are provided for the
//! ablation benches.

use crate::dendrogram::{Dendrogram, RawMerge};
use crate::matrix::DistanceMatrix;

/// Cluster-to-cluster distance update rule (Lance–Williams family).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance.
    Single,
    /// Maximum pairwise distance. A complete-linkage cluster's diameter is
    /// exactly the paper's wedge-area proxy ("the area of a wedge is
    /// simply the maximum Euclidean distance between any sequences
    /// contained therein").
    Complete,
    /// Unweighted group average (UPGMA) — the linkage used throughout the
    /// paper's figures.
    Average,
    /// Ward's minimum-variance criterion (expects Euclidean distances).
    Ward,
}

impl Linkage {
    /// Lance–Williams distance from the merge of clusters `a` (size
    /// `na`) and `b` (size `nb`) to another cluster `k` (size `nk`),
    /// given the pre-merge distances.
    fn update(self, dak: f64, dbk: f64, dab: f64, na: f64, nb: f64, nk: f64) -> f64 {
        match self {
            Linkage::Single => dak.min(dbk),
            Linkage::Complete => dak.max(dbk),
            Linkage::Average => (na * dak + nb * dbk) / (na + nb),
            Linkage::Ward => {
                let t = na + nb + nk;
                (((na + nk) * dak * dak + (nb + nk) * dbk * dbk - nk * dab * dab) / t)
                    .max(0.0)
                    .sqrt()
            }
        }
    }
}

/// Agglomerate `matrix.len()` items under `linkage`, returning the full
/// dendrogram.
///
/// # Panics
///
/// Panics for an empty matrix (there is nothing to cluster).
// lint: panic-exempt(documented precondition: the index builder always clusters a non-empty rotation matrix)
pub fn cluster(matrix: &DistanceMatrix, linkage: Linkage) -> Dendrogram {
    let m = matrix.len();
    assert!(m > 0, "cluster: empty distance matrix");
    if m == 1 {
        return Dendrogram::from_raw_merges(1, Vec::new());
    }

    // Working copy of the distance matrix, updated in place as clusters
    // merge; `size[i]` is the cardinality of the cluster currently
    // represented by slot i; `active[i]` marks live slots.
    let mut dist = matrix.clone();
    let mut size = vec![1usize; m];
    let mut active = vec![true; m];
    let mut merges: Vec<RawMerge> = Vec::with_capacity(m - 1);

    // NN-chain stack.
    let mut chain: Vec<usize> = Vec::with_capacity(m);

    for _ in 0..m - 1 {
        if chain.is_empty() {
            let start = active
                .iter()
                .position(|&a| a)
                .expect("at least two active clusters remain");
            chain.push(start);
        }
        // Grow the chain until it ends in a pair of reciprocal nearest
        // neighbours.
        loop {
            let top = *chain.last().expect("chain is non-empty");
            let mut nearest = usize::MAX;
            let mut nearest_d = f64::INFINITY;
            // Prefer the previous chain element on ties so reciprocity is
            // detected deterministically.
            let prev = if chain.len() >= 2 {
                Some(chain[chain.len() - 2])
            } else {
                None
            };
            if let Some(p) = prev {
                nearest = p;
                nearest_d = dist.get(top, p);
            }
            #[allow(clippy::needless_range_loop)] // index used across multiple slices
            for k in 0..m {
                if k == top || !active[k] || Some(k) == prev {
                    continue;
                }
                let d = dist.get(top, k);
                if d < nearest_d {
                    nearest_d = d;
                    nearest = k;
                }
            }
            debug_assert_ne!(nearest, usize::MAX);
            if Some(nearest) == prev {
                // Reciprocal nearest neighbours found: merge `top` and
                // `nearest`.
                chain.pop();
                chain.pop();
                let (a, b) = (top, nearest);
                merges.push(RawMerge {
                    a,
                    b,
                    height: nearest_d,
                });
                // Merge b into a's slot.
                let (na, nb) = (size[a] as f64, size[b] as f64);
                let dab = dist.get(a, b);
                for k in 0..m {
                    if k == a || k == b || !active[k] {
                        continue;
                    }
                    let updated =
                        linkage.update(dist.get(a, k), dist.get(b, k), dab, na, nb, size[k] as f64);
                    dist.set(a, k, updated);
                }
                size[a] += size[b];
                active[b] = false;
                break;
            }
            chain.push(nearest);
        }
    }

    Dendrogram::from_raw_merges(m, merges)
}

/// Convenience: cluster raw vectors under the Euclidean metric.
///
/// ```
/// use rotind_cluster::linkage::{cluster_series, Linkage};
/// let series = vec![vec![0.0], vec![0.1], vec![9.0], vec![9.1]];
/// let dendrogram = cluster_series(&series, Linkage::Average);
/// let mut cut = dendrogram.cut(2);
/// for group in &mut cut { group.sort_unstable(); }
/// cut.sort();
/// assert_eq!(cut, vec![vec![0, 1], vec![2, 3]]);
/// ```
// lint: panic-exempt(DistanceMatrix::from_fn yields i and j below series.len() by contract)
pub fn cluster_series(series: &[Vec<f64>], linkage: Linkage) -> Dendrogram {
    let matrix = DistanceMatrix::from_fn(series.len(), |i, j| {
        series[i]
            .iter()
            .zip(&series[j])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    });
    cluster(&matrix, linkage)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight groups far apart: every linkage must split them at K=2.
    fn two_blobs() -> DistanceMatrix {
        let points: &[f64] = &[0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        DistanceMatrix::from_fn(points.len(), |i, j| (points[i] - points[j]).abs())
    }

    #[test]
    fn separates_obvious_blobs_under_every_linkage() {
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let dend = cluster(&two_blobs(), linkage);
            let mut cut = dend.cut(2);
            for c in &mut cut {
                c.sort_unstable();
            }
            cut.sort();
            assert_eq!(cut, vec![vec![0, 1, 2], vec![3, 4, 5]], "{linkage:?}");
        }
    }

    #[test]
    fn merge_count_and_root() {
        let dend = cluster(&two_blobs(), Linkage::Average);
        assert_eq!(dend.num_leaves(), 6);
        assert_eq!(dend.merges().len(), 5);
        let mut root_members = dend.members(dend.root().expect("root exists"));
        root_members.sort_unstable();
        assert_eq!(root_members, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn single_linkage_matches_naive_on_line() {
        // On collinear points single linkage merges nearest gaps first.
        let points: &[f64] = &[0.0, 1.0, 3.0, 6.0];
        let m = DistanceMatrix::from_fn(4, |i, j| (points[i] - points[j]).abs());
        let dend = cluster(&m, Linkage::Single);
        let heights: Vec<f64> = dend.merges().iter().map(|mg| mg.height).collect();
        assert_eq!(heights, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn complete_linkage_heights_are_diameters() {
        let points: &[f64] = &[0.0, 1.0, 10.0];
        let m = DistanceMatrix::from_fn(3, |i, j| (points[i] - points[j]).abs());
        let dend = cluster(&m, Linkage::Complete);
        assert_eq!(dend.merges()[0].height, 1.0);
        assert_eq!(dend.merges()[1].height, 10.0);
    }

    #[test]
    fn average_linkage_height() {
        let points: &[f64] = &[0.0, 2.0, 9.0];
        let m = DistanceMatrix::from_fn(3, |i, j| (points[i] - points[j]).abs());
        let dend = cluster(&m, Linkage::Average);
        assert_eq!(dend.merges()[0].height, 2.0);
        // d({0,1}, {2}) = (9 + 7) / 2 = 8.
        assert_eq!(dend.merges()[1].height, 8.0);
    }

    #[test]
    fn ward_prefers_balanced_merges() {
        // Ward should merge the two singletons at distance 1 before
        // attaching anything to the big far cluster.
        let points: &[f64] = &[0.0, 1.0, 50.0, 50.5, 51.0];
        let m = DistanceMatrix::from_fn(5, |i, j| (points[i] - points[j]).abs());
        let dend = cluster(&m, Linkage::Ward);
        let mut cut = dend.cut(2);
        for c in &mut cut {
            c.sort_unstable();
        }
        cut.sort();
        assert_eq!(cut, vec![vec![0, 1], vec![2, 3, 4]]);
    }

    #[test]
    fn singleton_input() {
        let dend = cluster(&DistanceMatrix::zeros(1), Linkage::Average);
        assert_eq!(dend.num_leaves(), 1);
        assert!(dend.merges().is_empty());
        assert_eq!(dend.cut(1), vec![vec![0]]);
    }

    #[test]
    fn cluster_series_euclidean() {
        let series = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
        ];
        let dend = cluster_series(&series, Linkage::Average);
        let mut cut = dend.cut(2);
        for c in &mut cut {
            c.sort_unstable();
        }
        cut.sort();
        assert_eq!(cut, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn ties_do_not_break_the_chain() {
        // All points equidistant: any dendrogram is valid, but the
        // algorithm must terminate with m−1 merges.
        let m = DistanceMatrix::from_fn(8, |_, _| 1.0);
        let dend = cluster(&m, Linkage::Average);
        assert_eq!(dend.merges().len(), 7);
        for k in 1..=8 {
            let cut = dend.cut(k);
            assert_eq!(cut.len(), k);
            let total: usize = cut.iter().map(Vec::len).sum();
            assert_eq!(total, 8);
        }
    }
}
