//! Condensed symmetric distance matrix.

/// A symmetric `m × m` distance matrix with a zero diagonal, stored
/// condensed (upper triangle only): `m·(m−1)/2` entries.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    m: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// An all-zero matrix over `m` items.
    pub fn zeros(m: usize) -> Self {
        let len = m * m.saturating_sub(1) / 2;
        DistanceMatrix {
            m,
            data: vec![0.0; len],
        }
    }

    /// Build by evaluating `f(i, j)` for every pair `i < j`.
    pub fn from_fn(m: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut matrix = Self::zeros(m);
        for i in 0..m {
            for j in i + 1..m {
                let v = f(i, j);
                matrix.set(i, j, v);
            }
        }
        matrix
    }

    /// Number of items `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.m
    }

    /// `true` when the matrix covers zero items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.m, "index ({i}, {j}) out of range");
        // Offset of row i in the condensed upper triangle.
        i * self.m - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Distance between items `i` and `j` (0 on the diagonal).
    #[inline]
    // lint: panic-exempt(index maps in-range ordered pairs into the triangular buffer; callers pass matrix-local ids)
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match i.cmp(&j) {
            std::cmp::Ordering::Equal => 0.0,
            std::cmp::Ordering::Less => self.data[self.index(i, j)],
            std::cmp::Ordering::Greater => self.data[self.index(j, i)],
        }
    }

    /// Set the distance between distinct items `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics when `i == j` or either index is out of range.
    #[inline]
    // lint: panic-exempt(documented precondition: builders write distinct in-range pairs only)
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i != j, "cannot set the diagonal");
        let idx = if i < j {
            self.index(i, j)
        } else {
            self.index(j, i)
        };
        self.data[idx] = value;
    }

    /// The largest off-diagonal entry (0.0 for m < 2).
    pub fn max_value(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_get_set() {
        let mut m = DistanceMatrix::zeros(4);
        m.set(1, 3, 2.5);
        m.set(3, 0, 1.5); // reversed order
        assert_eq!(m.get(1, 3), 2.5);
        assert_eq!(m.get(3, 1), 2.5);
        assert_eq!(m.get(0, 3), 1.5);
        assert_eq!(m.get(2, 2), 0.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn from_fn_fills_all_pairs() {
        let m = DistanceMatrix::from_fn(5, |i, j| (i * 10 + j) as f64);
        for i in 0..5 {
            for j in 0..5 {
                if i < j {
                    assert_eq!(m.get(i, j), (i * 10 + j) as f64);
                    assert_eq!(m.get(j, i), (i * 10 + j) as f64);
                }
            }
        }
        assert_eq!(m.max_value(), 34.0);
    }

    #[test]
    fn degenerate_sizes() {
        let m0 = DistanceMatrix::zeros(0);
        assert!(m0.is_empty());
        assert_eq!(m0.max_value(), 0.0);
        let m1 = DistanceMatrix::zeros(1);
        assert_eq!(m1.len(), 1);
        assert_eq!(m1.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn setting_diagonal_panics() {
        DistanceMatrix::zeros(3).set(1, 1, 1.0);
    }

    #[test]
    fn condensed_layout_is_dense() {
        // Every condensed slot is addressable exactly once.
        let m = 7;
        let mut dm = DistanceMatrix::zeros(m);
        let mut v = 1.0;
        for i in 0..m {
            for j in i + 1..m {
                dm.set(i, j, v);
                v += 1.0;
            }
        }
        let mut expect = 1.0;
        for i in 0..m {
            for j in i + 1..m {
                assert_eq!(dm.get(i, j), expect);
                expect += 1.0;
            }
        }
    }
}
