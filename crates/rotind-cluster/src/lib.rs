//! # rotind-cluster — hierarchical agglomerative clustering
//!
//! The wedge-producing subsystem of the paper (Section 4.1): *"This
//! motivates us to derive wedge sets based on the result of a hierarchal
//! clustering algorithm"*. A dendrogram over the `n` rotations of the
//! query series determines which rotations are merged into which wedges,
//! and cutting the dendrogram at `K` yields the wedge set `W` of size `K`
//! (Figures 9 and 10). The same machinery drives the clustering
//! "sanity check" experiments on skulls, reptiles and butterflies
//! (Figures 3, 16, 17 and 18).
//!
//! * [`matrix`] — condensed symmetric distance matrix;
//! * [`linkage`] — nearest-neighbour-chain agglomeration, `O(m²)`, exact
//!   for the reducible linkages (single, complete, group-average, Ward);
//! * [`dendrogram`] — the merge tree: member extraction, cut-to-K,
//!   ASCII rendering for the figure binaries;
//! * [`cophenetic`] — cophenetic distances and the correlation
//!   coefficient scoring dendrogram fidelity;
//! * [`rotation_shift`] — the `O(n²)` trick for clustering rotations:
//!   `ED(C_i, C_j)` depends only on `(j − i) mod n`, so the full matrix
//!   over all rotations needs only a handful of distance profiles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cophenetic;
pub mod dendrogram;
pub mod linkage;
pub mod matrix;
pub mod rotation_shift;

pub use dendrogram::Dendrogram;
pub use linkage::{cluster, Linkage};
pub use matrix::DistanceMatrix;
