//! `O(n²)` distance matrices over the rotations of a single series.
//!
//! Clustering the `n` rotations of a query naively costs `O(n³)` (`n²`
//! pairs × `O(n)` per distance) — far more than the `O(n²)` wedge-build
//! budget the paper claims (Section 5.3: *"we include a startup cost of
//! O(n²), which is the time required to build the wedges"*). The saving
//! comes from shift structure: for two rotations of the *same* base
//! series,
//!
//! ```text
//! ED(rot_i(x), rot_j(y)) = ED(x, rot_{(j−i) mod n}(y))
//! ```
//!
//! so the whole matrix is determined by a handful of length-`n` distance
//! *profiles* (plain↔plain, mirror↔mirror and plain↔mirror when mirror
//! rows are present), each computable in `O(n²)` total.

use crate::matrix::DistanceMatrix;
use rotind_ts::rotate::{mirror, RotationMatrix};

/// `profile[s] = ED(x, rot_s(y))` for all shifts `s`, `O(n²)`.
// lint: panic-exempt(rotations of one series always share its length; the assert documents the contract)
pub fn shift_profile(x: &[f64], y: &[f64]) -> Vec<f64> {
    let n = x.len();
    assert_eq!(n, y.len(), "shift_profile: length mismatch");
    (0..n)
        .map(|s| {
            let mut acc = 0.0;
            #[allow(clippy::needless_range_loop)] // index used across multiple slices
            for j in 0..n {
                let mut k = j + s;
                if k >= n {
                    k -= n;
                }
                let d = x[j] - y[k];
                acc += d * d;
            }
            acc.sqrt()
        })
        .collect()
}

/// Pairwise Euclidean distance matrix over all rows of a
/// [`RotationMatrix`], exploiting shift structure.
///
/// Rows are ordered as in [`RotationMatrix::rotations`]. Works for full,
/// mirror-augmented and rotation-limited matrices.
// lint: panic-exempt(profile lookups are reduced mod n, and each shift profile has exactly n entries)
pub fn rotation_distance_matrix(matrix: &RotationMatrix) -> DistanceMatrix {
    let n = matrix.series_len();
    let base = matrix.base();
    let rotations = matrix.rotations();
    let needs_mirror = rotations.iter().any(|r| r.mirrored);

    let plain_plain = shift_profile(base, base);
    let (mirror_mirror, plain_mirror) = if needs_mirror {
        let m = mirror(base);
        (shift_profile(&m, &m), shift_profile(base, &m))
    } else {
        (Vec::new(), Vec::new())
    };

    DistanceMatrix::from_fn(rotations.len(), |i, j| {
        let a = rotations[i];
        let b = rotations[j];
        match (a.mirrored, b.mirrored) {
            (false, false) => plain_plain[(n + b.shift - a.shift) % n],
            (true, true) => mirror_mirror[(n + b.shift - a.shift) % n],
            // ED(rot_i(x), rot_j(y)) = ED(x, rot_{j-i}(y)) with x = base,
            // y = mirror(base) — symmetric in which argument is mirrored
            // because ED itself is symmetric.
            (false, true) => plain_mirror[(n + b.shift - a.shift) % n],
            (true, false) => plain_mirror[(n + a.shift - b.shift) % n],
        }
    })
}

/// Reference implementation: materialize every rotation and compare
/// pairwise. `O(n³)`; used by tests and available for verification.
pub fn rotation_distance_matrix_naive(matrix: &RotationMatrix) -> DistanceMatrix {
    let rows = matrix.materialize();
    DistanceMatrix::from_fn(rows.len(), |i, j| {
        rows[i]
            .iter()
            .zip(&rows[j])
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotind_ts::rotate::rotated;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|j| (j as f64 * 0.47).sin() + 0.3 * (j as f64 * 1.21).cos())
            .collect()
    }

    fn assert_matrices_close(a: &DistanceMatrix, b: &DistanceMatrix) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            for j in i + 1..a.len() {
                assert!(
                    (a.get(i, j) - b.get(i, j)).abs() < 1e-9,
                    "({i},{j}): {} vs {}",
                    a.get(i, j),
                    b.get(i, j)
                );
            }
        }
    }

    #[test]
    fn profile_matches_direct_distances() {
        let x = signal(17);
        let y: Vec<f64> = signal(17).iter().map(|v| v * 0.8 + 0.1).collect();
        let profile = shift_profile(&x, &y);
        #[allow(clippy::needless_range_loop)] // index used across multiple slices
        for s in 0..17 {
            let direct = x
                .iter()
                .zip(&rotated(&y, s))
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            assert!((profile[s] - direct).abs() < 1e-12, "shift {s}");
        }
    }

    #[test]
    fn full_matrix_matches_naive() {
        let c = signal(24);
        let m = RotationMatrix::full(&c).unwrap();
        assert_matrices_close(
            &rotation_distance_matrix(&m),
            &rotation_distance_matrix_naive(&m),
        );
    }

    #[test]
    fn mirror_matrix_matches_naive() {
        let c = signal(15);
        let m = RotationMatrix::with_mirror(&c).unwrap();
        assert_matrices_close(
            &rotation_distance_matrix(&m),
            &rotation_distance_matrix_naive(&m),
        );
    }

    #[test]
    fn limited_matrix_matches_naive() {
        let c = signal(20);
        let m = RotationMatrix::limited_with_mirror(&c, 4).unwrap();
        assert_matrices_close(
            &rotation_distance_matrix(&m),
            &rotation_distance_matrix_naive(&m),
        );
    }

    #[test]
    fn adjacent_rotations_are_close_for_smooth_series() {
        // A smooth series' neighbouring rotations are nearer than distant
        // ones — the fact that makes clustering rotations worthwhile.
        let c: Vec<f64> = (0..64)
            .map(|j| (j as f64 / 64.0 * std::f64::consts::TAU).sin())
            .collect();
        let m = RotationMatrix::full(&c).unwrap();
        let d = rotation_distance_matrix(&m);
        assert!(d.get(0, 1) < d.get(0, 32));
        assert!(d.get(10, 11) < d.get(10, 42));
    }
}
