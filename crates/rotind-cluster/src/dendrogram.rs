//! The dendrogram (merge tree) produced by agglomerative clustering.
//!
//! Node ids follow the scipy convention: leaves are `0..m`, the `t`-th
//! merge (in ascending height order) creates node `m + t`. Cutting the
//! tree after `m − K` merges yields the `K`-cluster partition used as the
//! paper's wedge set `W` (Figure 10 shows the cuts for K = 1..5).

/// A merge as recorded by the NN-chain algorithm: two *slot*
/// (representative-leaf) indices and the linkage height.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawMerge {
    /// Representative slot of the first cluster.
    pub a: usize,
    /// Representative slot of the second cluster.
    pub b: usize,
    /// Linkage distance at which the clusters merged.
    pub height: f64,
}

/// A finalized merge: children are node ids (leaf or internal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// Left child node id.
    pub left: usize,
    /// Right child node id.
    pub right: usize,
    /// Linkage height of the merge.
    pub height: f64,
}

/// A hierarchical clustering of `m` leaves.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    num_leaves: usize,
    merges: Vec<Merge>,
}

/// Minimal union-find over leaf slots, tracking each set's current node id.
struct UnionFind {
    parent: Vec<usize>,
    node_of_root: Vec<usize>,
}

impl UnionFind {
    fn new(m: usize) -> Self {
        UnionFind {
            parent: (0..m).collect(),
            node_of_root: (0..m).collect(),
        }
    }

    // lint: panic-exempt(union-find parents always hold in-range indices; path halving only rewrites them with other parents)
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    // lint: panic-exempt(find returns a root below node_of_root.len() by construction)
    fn node(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.node_of_root[r]
    }

    // lint: panic-exempt(find returns in-range roots, and union writes only those slots)
    fn union(&mut self, a: usize, b: usize, new_node: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        self.parent[rb] = ra;
        self.node_of_root[ra] = new_node;
    }
}

impl Dendrogram {
    /// Finalize NN-chain output: sort the raw merges by height (the
    /// standard relabelling step — NN-chain discovers merges out of height
    /// order) and resolve representative slots to node ids.
    pub fn from_raw_merges(num_leaves: usize, mut raw: Vec<RawMerge>) -> Self {
        raw.sort_by(|x, y| x.height.total_cmp(&y.height));
        let mut uf = UnionFind::new(num_leaves);
        let mut merges = Vec::with_capacity(raw.len());
        for (t, rm) in raw.iter().enumerate() {
            let left = uf.node(rm.a);
            let right = uf.node(rm.b);
            debug_assert_ne!(left, right, "merge of a cluster with itself");
            let new_node = num_leaves + t;
            merges.push(Merge {
                left,
                right,
                height: rm.height,
            });
            uf.union(rm.a, rm.b, new_node);
        }
        Dendrogram { num_leaves, merges }
    }

    /// Number of leaves `m`.
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// The finalized merges, ascending by height; merge `t` is node
    /// `num_leaves + t`.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Total number of nodes (leaves + internal).
    pub fn num_nodes(&self) -> usize {
        self.num_leaves + self.merges.len()
    }

    /// The root node id (the last merge), or the sole leaf for `m = 1`;
    /// `None` only for a degenerate zero-leaf tree.
    pub fn root(&self) -> Option<usize> {
        if self.merges.is_empty() {
            if self.num_leaves == 1 {
                Some(0)
            } else {
                None
            }
        } else {
            Some(self.num_leaves + self.merges.len() - 1)
        }
    }

    /// `true` when `node` is a leaf.
    pub fn is_leaf(&self, node: usize) -> bool {
        node < self.num_leaves
    }

    /// Children of an internal node; `None` for leaves.
    // lint: panic-exempt(internal node ids sit in num_leaves..num_nodes, so node - num_leaves indexes merges)
    pub fn children(&self, node: usize) -> Option<(usize, usize)> {
        if self.is_leaf(node) {
            None
        } else {
            let m = self.merges[node - self.num_leaves];
            Some((m.left, m.right))
        }
    }

    /// Linkage height of a node (0.0 for leaves).
    pub fn height(&self, node: usize) -> f64 {
        if self.is_leaf(node) {
            0.0
        } else {
            self.merges[node - self.num_leaves].height
        }
    }

    /// Leaf indices under `node`, in discovery order.
    pub fn members(&self, node: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(x) = stack.pop() {
            match self.children(x) {
                None => out.push(x),
                Some((l, r)) => {
                    stack.push(r);
                    stack.push(l);
                }
            }
        }
        out
    }

    /// Number of leaves under `node`.
    pub fn size(&self, node: usize) -> usize {
        self.members(node).len()
    }

    /// Node ids of the `k`-cluster cut: the clusters that exist after
    /// applying the first `m − k` merges. `k` is clamped to `[1, m]`.
    // lint: panic-exempt(merge endpoints and leaf ids are below num_nodes, the length of alive)
    pub fn cut_nodes(&self, k: usize) -> Vec<usize> {
        let m = self.num_leaves;
        let k = k.clamp(1, m.max(1));
        let applied = m - k;
        let mut alive: Vec<bool> = vec![false; self.num_nodes()];
        #[allow(clippy::needless_range_loop)] // index used across multiple slices
        for leaf in 0..m {
            alive[leaf] = true;
        }
        for t in 0..applied {
            let merge = self.merges[t];
            alive[merge.left] = false;
            alive[merge.right] = false;
            alive[m + t] = true;
        }
        alive
            .iter()
            .enumerate()
            .filter_map(|(id, &a)| a.then_some(id))
            .collect()
    }

    /// The `k`-cluster partition as leaf-index groups.
    pub fn cut(&self, k: usize) -> Vec<Vec<usize>> {
        self.cut_nodes(k)
            .into_iter()
            .map(|n| self.members(n))
            .collect()
    }

    /// ASCII rendering of the tree (for the clustering figure binaries).
    /// `labels[i]` names leaf `i`; missing labels fall back to the index.
    pub fn render(&self, labels: &[&str]) -> String {
        let mut out = String::new();
        if let Some(root) = self.root() {
            self.render_node(root, 0, labels, &mut out);
        }
        out
    }

    fn render_node(&self, node: usize, depth: usize, labels: &[&str], out: &mut String) {
        let indent = "  ".repeat(depth);
        match self.children(node) {
            None => {
                let name = labels.get(node).copied().unwrap_or("");
                if name.is_empty() {
                    out.push_str(&format!("{indent}- leaf {node}\n"));
                } else {
                    out.push_str(&format!("{indent}- {name}\n"));
                }
            }
            Some((l, r)) => {
                out.push_str(&format!(
                    "{indent}+ h={:.4} ({} leaves)\n",
                    self.height(node),
                    self.size(node)
                ));
                self.render_node(l, depth + 1, labels, out);
                self.render_node(r, depth + 1, labels, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Manual 4-leaf tree: (0,1)@1.0 → node 4; (2,3)@2.0 → node 5;
    /// (4,5)@3.0 → node 6.
    fn sample() -> Dendrogram {
        Dendrogram::from_raw_merges(
            4,
            vec![
                RawMerge {
                    a: 2,
                    b: 3,
                    height: 2.0,
                },
                RawMerge {
                    a: 0,
                    b: 1,
                    height: 1.0,
                },
                RawMerge {
                    a: 0,
                    b: 2,
                    height: 3.0,
                },
            ],
        )
    }

    #[test]
    fn sorts_and_labels_merges() {
        let d = sample();
        assert_eq!(d.merges().len(), 3);
        assert_eq!(d.merges()[0].height, 1.0);
        assert_eq!(d.merges()[1].height, 2.0);
        assert_eq!(d.merges()[2].height, 3.0);
        assert_eq!(d.children(4), Some((0, 1)));
        assert_eq!(d.children(5), Some((2, 3)));
        assert_eq!(d.children(6), Some((4, 5)));
        assert_eq!(d.root(), Some(6));
    }

    #[test]
    fn members_and_size() {
        let d = sample();
        let mut m = d.members(6);
        m.sort_unstable();
        assert_eq!(m, vec![0, 1, 2, 3]);
        assert_eq!(d.size(5), 2);
        assert_eq!(d.members(2), vec![2]);
        assert!(d.is_leaf(3));
        assert!(!d.is_leaf(4));
        assert_eq!(d.height(0), 0.0);
        assert_eq!(d.height(6), 3.0);
    }

    #[test]
    fn cuts_at_every_k() {
        let d = sample();
        assert_eq!(d.cut_nodes(1), vec![6]);
        let mut k2 = d.cut_nodes(2);
        k2.sort_unstable();
        assert_eq!(k2, vec![4, 5]);
        let mut k3 = d.cut_nodes(3);
        k3.sort_unstable();
        assert_eq!(k3, vec![2, 3, 4]);
        let mut k4 = d.cut_nodes(4);
        k4.sort_unstable();
        assert_eq!(k4, vec![0, 1, 2, 3]);
        // Clamping.
        assert_eq!(d.cut_nodes(0), vec![6]);
        assert_eq!(d.cut_nodes(99).len(), 4);
    }

    #[test]
    fn cut_partitions_leaves() {
        let d = sample();
        for k in 1..=4 {
            let groups = d.cut(k);
            assert_eq!(groups.len(), k);
            let mut all: Vec<usize> = groups.concat();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3], "k = {k}");
        }
    }

    #[test]
    fn single_leaf_tree() {
        let d = Dendrogram::from_raw_merges(1, Vec::new());
        assert_eq!(d.root(), Some(0));
        assert_eq!(d.cut(1), vec![vec![0]]);
        assert_eq!(d.members(0), vec![0]);
    }

    #[test]
    fn render_contains_labels_and_heights() {
        let d = sample();
        let text = d.render(&["alpha", "beta", "gamma", "delta"]);
        for needle in ["alpha", "beta", "gamma", "delta", "h=3.0000", "4 leaves"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn raw_merge_representatives_resolve_through_unions() {
        // Merge (0,1) then (1,2): the second merge's slot 1 must resolve
        // to the node created by the first merge.
        let d = Dendrogram::from_raw_merges(
            3,
            vec![
                RawMerge {
                    a: 0,
                    b: 1,
                    height: 1.0,
                },
                RawMerge {
                    a: 1,
                    b: 2,
                    height: 2.0,
                },
            ],
        );
        assert_eq!(d.children(4), Some((3, 2)));
    }
}
