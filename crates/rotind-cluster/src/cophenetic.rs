//! Cophenetic distances and the cophenetic correlation coefficient.
//!
//! The cophenetic distance between two leaves is the linkage height at
//! which they are first merged; the correlation between cophenetic and
//! original distances measures how faithfully a dendrogram represents
//! the data — the standard quality score for the clustering figures
//! (16/17) and for the wedge-derivation ablation.

use crate::dendrogram::Dendrogram;
use crate::matrix::DistanceMatrix;

/// The full cophenetic distance matrix of a dendrogram.
///
/// `O(m²)` overall: one pre-order walk per internal node assigns the
/// node's height to every cross-child leaf pair.
pub fn cophenetic_matrix(dendrogram: &Dendrogram) -> DistanceMatrix {
    let m = dendrogram.num_leaves();
    let mut out = DistanceMatrix::zeros(m);
    for (t, merge) in dendrogram.merges().iter().enumerate() {
        let _ = t;
        let left = dendrogram.members(merge.left);
        let right = dendrogram.members(merge.right);
        for &a in &left {
            for &b in &right {
                out.set(a, b, merge.height);
            }
        }
    }
    out
}

/// Pearson correlation between the condensed entries of two distance
/// matrices (NaN-free inputs assumed). Returns 0.0 when either side is
/// constant.
pub fn matrix_correlation(a: &DistanceMatrix, b: &DistanceMatrix) -> f64 {
    assert_eq!(a.len(), b.len(), "matrix_correlation: size mismatch");
    let m = a.len();
    if m < 2 {
        return 0.0;
    }
    let mut xs = Vec::with_capacity(m * (m - 1) / 2);
    let mut ys = Vec::with_capacity(m * (m - 1) / 2);
    for i in 0..m {
        for j in i + 1..m {
            xs.push(a.get(i, j));
            ys.push(b.get(i, j));
        }
    }
    let mx = rotind_ts::stats::mean(&xs);
    let my = rotind_ts::stats::mean(&ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// The cophenetic correlation coefficient of a clustering against the
/// distances it was built from.
pub fn cophenetic_correlation(dendrogram: &Dendrogram, distances: &DistanceMatrix) -> f64 {
    matrix_correlation(&cophenetic_matrix(dendrogram), distances)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkage::{cluster, Linkage};

    fn line_matrix(points: &[f64]) -> DistanceMatrix {
        DistanceMatrix::from_fn(points.len(), |i, j| (points[i] - points[j]).abs())
    }

    #[test]
    fn cophenetic_heights_match_merges() {
        // Points 0,1 merge at 1; {0,1},2 merge at avg(3,2)=2.5 (average
        // linkage on [0, 1, 3]).
        let m = line_matrix(&[0.0, 1.0, 3.0]);
        let dend = cluster(&m, Linkage::Average);
        let cm = cophenetic_matrix(&dend);
        assert_eq!(cm.get(0, 1), 1.0);
        assert_eq!(cm.get(0, 2), 2.5);
        assert_eq!(cm.get(1, 2), 2.5);
    }

    #[test]
    fn cophenetic_is_ultrametric() {
        // max(d(a,c), d(b,c)) >= d(a,b) for all triples.
        let points: &[f64] = &[0.0, 0.4, 1.1, 5.0, 5.3, 9.9, 10.2, 10.4];
        let m = line_matrix(points);
        let dend = cluster(&m, Linkage::Average);
        let cm = cophenetic_matrix(&dend);
        let k = points.len();
        for a in 0..k {
            for b in 0..k {
                for c in 0..k {
                    if a != b && b != c && a != c {
                        assert!(
                            cm.get(a, b) <= cm.get(a, c).max(cm.get(b, c)) + 1e-12,
                            "ultrametric violated at ({a},{b},{c})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn good_clustering_has_high_correlation() {
        // Clear two-blob structure → cophenetic correlation near 1.
        let points: &[f64] = &[0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let m = line_matrix(points);
        let dend = cluster(&m, Linkage::Average);
        let ccc = cophenetic_correlation(&dend, &m);
        assert!(ccc > 0.95, "ccc = {ccc}");
    }

    #[test]
    fn all_equal_distances_give_zero_correlation() {
        let m = DistanceMatrix::from_fn(5, |_, _| 2.0);
        let dend = cluster(&m, Linkage::Average);
        // Original distances constant → correlation defined as 0.
        assert_eq!(cophenetic_correlation(&dend, &m), 0.0);
    }

    #[test]
    fn correlation_is_symmetric_and_bounded() {
        let points: &[f64] = &[0.0, 2.0, 3.5, 9.0, 9.5];
        let a = line_matrix(points);
        let dend = cluster(&a, Linkage::Complete);
        let cm = cophenetic_matrix(&dend);
        let r1 = matrix_correlation(&a, &cm);
        let r2 = matrix_correlation(&cm, &a);
        assert!((r1 - r2).abs() < 1e-12);
        assert!((-1.0..=1.0).contains(&r1));
    }

    #[test]
    fn singleton_tree() {
        let m = DistanceMatrix::zeros(1);
        let dend = cluster(&m, Linkage::Average);
        assert_eq!(cophenetic_correlation(&dend, &m), 0.0);
    }
}
