//! Step accounting — the paper's implementation-free cost metric.
//!
//! Section 5.3 of the paper: *"the variable `num_steps` returned by Table 1
//! and Table 5 allows an implementation free measure to compare
//! performance"*. A *step* is one real-value subtraction performed while
//! accumulating a distance or a lower bound. Every distance routine in the
//! workspace threads a [`StepCounter`] so the efficiency experiments
//! (Figures 19–23) can be reproduced exactly as published, independent of
//! CPU, allocator or compiler effects.

/// Accumulates the number of *steps* (real-value subtractions) performed.
///
/// The counter deliberately has no notion of time; it is a pure operation
/// count. Cloning is cheap and the counter is `Copy` so harnesses can
/// snapshot it before and after a phase.
///
/// ```
/// use rotind_ts::StepCounter;
/// let mut counter = StepCounter::new();
/// counter.add(100);
/// let snapshot = counter;
/// counter.tick();
/// assert_eq!(counter.steps(), 101);
/// assert_eq!(counter.since(snapshot), 1);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StepCounter {
    steps: u64,
}

impl StepCounter {
    /// A fresh counter at zero.
    #[inline]
    pub const fn new() -> Self {
        StepCounter { steps: 0 }
    }

    /// Record a single step.
    ///
    /// Saturates at `u64::MAX` — at one step per nanosecond that is 584
    /// years of search, but telemetry must never be the thing that
    /// panics (or, with overflow checks off, silently wraps and reports
    /// a tiny step count for the longest run in the fleet).
    #[inline]
    pub fn tick(&mut self) {
        self.steps = self.steps.saturating_add(1);
    }

    /// Record `n` steps at once (used e.g. to charge the FFT cost model
    /// `n·log2 n`, footnote in Section 5.3). Saturating, like
    /// [`tick`](Self::tick).
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.steps = self.steps.saturating_add(n);
    }

    /// Total steps recorded so far.
    #[inline]
    pub const fn steps(&self) -> u64 {
        self.steps
    }

    /// Steps recorded since an earlier snapshot of this counter.
    ///
    /// Saturates at zero when the snapshot is *ahead* of this counter
    /// (possible when a caller snapshots one counter and diffs another,
    /// or after a [`reset`](Self::reset)) — a telemetry readout must
    /// never panic mid-search.
    #[inline]
    pub fn since(&self, snapshot: StepCounter) -> u64 {
        self.steps.saturating_sub(snapshot.steps)
    }

    /// Reset to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.steps = 0;
    }

    /// Merge another counter's total into this one (saturating).
    #[inline]
    pub fn merge(&mut self, other: StepCounter) {
        self.steps = self.steps.saturating_add(other.steps);
    }
}

impl std::ops::AddAssign<u64> for StepCounter {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.steps = self.steps.saturating_add(rhs);
    }
}

impl std::fmt::Display for StepCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} steps", self.steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(StepCounter::new().steps(), 0);
        assert_eq!(StepCounter::default().steps(), 0);
    }

    #[test]
    fn tick_add_and_reset() {
        let mut c = StepCounter::new();
        c.tick();
        c.tick();
        c.add(10);
        assert_eq!(c.steps(), 12);
        c.reset();
        assert_eq!(c.steps(), 0);
    }

    #[test]
    fn since_snapshot() {
        let mut c = StepCounter::new();
        c.add(5);
        let snap = c;
        c.add(7);
        assert_eq!(c.since(snap), 7);
        assert_eq!(snap.steps(), 5, "snapshot is an independent copy");
    }

    #[test]
    fn since_saturates_when_snapshot_is_ahead() {
        let mut c = StepCounter::new();
        c.add(5);
        let snap = c;
        c.reset();
        c.add(2);
        assert_eq!(c.since(snap), 0, "stale snapshot saturates, not panics");
        assert_eq!(c.since(c), 0);
    }

    #[test]
    fn since_after_add_matches_increment() {
        let mut c = StepCounter::new();
        c.add(1_000);
        let snap = c;
        c.tick();
        c.add(41);
        assert_eq!(c.since(snap), 42);
        assert_eq!(c.steps(), 1_042);
    }

    #[test]
    fn merge_and_add_assign() {
        let mut a = StepCounter::new();
        a.add(3);
        let mut b = StepCounter::new();
        b.add(4);
        a.merge(b);
        a += 2;
        assert_eq!(a.steps(), 9);
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut c = StepCounter::new();
        c.add(u64::MAX - 1);
        c.tick();
        c.tick();
        assert_eq!(c.steps(), u64::MAX, "tick saturates");
        c.add(10);
        assert_eq!(c.steps(), u64::MAX, "add saturates");
        let mut other = StepCounter::new();
        other.add(u64::MAX);
        c.merge(other);
        c += 1;
        assert_eq!(c.steps(), u64::MAX, "merge and += saturate");
    }

    #[test]
    fn display() {
        let mut c = StepCounter::new();
        c.add(42);
        assert_eq!(c.to_string(), "42 steps");
    }
}
