//! Error type shared by the time-series substrate.

use std::fmt;

/// Errors produced while constructing or transforming time series.
#[derive(Debug, Clone, PartialEq)]
pub enum TsError {
    /// A series with zero samples was supplied where data is required.
    Empty,
    /// Two series that must share a length do not.
    LengthMismatch {
        /// Length that was expected (usually the query length).
        expected: usize,
        /// Length that was actually supplied.
        actual: usize,
    },
    /// A sample was NaN or infinite.
    NonFinite {
        /// Index of the offending sample.
        index: usize,
    },
    /// Z-normalization of a constant series was requested.
    ZeroVariance,
    /// A parameter was outside its valid domain.
    InvalidParam {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
}

impl TsError {
    /// Convenience constructor for [`TsError::InvalidParam`].
    pub fn invalid_param(name: &'static str, message: impl Into<String>) -> Self {
        TsError::InvalidParam {
            name,
            message: message.into(),
        }
    }
}

impl fmt::Display for TsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsError::Empty => write!(f, "time series must contain at least one sample"),
            TsError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            TsError::NonFinite { index } => {
                write!(f, "sample at index {index} is NaN or infinite")
            }
            TsError::ZeroVariance => {
                write!(f, "cannot z-normalize a series with zero variance")
            }
            TsError::InvalidParam { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for TsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TsError::LengthMismatch {
            expected: 8,
            actual: 4,
        };
        assert_eq!(e.to_string(), "length mismatch: expected 8, got 4");
        assert_eq!(
            TsError::Empty.to_string(),
            "time series must contain at least one sample"
        );
        assert_eq!(
            TsError::NonFinite { index: 3 }.to_string(),
            "sample at index 3 is NaN or infinite"
        );
    }

    #[test]
    fn invalid_param_constructor() {
        let e = TsError::invalid_param("band", "must be <= n");
        assert_eq!(e.to_string(), "invalid parameter `band`: must be <= n");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(TsError::ZeroVariance);
        assert!(e.to_string().contains("zero variance"));
    }
}
