//! Offset and scale invariance via normalization.
//!
//! The paper (Section 1, Figure 1) treats offset and scale distortions as
//! "relatively easy to handle ... in the representation of the data": both
//! are removed by z-normalizing the centroid-distance series before any
//! matching. Rotation is the *only* invariance that needs the wedge
//! machinery; these helpers provide the rest.

use crate::error::TsError;
use crate::stats;
use crate::Result;

/// Smallest standard deviation accepted by [`z_normalize`]; below this a
/// series is considered constant and [`TsError::ZeroVariance`] is returned.
pub const MIN_STD: f64 = 1e-12;

/// Z-normalize: subtract the mean, divide by the (population) standard
/// deviation. The result has mean 0 and standard deviation 1, making
/// Euclidean comparisons offset- and scale-invariant.
///
/// ```
/// use rotind_ts::normalize::z_normalize;
/// let z = z_normalize(&[2.0, 4.0, 6.0]).unwrap();
/// let scaled = z_normalize(&[20.0, 40.0, 60.0]).unwrap(); // same shape
/// assert_eq!(z, scaled);
/// ```
///
/// # Errors
///
/// [`TsError::Empty`] for empty input; [`TsError::ZeroVariance`] when the
/// series is (numerically) constant.
pub fn z_normalize(xs: &[f64]) -> Result<Vec<f64>> {
    if xs.is_empty() {
        return Err(TsError::Empty);
    }
    let m = stats::mean(xs);
    let s = stats::std_dev(xs);
    if s < MIN_STD {
        return Err(TsError::ZeroVariance);
    }
    Ok(xs.iter().map(|x| (x - m) / s).collect())
}

/// Z-normalize, mapping a constant series to all-zeros instead of failing.
///
/// Dataset pipelines use this form: a degenerate (constant) synthetic
/// outline should not abort a 16,000-object generation run.
pub fn z_normalize_lossy(xs: &[f64]) -> Vec<f64> {
    match z_normalize(xs) {
        Ok(v) => v,
        Err(_) => vec![0.0; xs.len()],
    }
}

/// Scale into `[0, 1]` by min-max normalization. A constant series maps to
/// all-zeros.
pub fn min_max_normalize(xs: &[f64]) -> Vec<f64> {
    let lo = stats::min(xs);
    let hi = stats::max(xs);
    let range = hi - lo;
    if !range.is_finite() || range <= 0.0 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| (x - lo) / range).collect()
}

/// Remove only the mean (offset invariance without scale invariance).
pub fn mean_center(xs: &[f64]) -> Vec<f64> {
    let m = stats::mean(xs);
    xs.iter().map(|x| x - m).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_normalize_basic() {
        let z = z_normalize(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((stats::mean(&z)).abs() < 1e-12);
        assert!((stats::std_dev(&z) - 1.0).abs() < 1e-12);
        assert!((z[0] - (-1.5)).abs() < 1e-12);
    }

    #[test]
    fn z_normalize_is_shift_scale_invariant() {
        let xs = [1.0, 3.0, 2.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| 7.0 * x + 100.0).collect();
        let zx = z_normalize(&xs).unwrap();
        let zy = z_normalize(&ys).unwrap();
        assert!(stats::approx_eq_slices(&zx, &zy, 1e-12));
    }

    #[test]
    fn z_normalize_errors() {
        assert_eq!(z_normalize(&[]).unwrap_err(), TsError::Empty);
        assert_eq!(
            z_normalize(&[3.0, 3.0, 3.0]).unwrap_err(),
            TsError::ZeroVariance
        );
    }

    #[test]
    fn lossy_maps_constant_to_zero() {
        assert_eq!(z_normalize_lossy(&[5.0, 5.0]), vec![0.0, 0.0]);
        let z = z_normalize_lossy(&[1.0, 2.0, 3.0]);
        assert!((stats::mean(&z)).abs() < 1e-12);
    }

    #[test]
    fn min_max_basic() {
        assert_eq!(min_max_normalize(&[2.0, 4.0, 6.0]), vec![0.0, 0.5, 1.0]);
        assert_eq!(min_max_normalize(&[3.0, 3.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn mean_center_basic() {
        let c = mean_center(&[1.0, 2.0, 3.0]);
        assert_eq!(c, vec![-1.0, 0.0, 1.0]);
    }
}
