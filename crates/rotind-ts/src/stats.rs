//! Small numeric helpers shared across the workspace.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`). Returns 0.0 for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum sample; NaN-free input is assumed. Returns +∞ for empty input.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum sample; NaN-free input is assumed. Returns −∞ for empty input.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Sum of squares `Σ x_i²`.
pub fn sum_sq(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * x).sum()
}

/// Dot product of two equal-length slices (panics in debug on mismatch).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `true` when `a` and `b` differ by at most `tol` in every coordinate.
pub fn approx_eq_slices(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

/// Ordinary least-squares slope and intercept of `y` on `x`.
///
/// Used by the scaling experiment to fit the paper's empirical `O(n^1.06)`
/// exponent on log-log data. Returns `(slope, intercept)`; requires at
/// least two points and non-constant `x`, else returns `(0.0, mean(y))`.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len(), "linear_fit: length mismatch");
    if x.len() < 2 {
        return (0.0, mean(y));
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        sxx += (xi - mx) * (xi - mx);
        sxy += (xi - mx) * (yi - my);
    }
    // rotind-lint: allow(float-eq) exact-zero sentinel
    if sxx == 0.0 {
        return (0.0, my);
    }
    let slope = sxy / sxx;
    (slope, my - slope * mx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(min(&[]), f64::INFINITY);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
        assert_eq!(sum_sq(&[]), 0.0);
    }

    #[test]
    fn min_max_sumsq_dot() {
        let xs = [3.0, -1.0, 4.0];
        assert_eq!(min(&xs), -1.0);
        assert_eq!(max(&xs), 4.0);
        assert_eq!(sum_sq(&xs), 26.0);
        assert_eq!(dot(&xs, &[1.0, 2.0, 3.0]), 13.0);
    }

    #[test]
    fn approx_eq() {
        assert!(approx_eq_slices(&[1.0, 2.0], &[1.0 + 1e-12, 2.0], 1e-9));
        assert!(!approx_eq_slices(&[1.0], &[1.1], 1e-9));
        assert!(!approx_eq_slices(&[1.0], &[1.0, 2.0], 1e-9));
    }

    #[test]
    fn linear_fit_exact_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0]; // y = 2x + 1
        let (slope, intercept) = linear_fit(&x, &y);
        assert!((slope - 2.0).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate() {
        assert_eq!(linear_fit(&[1.0], &[5.0]), (0.0, 5.0));
        assert_eq!(linear_fit(&[2.0, 2.0], &[1.0, 3.0]), (0.0, 2.0));
    }
}
