//! # rotind-ts — time-series substrate
//!
//! Foundation types for the `rotind` rotation-invariant shape-indexing
//! library (a reproduction of Keogh et al., *LB_Keogh Supports Exact
//! Indexing of Shapes under Rotation Invariance*, VLDB 2006).
//!
//! Shapes are matched in a one-dimensional representation: the boundary of
//! a shape is converted to a *time series* of length `n` (e.g. the distance
//! from every boundary point to the shape centroid, Figure 2 of the paper).
//! Rotating the shape corresponds to *circularly shifting* the series, so
//! everything downstream — distance measures, envelopes, wedges, indexes —
//! operates on plain `&[f64]` slices and the rotation utilities defined
//! here.
//!
//! The crate provides:
//!
//! * [`TimeSeries`] — a validated, immutable series of finite `f64` samples;
//! * [`StepCounter`] — the paper's `num_steps` accounting (real-value
//!   subtractions), the implementation-free cost metric used in every
//!   efficiency experiment (Figures 19–23);
//! * [`rotate`] — circular shifts, mirror images and the conceptual `n × n`
//!   rotation matrix **C** of Section 3, exposed as a zero-copy view;
//! * [`normalize`] — offset/scale invariance via z-normalization;
//! * [`resample`] — length harmonisation by linear interpolation;
//! * [`stats`] — small numeric helpers shared across the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod error;
pub mod normalize;
pub mod resample;
pub mod rotate;
pub mod series;
pub mod stats;

pub use counter::StepCounter;
pub use error::TsError;
pub use rotate::{mirror, rotated, RotationMatrix};
pub use series::TimeSeries;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TsError>;
