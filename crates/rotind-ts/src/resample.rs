//! Length harmonisation by linear interpolation.
//!
//! Shape boundaries produce series whose raw length depends on the pixel
//! count of the traced contour; all distance measures here require equal
//! lengths, so contours are resampled to a canonical `n` (the paper uses
//! 251 for projectile points and 1,024 for the heterogeneous data).
//!
//! Two flavours are provided: [`resample_linear`] treats the series as an
//! open curve (endpoints pinned), while [`resample_circular`] treats it as
//! a closed boundary (sample `n` wraps to sample `0`), which is the correct
//! model for centroid-distance profiles of closed shapes.

use crate::error::TsError;
use crate::Result;

/// Resample an *open* series to `target_len` samples by linear
/// interpolation, pinning first and last samples.
pub fn resample_linear(xs: &[f64], target_len: usize) -> Result<Vec<f64>> {
    if xs.is_empty() {
        return Err(TsError::Empty);
    }
    if target_len == 0 {
        return Err(TsError::invalid_param("target_len", "must be >= 1"));
    }
    let n = xs.len();
    if n == 1 {
        return Ok(vec![xs[0]; target_len]);
    }
    if target_len == 1 {
        return Ok(vec![xs[0]]);
    }
    let scale = (n - 1) as f64 / (target_len - 1) as f64;
    let mut out = Vec::with_capacity(target_len);
    for i in 0..target_len {
        let pos = i as f64 * scale;
        let lo = pos.floor() as usize;
        if lo >= n - 1 {
            out.push(xs[n - 1]);
        } else {
            let frac = pos - lo as f64;
            out.push(xs[lo] + frac * (xs[lo + 1] - xs[lo]));
        }
    }
    Ok(out)
}

/// Resample a *closed* (circular) series to `target_len` samples.
///
/// The series is interpreted as periodic: position `n` coincides with
/// position `0`. Sample `i` of the output is taken at circular position
/// `i · n / target_len`.
///
/// ```
/// use rotind_ts::resample::resample_circular;
/// // Upsampling a closed square wave interpolates across the wrap.
/// let up = resample_circular(&[0.0, 10.0], 4).unwrap();
/// assert_eq!(up, vec![0.0, 5.0, 10.0, 5.0]);
/// ```
pub fn resample_circular(xs: &[f64], target_len: usize) -> Result<Vec<f64>> {
    if xs.is_empty() {
        return Err(TsError::Empty);
    }
    if target_len == 0 {
        return Err(TsError::invalid_param("target_len", "must be >= 1"));
    }
    let n = xs.len();
    let scale = n as f64 / target_len as f64;
    let mut out = Vec::with_capacity(target_len);
    for i in 0..target_len {
        let pos = i as f64 * scale;
        let lo = pos.floor() as usize % n;
        let hi = (lo + 1) % n;
        let frac = pos - pos.floor();
        out.push(xs[lo] + frac * (xs[hi] - xs[lo]));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::approx_eq_slices;

    #[test]
    fn linear_identity() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(resample_linear(&xs, 4).unwrap(), xs.to_vec());
    }

    #[test]
    fn linear_upsample_midpoints() {
        let xs = [0.0, 2.0];
        let up = resample_linear(&xs, 3).unwrap();
        assert!(approx_eq_slices(&up, &[0.0, 1.0, 2.0], 1e-12));
    }

    #[test]
    fn linear_downsample_pins_endpoints() {
        let xs: Vec<f64> = (0..100).map(f64::from).collect();
        let down = resample_linear(&xs, 10).unwrap();
        assert_eq!(down.len(), 10);
        assert_eq!(down[0], 0.0);
        assert_eq!(down[9], 99.0);
    }

    #[test]
    fn linear_edge_cases() {
        assert!(matches!(resample_linear(&[], 5), Err(TsError::Empty)));
        assert!(resample_linear(&[1.0], 0).is_err());
        assert_eq!(resample_linear(&[7.0], 3).unwrap(), vec![7.0; 3]);
        assert_eq!(resample_linear(&[1.0, 9.0], 1).unwrap(), vec![1.0]);
    }

    #[test]
    fn circular_identity() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!(approx_eq_slices(
            &resample_circular(&xs, 4).unwrap(),
            &xs,
            1e-12
        ));
    }

    #[test]
    fn circular_upsample_wraps() {
        // Closing segment interpolates between last and first samples.
        let xs = [0.0, 10.0];
        let up = resample_circular(&xs, 4).unwrap();
        assert!(approx_eq_slices(&up, &[0.0, 5.0, 10.0, 5.0], 1e-12));
    }

    #[test]
    fn circular_preserves_rotation_structure() {
        // Resampling then rotating by k*target/n == rotating by k then
        // resampling, when the ratio is integral.
        let xs: Vec<f64> = (0..8).map(|i| (i as f64).sin()).collect();
        let a = crate::rotate::rotated(&resample_circular(&xs, 16).unwrap(), 4);
        let b = resample_circular(&crate::rotate::rotated(&xs, 2), 16).unwrap();
        assert!(approx_eq_slices(&a, &b, 1e-9));
    }

    #[test]
    fn circular_edge_cases() {
        assert!(matches!(resample_circular(&[], 5), Err(TsError::Empty)));
        assert!(resample_circular(&[1.0], 0).is_err());
        assert_eq!(resample_circular(&[7.0], 3).unwrap(), vec![7.0; 3]);
    }
}
