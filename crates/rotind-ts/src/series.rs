//! The validated [`TimeSeries`] type.

use crate::error::TsError;
use crate::Result;

/// An immutable time series of finite `f64` samples.
///
/// This is the canonical representation of a shape boundary (or a star
/// light curve) throughout the workspace. Construction validates that the
/// series is non-empty and contains no NaN/infinite samples, so downstream
/// numeric code never needs to re-check.
///
/// `TimeSeries` dereferences to `[f64]`, and most algorithms accept plain
/// `&[f64]` so callers can also work with raw slices.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    values: Box<[f64]>,
}

impl TimeSeries {
    /// Build a series from raw samples, validating finiteness.
    ///
    /// # Errors
    ///
    /// [`TsError::Empty`] if `values` is empty; [`TsError::NonFinite`] if
    /// any sample is NaN or infinite.
    pub fn new(values: Vec<f64>) -> Result<Self> {
        if values.is_empty() {
            return Err(TsError::Empty);
        }
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return Err(TsError::NonFinite { index });
        }
        Ok(TimeSeries {
            values: values.into_boxed_slice(),
        })
    }

    /// Build from a slice by copying.
    pub fn from_slice(values: &[f64]) -> Result<Self> {
        Self::new(values.to_vec())
    }

    /// Number of samples `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the series has no samples (never true for a constructed
    /// `TimeSeries`; present for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Samples as a slice.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consume and return the boxed samples.
    pub fn into_inner(self) -> Box<[f64]> {
        self.values
    }
}

impl std::ops::Deref for TimeSeries {
    type Target = [f64];

    #[inline]
    fn deref(&self) -> &[f64] {
        &self.values
    }
}

impl AsRef<[f64]> for TimeSeries {
    #[inline]
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

impl TryFrom<Vec<f64>> for TimeSeries {
    type Error = TsError;

    fn try_from(values: Vec<f64>) -> Result<Self> {
        TimeSeries::new(values)
    }
}

impl<'a> IntoIterator for &'a TimeSeries {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert_eq!(TimeSeries::new(vec![]).unwrap_err(), TsError::Empty);
        assert_eq!(
            TimeSeries::new(vec![1.0, f64::NAN]).unwrap_err(),
            TsError::NonFinite { index: 1 }
        );
        assert_eq!(
            TimeSeries::new(vec![f64::INFINITY]).unwrap_err(),
            TsError::NonFinite { index: 0 }
        );
        let ts = TimeSeries::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
    }

    #[test]
    fn deref_and_as_ref() {
        let ts = TimeSeries::new(vec![1.0, 2.0]).unwrap();
        assert_eq!(&ts[..], &[1.0, 2.0]);
        let slice: &[f64] = ts.as_ref();
        assert_eq!(slice.iter().sum::<f64>(), 3.0);
    }

    #[test]
    fn try_from_and_into_inner() {
        let ts: TimeSeries = vec![4.0, 5.0].try_into().unwrap();
        assert_eq!(ts.into_inner().as_ref(), &[4.0, 5.0]);
    }

    #[test]
    fn from_slice_copies() {
        let data = [1.0, 2.0, 3.0];
        let ts = TimeSeries::from_slice(&data).unwrap();
        assert_eq!(ts.values(), &data);
    }

    #[test]
    fn iterates_by_reference() {
        let ts = TimeSeries::new(vec![1.0, 2.0, 3.0]).unwrap();
        let total: f64 = (&ts).into_iter().sum();
        assert_eq!(total, 6.0);
    }
}
