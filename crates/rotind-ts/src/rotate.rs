//! Circular shifts, mirror images and the rotation matrix **C**.
//!
//! Section 3 of the paper expands a series `C` of length `n` into an
//! `n × n` matrix **C** whose `j`-th row is `C` circularly shifted by `j`.
//! Rotating the underlying *shape* corresponds exactly to such a shift of
//! its centroid-distance series, so "all rotations" = "all rows of **C**".
//!
//! [`RotationMatrix`] keeps a single copy of the base series (plus,
//! optionally, its mirror image for enantiomorphic invariance, and a
//! restriction to a rotation-limited window) and exposes rows as zero-copy
//! views; materializing `n` vectors of length `n` is only done on request.

use crate::error::TsError;
use crate::Result;

/// `series` circularly shifted left by `shift` positions.
///
/// `rotated(c, 1)[i] == c[(i + 1) % n]`, matching the paper's layout where
/// row `j` of **C** starts at element `c_{j+1}`.
///
/// ```
/// use rotind_ts::rotate::rotated;
/// assert_eq!(rotated(&[1.0, 2.0, 3.0, 4.0], 1), vec![2.0, 3.0, 4.0, 1.0]);
/// assert_eq!(rotated(&[1.0, 2.0, 3.0, 4.0], 4), vec![1.0, 2.0, 3.0, 4.0]);
/// ```
pub fn rotated(series: &[f64], shift: usize) -> Vec<f64> {
    let n = series.len();
    if n == 0 {
        return Vec::new();
    }
    let shift = shift % n;
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&series[shift..]);
    out.extend_from_slice(&series[..shift]);
    out
}

/// The mirror image (reversal) of a series.
///
/// Matching a shape to its enantiomorph corresponds to reversing the
/// traversal direction of its boundary, i.e. reversing the series
/// (Section 3, *Mirror Image Invariance*).
pub fn mirror(series: &[f64]) -> Vec<f64> {
    let mut out = series.to_vec();
    out.reverse();
    out
}

/// Identifies one row of a [`RotationMatrix`]: a circular shift of the base
/// series, possibly of its mirror image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rotation {
    /// Circular shift amount in `[0, n)`.
    pub shift: usize,
    /// Whether this rotation is taken from the mirrored series.
    pub mirrored: bool,
}

impl Rotation {
    /// A plain (non-mirrored) shift.
    pub const fn shift(shift: usize) -> Self {
        Rotation {
            shift,
            mirrored: false,
        }
    }

    /// A shift of the mirror image.
    pub const fn mirrored(shift: usize) -> Self {
        Rotation {
            shift,
            mirrored: true,
        }
    }
}

/// Zero-copy view of one row of the rotation matrix.
///
/// Indexing wraps around the base series, so no per-row allocation is
/// needed; `get(i)` returns `base[(i + shift) % n]`.
#[derive(Debug, Clone, Copy)]
pub struct RotationView<'a> {
    base: &'a [f64],
    shift: usize,
}

impl<'a> RotationView<'a> {
    /// Element `i` of the rotated series.
    #[inline]
    // lint: panic-exempt(k < n after the conditional subtract, since i < n and shift < n)
    pub fn get(&self, i: usize) -> f64 {
        let n = self.base.len();
        let mut k = i + self.shift;
        if k >= n {
            k -= n;
        }
        self.base[k]
    }

    /// Length of the series.
    #[inline]
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Always `false` for a constructed view; present for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Copy the rotated series into `buf` (cleared and refilled),
    /// avoiding a fresh allocation in per-rotation hot loops.
    pub fn copy_into(&self, buf: &mut Vec<f64>) {
        buf.clear();
        buf.extend_from_slice(&self.base[self.shift..]);
        buf.extend_from_slice(&self.base[..self.shift]);
    }

    /// Materialize this rotation as an owned vector.
    // lint: panic-exempt(shift is reduced mod the base length at construction)
    pub fn to_vec(&self) -> Vec<f64> {
        let n = self.base.len();
        let mut out = Vec::with_capacity(n);
        out.extend_from_slice(&self.base[self.shift..]);
        out.extend_from_slice(&self.base[..self.shift]);
        out
    }

    /// Iterate over the rotated samples.
    pub fn iter(&self) -> impl Iterator<Item = f64> + 'a {
        let (tail, head) = self.base.split_at(self.shift);
        head.iter().chain(tail.iter()).copied()
    }
}

/// The set of candidate rotations of a query series (the matrix **C**).
///
/// Holds the base series and, when mirror-image invariance is requested,
/// its reversal; rows are `(shift, mirrored)` pairs. A rotation-limited
/// query (e.g. *"allow a maximum rotation of 15 degrees"*) restricts the
/// admitted shifts to a window around zero, implementing the paper's
/// rotation-limited invariance by simply removing rows from **C**.
#[derive(Debug, Clone)]
pub struct RotationMatrix {
    base: Vec<f64>,
    mirrored: Option<Vec<f64>>,
    rotations: Vec<Rotation>,
}

impl RotationMatrix {
    /// All `n` rotations of `series` (no mirror rows).
    pub fn full(series: &[f64]) -> Result<Self> {
        Self::build(series, false, None)
    }

    /// All `2n` rotations: every shift of the series and of its mirror.
    pub fn with_mirror(series: &[f64]) -> Result<Self> {
        Self::build(series, true, None)
    }

    /// Rotation-limited matrix: only shifts within `max_shift` positions of
    /// zero (in either direction) are admitted. `max_shift` is expressed in
    /// samples; callers converting from degrees use
    /// `n * degrees / 360`, rounded down.
    ///
    /// # Errors
    ///
    /// [`TsError::InvalidParam`] when `max_shift >= n` (use [`full`]
    /// instead) — an unlimited query must be requested explicitly so that
    /// accidental huge limits are caught.
    ///
    /// [`full`]: RotationMatrix::full
    pub fn limited(series: &[f64], max_shift: usize) -> Result<Self> {
        Self::build(series, false, Some(max_shift))
    }

    /// Rotation-limited matrix that also admits mirror rows (each mirror
    /// shift limited by the same window).
    pub fn limited_with_mirror(series: &[f64], max_shift: usize) -> Result<Self> {
        Self::build(series, true, Some(max_shift))
    }

    fn build(series: &[f64], with_mirror: bool, limit: Option<usize>) -> Result<Self> {
        let n = series.len();
        if n == 0 {
            return Err(TsError::Empty);
        }
        if let Some(index) = series.iter().position(|v| !v.is_finite()) {
            return Err(TsError::NonFinite { index });
        }
        let shifts: Vec<usize> = match limit {
            None => (0..n).collect(),
            Some(max_shift) => {
                if max_shift >= n {
                    return Err(TsError::invalid_param(
                        "max_shift",
                        format!("must be < n = {n}; use RotationMatrix::full for unlimited"),
                    ));
                }
                // Window of shifts within max_shift of zero, in circular
                // terms: {0, 1, .., max_shift} ∪ {n-max_shift, .., n-1}.
                let mut s: Vec<usize> = (0..=max_shift).collect();
                if max_shift > 0 {
                    s.extend(n - max_shift..n);
                }
                s.sort_unstable();
                s.dedup();
                s
            }
        };
        let mut rotations: Vec<Rotation> = shifts.iter().map(|&s| Rotation::shift(s)).collect();
        let mirrored = if with_mirror {
            rotations.extend(shifts.iter().map(|&s| Rotation::mirrored(s)));
            Some(mirror(series))
        } else {
            None
        };
        Ok(RotationMatrix {
            base: series.to_vec(),
            mirrored,
            rotations,
        })
    }

    /// Length `n` of the underlying series.
    #[inline]
    pub fn series_len(&self) -> usize {
        self.base.len()
    }

    /// Number of rows (candidate rotations) in the matrix.
    #[inline]
    pub fn num_rotations(&self) -> usize {
        self.rotations.len()
    }

    /// The row descriptors, in construction order.
    #[inline]
    pub fn rotations(&self) -> &[Rotation] {
        &self.rotations
    }

    /// The base (shift-0, unmirrored) series.
    #[inline]
    pub fn base(&self) -> &[f64] {
        &self.base
    }

    /// Zero-copy view of an arbitrary rotation (not necessarily a row of
    /// this matrix — useful for tests).
    // lint: panic-exempt(mirrored rotations are only minted by full_with_mirror, which populates the mirror rows)
    pub fn view(&self, rotation: Rotation) -> RotationView<'_> {
        let base: &[f64] = if rotation.mirrored {
            self.mirrored
                .as_deref()
                // Invariant: mirrored Rotations are only ever minted by
                // `full_with_mirror`, which also populates `self.mirrored`.
                // rotind-lint: allow(no-panic)
                .expect("mirror rows requested from a matrix built without mirror")
        } else {
            &self.base
        };
        RotationView {
            base,
            shift: rotation.shift % base.len(),
        }
    }

    /// Zero-copy view of row `row` (construction order).
    // lint: panic-exempt(row ids come from the matrix's own construction order)
    pub fn row(&self, row: usize) -> RotationView<'_> {
        self.view(self.rotations[row])
    }

    /// Materialize every row as an owned vector (the literal matrix **C**
    /// of Section 3). Costs `O(rows · n)` memory; the search engine never
    /// needs this, but wedge construction and tests do.
    pub fn materialize(&self) -> Vec<Vec<f64>> {
        (0..self.num_rotations())
            .map(|r| self.row(r).to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotated_basic() {
        let c = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(rotated(&c, 0), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(rotated(&c, 1), vec![2.0, 3.0, 4.0, 1.0]);
        assert_eq!(rotated(&c, 3), vec![4.0, 1.0, 2.0, 3.0]);
        assert_eq!(rotated(&c, 4), vec![1.0, 2.0, 3.0, 4.0], "wraps modulo n");
        assert_eq!(rotated(&c, 7), rotated(&c, 3));
    }

    #[test]
    fn rotated_empty_and_singleton() {
        assert!(rotated(&[], 3).is_empty());
        assert_eq!(rotated(&[5.0], 9), vec![5.0]);
    }

    #[test]
    fn mirror_reverses() {
        assert_eq!(mirror(&[1.0, 2.0, 3.0]), vec![3.0, 2.0, 1.0]);
        assert_eq!(mirror(&mirror(&[1.0, 2.0, 3.0])), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn full_matrix_rows_match_rotated() {
        let c = [1.0, 5.0, 2.0, 8.0, 3.0];
        let m = RotationMatrix::full(&c).unwrap();
        assert_eq!(m.num_rotations(), 5);
        for j in 0..5 {
            assert_eq!(m.row(j).to_vec(), rotated(&c, j), "row {j}");
        }
    }

    #[test]
    fn view_get_wraps() {
        let c = [1.0, 2.0, 3.0];
        let m = RotationMatrix::full(&c).unwrap();
        let v = m.view(Rotation::shift(2));
        assert_eq!(v.get(0), 3.0);
        assert_eq!(v.get(1), 1.0);
        assert_eq!(v.get(2), 2.0);
        assert_eq!(v.len(), 3);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn mirror_rows_are_shifts_of_reversal() {
        let c = [1.0, 2.0, 3.0, 4.0];
        let m = RotationMatrix::with_mirror(&c).unwrap();
        assert_eq!(m.num_rotations(), 8);
        let rev = mirror(&c);
        for (i, rot) in m.rotations().iter().enumerate() {
            let row = m.row(i).to_vec();
            if rot.mirrored {
                assert_eq!(row, rotated(&rev, rot.shift));
            } else {
                assert_eq!(row, rotated(&c, rot.shift));
            }
        }
    }

    #[test]
    fn limited_matrix_window() {
        let c: Vec<f64> = (0..10).map(f64::from).collect();
        let m = RotationMatrix::limited(&c, 2).unwrap();
        let shifts: Vec<usize> = m.rotations().iter().map(|r| r.shift).collect();
        assert_eq!(shifts, vec![0, 1, 2, 8, 9]);
    }

    #[test]
    fn limited_zero_is_identity_only() {
        let c = [1.0, 2.0, 3.0];
        let m = RotationMatrix::limited(&c, 0).unwrap();
        assert_eq!(m.num_rotations(), 1);
        assert_eq!(m.row(0).to_vec(), c.to_vec());
    }

    #[test]
    fn limited_rejects_full_window() {
        let c = [1.0, 2.0, 3.0];
        assert!(matches!(
            RotationMatrix::limited(&c, 3),
            Err(TsError::InvalidParam { .. })
        ));
    }

    #[test]
    fn limited_with_mirror_doubles_rows() {
        let c = [1.0, 2.0, 3.0, 4.0, 5.0];
        let m = RotationMatrix::limited_with_mirror(&c, 1).unwrap();
        assert_eq!(m.num_rotations(), 6); // shifts {0,1,4} × {plain, mirror}
        assert_eq!(m.rotations().iter().filter(|r| r.mirrored).count(), 3);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(matches!(RotationMatrix::full(&[]), Err(TsError::Empty)));
        assert!(matches!(
            RotationMatrix::full(&[1.0, f64::NAN]),
            Err(TsError::NonFinite { index: 1 })
        ));
    }

    #[test]
    fn materialize_matches_rows() {
        let c = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let m = RotationMatrix::with_mirror(&c).unwrap();
        let mat = m.materialize();
        assert_eq!(mat.len(), 12);
        for (i, row) in mat.iter().enumerate() {
            assert_eq!(*row, m.row(i).to_vec());
        }
    }
}
