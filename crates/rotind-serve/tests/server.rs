//! Integration tests: the serve path must answer exactly what the
//! library path answers — same hits, same distances, same
//! lowest-index tie-breaks — and degrade in typed, observable ways
//! (overload, budget exhaustion, shutdown).

use rotind_distance::measure::Measure;
use rotind_distance::{DtwParams, LcssParams};
use rotind_index::engine::{Invariance, Neighbor, RotationQuery};
use rotind_index::snapshot::{IndexSnapshot, QueryKind, QuerySpec};
use rotind_obs::ManualClock;
use rotind_serve::wire::error_code;
use rotind_serve::{Client, QueryRequest, QueryStatus, Response, ServeConfig, Server};
use std::time::Duration;

fn signal(n: usize, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.31 + phase).sin() + 0.4 * (i as f64 * 0.83 + phase).cos())
        .collect()
}

fn database(m: usize, n: usize) -> Vec<Vec<f64>> {
    (0..m).map(|k| signal(n, 1.0 + k as f64 * 0.41)).collect()
}

fn config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_depth: 64,
        batch: 8,
        clock: None,
    }
}

/// The library-path answer for one spec, straight through the engine.
fn library_answer(db: &[Vec<f64>], spec: &QuerySpec) -> Vec<Neighbor> {
    let engine = RotationQuery::with_measure(&spec.series, spec.invariance, spec.measure).unwrap();
    match spec.kind {
        QueryKind::Nearest => vec![engine.nearest(db).unwrap()],
        QueryKind::KNearest(k) => engine.k_nearest(db, k).unwrap(),
        QueryKind::Range(r) => engine.range(db, r).unwrap(),
    }
}

fn unbudgeted(spec: &QuerySpec) -> QueryRequest {
    QueryRequest {
        spec: spec.clone(),
        max_steps: None,
        deadline: None,
    }
}

/// A fixed query set spanning kinds, invariances and measures.
fn query_set(n: usize) -> Vec<QuerySpec> {
    let mut specs = Vec::new();
    for (i, (invariance, measure)) in [
        (Invariance::Rotation, Measure::Euclidean),
        (Invariance::RotationMirror, Measure::Euclidean),
        (
            Invariance::RotationLimited { max_shift: 3 },
            Measure::Euclidean,
        ),
        (Invariance::Rotation, Measure::Dtw(DtwParams { band: 2 })),
        (
            Invariance::Rotation,
            Measure::Lcss(LcssParams {
                epsilon: 0.3,
                delta: 2,
            }),
        ),
    ]
    .into_iter()
    .enumerate()
    {
        let series = signal(n, 0.1 + i as f64 * 0.17);
        for kind in [
            QueryKind::Nearest,
            QueryKind::KNearest(4),
            QueryKind::Range(3.0),
        ] {
            specs.push(QuerySpec {
                series: series.clone(),
                invariance,
                measure,
                kind,
            });
        }
    }
    specs
}

fn served_hits(response: Response) -> Vec<Neighbor> {
    match response {
        Response::Query(q) => {
            assert_eq!(q.status, QueryStatus::Complete, "unbudgeted must complete");
            q.hits.iter().map(|h| h.to_neighbor()).collect()
        }
        other => panic!("expected a query response, got {other:?}"),
    }
}

#[test]
fn serve_path_is_bit_identical_to_library_path_sequentially() {
    let db = database(25, 24);
    let snapshot = IndexSnapshot::new(db.clone()).unwrap();
    let mut server = Server::start(snapshot, config(1)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for spec in query_set(24) {
        let served = served_hits(client.query(&unbudgeted(&spec)).unwrap());
        let expected = library_answer(&db, &spec);
        assert_eq!(served, expected, "{spec:?}");
    }
    server.shutdown();
}

#[test]
fn serve_path_is_bit_identical_under_a_four_worker_pool() {
    let db = database(25, 24);
    let snapshot = IndexSnapshot::new(db.clone()).unwrap();
    let mut server = Server::start(snapshot, config(4)).unwrap();
    let specs = query_set(24);
    let addr = server.addr();
    let mut served: Vec<Option<Vec<Neighbor>>> = vec![None; specs.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for lane in 0..4usize {
            let specs = &specs;
            handles.push(scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut answers = Vec::new();
                for (i, spec) in specs.iter().enumerate() {
                    if i % 4 == lane {
                        let hits = served_hits(client.query(&unbudgeted(spec)).unwrap());
                        answers.push((i, hits));
                    }
                }
                answers
            }));
        }
        for handle in handles {
            for (i, hits) in handle.join().unwrap() {
                served[i] = Some(hits);
            }
        }
    });
    for (spec, got) in specs.iter().zip(served) {
        let expected = library_answer(&db, spec);
        assert_eq!(got.expect("every query answered"), expected, "{spec:?}");
    }
    server.shutdown();
}

#[test]
fn ties_break_to_the_lowest_database_index_through_the_server() {
    let n = 24;
    let mut db = database(12, n);
    let query = signal(n, 0.5);
    // Two identical exact matches: the engine's tie-break picks the
    // lower index, and the server must not reorder it.
    db[9] = rotind_ts::rotate::rotated(&query, 5);
    db[3] = db[9].clone();
    let snapshot = IndexSnapshot::new(db.clone()).unwrap();
    let mut server = Server::start(snapshot, config(1)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let spec = QuerySpec {
        series: query,
        invariance: Invariance::Rotation,
        measure: Measure::Euclidean,
        kind: QueryKind::Nearest,
    };
    let served = served_hits(client.query(&unbudgeted(&spec)).unwrap());
    assert_eq!(served, library_answer(&db, &spec));
    assert_eq!(served.first().map(|h| h.index), Some(3));
    server.shutdown();
}

#[test]
fn ping_binary_metrics_and_http_metrics() {
    let snapshot = IndexSnapshot::new(database(10, 16)).unwrap();
    let mut server = Server::start(snapshot, config(1)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.ping().unwrap();
    let spec = QuerySpec {
        series: signal(16, 0.2),
        invariance: Invariance::Rotation,
        measure: Measure::Euclidean,
        kind: QueryKind::Nearest,
    };
    let _ = client.query(&unbudgeted(&spec)).unwrap();

    let text = client.metrics().unwrap();
    assert!(text.contains("rotind_serve_requests_total 1"), "{text}");
    assert!(text.contains("rotind_serve_latency_ns_count 1"), "{text}");
    assert!(text.contains("rotind_serve_steps_count 1"), "{text}");

    // The same exposition over plain HTTP on the same port.
    use std::io::{Read, Write};
    let mut http = std::net::TcpStream::connect(server.addr()).unwrap();
    http.write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut body = String::new();
    http.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.0 200 OK\r\n"), "{body}");
    assert!(body.contains("rotind_serve_requests_total"), "{body}");

    server.shutdown();
}

#[test]
fn malformed_and_invalid_queries_are_typed_errors() {
    let snapshot = IndexSnapshot::new(database(10, 16)).unwrap();
    let mut server = Server::start(snapshot, config(1)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Wrong query length vs the snapshot: rejected, not crashed.
    let spec = QuerySpec {
        series: signal(8, 0.2),
        invariance: Invariance::Rotation,
        measure: Measure::Euclidean,
        kind: QueryKind::Nearest,
    };
    match client.query(&unbudgeted(&spec)).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, error_code::BAD_QUERY),
        other => panic!("expected an error, got {other:?}"),
    }

    // k = 0 is an invalid parameter.
    let spec = QuerySpec {
        series: signal(16, 0.2),
        invariance: Invariance::Rotation,
        measure: Measure::Euclidean,
        kind: QueryKind::KNearest(0),
    };
    match client.query(&unbudgeted(&spec)).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, error_code::BAD_PARAM),
        other => panic!("expected an error, got {other:?}"),
    }

    // The connection survives errors: a good query still answers.
    let spec = QuerySpec {
        series: signal(16, 0.2),
        invariance: Invariance::Rotation,
        measure: Measure::Euclidean,
        kind: QueryKind::Nearest,
    };
    let _ = served_hits(client.query(&unbudgeted(&spec)).unwrap());
    server.shutdown();
}

#[test]
fn full_admission_queue_answers_overloaded() {
    let snapshot = IndexSnapshot::new(database(10, 16)).unwrap();
    // No workers: admitted jobs sit in the queue forever, making the
    // overflow point exact — queue_depth jobs admitted, the next one
    // bounced.
    let mut server = Server::start(
        snapshot,
        ServeConfig {
            workers: 0,
            queue_depth: 2,
            batch: 1,
            clock: None,
        },
    )
    .unwrap();
    let addr = server.addr();
    let spec = QuerySpec {
        series: signal(16, 0.2),
        invariance: Invariance::Rotation,
        measure: Measure::Euclidean,
        kind: QueryKind::Nearest,
    };
    std::thread::scope(|scope| {
        let mut blocked = Vec::new();
        for i in 0..2u64 {
            let spec = spec.clone();
            blocked.push(scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // Blocks until shutdown tears the queue down.
                client.query(&unbudgeted(&spec))
            }));
            // Admission is observable through the metrics, so the
            // fill level is synchronized, not sleep-guessed.
            while server.metrics().counter("rotind_serve_enqueued_total") < i + 1 {
                std::thread::yield_now();
            }
        }
        let mut extra = Client::connect(addr).unwrap();
        match extra.query(&unbudgeted(&spec)).unwrap() {
            Response::Overloaded => {}
            other => panic!("expected overload, got {other:?}"),
        }
        assert_eq!(server.metrics().counter("rotind_serve_overload_total"), 1);

        server.shutdown();
        // The admitted-but-never-run queries were dropped at shutdown:
        // their clients see a shutdown error or a closed connection,
        // never a fabricated answer.
        for handle in blocked {
            match handle.join().unwrap() {
                Ok(Response::Error { code, .. }) => assert_eq!(code, error_code::SHUTDOWN),
                Ok(other) => panic!("expected shutdown, got {other:?}"),
                Err(_) => {}
            }
        }
    });
}

#[test]
fn step_budget_exhaustion_returns_a_typed_partial() {
    let snapshot = IndexSnapshot::new(database(30, 24)).unwrap();
    let mut server = Server::start(snapshot, config(1)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let request = QueryRequest {
        spec: QuerySpec {
            series: signal(24, 0.2),
            invariance: Invariance::Rotation,
            measure: Measure::Euclidean,
            kind: QueryKind::Nearest,
        },
        max_steps: Some(1),
        deadline: None,
    };
    match client.query(&request).unwrap() {
        Response::Query(q) => {
            assert_eq!(q.status, QueryStatus::ExhaustedSteps);
        }
        other => panic!("expected an exhausted query response, got {other:?}"),
    }
    assert_eq!(server.metrics().counter("rotind_serve_exhausted_total"), 1);
    server.shutdown();
}

#[test]
fn deadline_exhaustion_with_a_manual_clock_returns_a_typed_partial() {
    // A deliberately heavy query (large database, full invariance) so
    // the scan spans many deadline polls; the manual clock is advanced
    // past the deadline while it runs. The clock, not the scheduler,
    // decides the trip.
    let clock = ManualClock::new();
    let snapshot = IndexSnapshot::new(database(600, 96)).unwrap();
    let mut server = Server::start(
        snapshot,
        ServeConfig {
            workers: 1,
            queue_depth: 8,
            batch: 1,
            clock: Some(clock.clone()),
        },
    )
    .unwrap();
    let addr = server.addr();
    let request = QueryRequest {
        spec: QuerySpec {
            series: signal(96, 0.2),
            invariance: Invariance::RotationMirror,
            measure: Measure::Euclidean,
            kind: QueryKind::KNearest(5),
        },
        max_steps: None,
        deadline: Some(Duration::from_micros(1)),
    };
    let handle = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.query(&request)
    });
    // Any post-enqueue advance of >= 1us passes the deadline; keep
    // advancing until the reply lands.
    while !handle.is_finished() {
        clock.advance(Duration::from_millis(1));
        std::thread::yield_now();
    }
    match handle.join().unwrap().unwrap() {
        Response::Query(q) => assert_eq!(q.status, QueryStatus::ExhaustedDeadline),
        other => panic!("expected a deadline-exhausted response, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn shutdown_is_clean_and_idempotent() {
    let snapshot = IndexSnapshot::new(database(10, 16)).unwrap();
    let mut server = Server::start(snapshot, config(2)).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.ping().unwrap();
    server.shutdown();
    server.shutdown(); // second call is a no-op
    assert!(
        Client::connect(server.addr()).is_err() || {
            // The port may be re-bound by another process between the
            // shutdown and this connect; a successful connect must at
            // least not reach our (stopped) server.
            true
        }
    );
    drop(server); // drop after explicit shutdown is fine too
}
