//! # rotind-serve — a long-lived concurrent query service
//!
//! The library crates answer one query per call; this crate keeps an
//! [`IndexSnapshot`](rotind_index::snapshot::IndexSnapshot) resident
//! and serves many concurrent nearest / k-NN / range queries over a
//! small length-prefixed binary protocol (DESIGN.md §15):
//!
//! * [`wire`] — the frame and payload codec, pure functions over byte
//!   slices;
//! * [`server`] — the acceptor / connection / worker threading model,
//!   bounded admission queue with `Overloaded` backpressure,
//!   enqueue-anchored per-query budgets, per-worker batch PAA caches,
//!   and a Prometheus `/metrics` endpoint (plain HTTP `GET` on the
//!   same port);
//! * [`client`] — a minimal blocking client used by the integration
//!   tests and the `rotind-bench` load generator.
//!
//! Serving changes *where* queries run, never *what* they answer: the
//! integration tests replay fixed query sets through the server and
//! through the engine directly and assert bit-identical results,
//! including lowest-index tie-breaks, sequentially and under a
//! four-worker pool.
//!
//! ```no_run
//! use rotind_index::snapshot::{IndexSnapshot, QueryKind, QuerySpec};
//! use rotind_index::engine::Invariance;
//! use rotind_distance::measure::Measure;
//! use rotind_serve::{Client, QueryRequest, ServeConfig, Server};
//!
//! let snapshot = IndexSnapshot::new(vec![vec![0.0; 64]; 100])?;
//! let server = Server::start(snapshot, ServeConfig::from_env())?;
//! let mut client = Client::connect(server.addr())?;
//! let reply = client.query(&QueryRequest {
//!     spec: QuerySpec {
//!         series: vec![0.0; 64],
//!         invariance: Invariance::Rotation,
//!         measure: Measure::Euclidean,
//!         kind: QueryKind::Nearest,
//!     },
//!     max_steps: None,
//!     deadline: None,
//! })?;
//! # let _ = reply;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::Client;
pub use server::{ServeConfig, Server};
pub use wire::{Hit, QueryRequest, QueryResponse, QueryStatus, Request, Response, WireError};
