//! A minimal blocking client for the binary protocol.
//!
//! One [`Client`] is one TCP connection with at most one request in
//! flight — the protocol is strict request/response per frame. For
//! concurrency, open more clients (the load generator in
//! `rotind-bench` does exactly that, one per connection thread).

use crate::wire::{self, QueryRequest, Request, Response};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to a [`Server`](crate::server::Server).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Send one request frame and block for its reply.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        wire::write_frame(&mut self.stream, &wire::encode_request(request))?;
        let payload = wire::read_frame(&mut self.stream)?;
        Ok(wire::decode_response(&payload)?)
    }

    /// Run one query; any reply shape (complete, exhausted partial,
    /// overloaded, error) comes back as the typed [`Response`].
    pub fn query(&mut self, request: &QueryRequest) -> io::Result<Response> {
        self.call(&Request::Query(request.clone()))
    }

    /// Liveness check: errors unless the server answers `Pong`.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetch the Prometheus metrics text over the binary protocol.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response: {resp:?}"),
    )
}
