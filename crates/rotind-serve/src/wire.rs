//! The binary wire format: length-prefixed frames, fixed-layout
//! little-endian payloads.
//!
//! Every message on a connection is one *frame*: a `u32` little-endian
//! payload length (capped at [`MAX_FRAME_LEN`]) followed by that many
//! payload bytes. Inside a frame the layout is positional — no field
//! names, no varints — so encode/decode are allocation-light and easy
//! to audit. All multi-byte integers and floats are little-endian.
//!
//! Request payload (first byte is the opcode):
//!
//! | opcode | meaning | rest of payload |
//! |--------|---------|-----------------|
//! | `1`    | query   | fixed header (kind, k, radius, invariance, max_shift, measure, band, epsilon, delta, max_steps, deadline_micros) then `n: u32` + `n` × `f64` samples |
//! | `2`    | metrics | empty |
//! | `3`    | ping    | empty |
//!
//! Response payload (first byte is the status):
//!
//! | status | meaning | rest of payload |
//! |--------|---------|-----------------|
//! | `0`    | complete | `steps: u64`, `count: u32`, hits |
//! | `1`    | exhausted (steps) | same as complete — `hits` is the partial answer |
//! | `2`    | exhausted (deadline) | same as complete |
//! | `3`    | error | `code: u16`, `len: u32` + UTF-8 message |
//! | `4`    | overloaded | empty — the admission queue was full |
//! | `5`    | pong | empty |
//! | `6`    | metrics | `len: u32` + UTF-8 Prometheus text |
//!
//! Each hit is `index: u64`, `distance: f64`, `shift: u32`,
//! `mirrored: u8`. Exhausted responses carry the *partial* answer (the
//! best over the scanned prefix), mirroring
//! [`BudgetOutcome`](rotind_obs::BudgetOutcome) — a tripped budget is a
//! first-class reply, not a dropped request.
//!
//! Budget fields use `0` as "unset": `max_steps = 0` means no step cap
//! and `deadline_micros = 0` means no deadline (a genuine zero-step or
//! zero-time budget would never admit an answer, so nothing is lost).

use rotind_distance::measure::Measure;
use rotind_distance::{DtwParams, LcssParams};
use rotind_index::engine::{Invariance, Neighbor};
use rotind_index::snapshot::{QueryKind, QuerySpec};
use rotind_ts::rotate::Rotation;
use std::io::{Read, Write};
use std::time::Duration;

/// Largest accepted frame payload (4 MiB — a 512k-sample query).
pub const MAX_FRAME_LEN: usize = 4 << 20;

/// A malformed frame payload.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The declared frame length exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The declared payload length.
        len: usize,
    },
    /// The payload ended before the named field.
    Truncated {
        /// Which field was being read.
        field: &'static str,
    },
    /// A tag byte holds no defined value.
    BadTag {
        /// Which field held the tag.
        field: &'static str,
        /// The undefined value.
        value: u64,
    },
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// The payload continues past the end of the message.
    TrailingBytes {
        /// Number of unread bytes.
        len: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::FrameTooLarge { len } => {
                write!(f, "frame payload of {len} bytes exceeds {MAX_FRAME_LEN}")
            }
            WireError::Truncated { field } => write!(f, "payload truncated at field `{field}`"),
            WireError::BadTag { field, value } => {
                write!(f, "undefined tag {value} for field `{field}`")
            }
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::TrailingBytes { len } => {
                write!(f, "{len} unread bytes after the end of the message")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for std::io::Error {
    fn from(e: WireError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a query (the payload embeds its budget).
    Query(QueryRequest),
    /// Fetch the Prometheus metrics text over the binary protocol.
    Metrics,
    /// Liveness check, answered inline by the connection thread.
    Ping,
}

/// A query plus its per-request budget.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// What to search for.
    pub spec: QuerySpec,
    /// Step cap, when any.
    pub max_steps: Option<u64>,
    /// Deadline measured from *admission* (enqueue time) — queue wait
    /// counts against it.
    pub deadline: Option<Duration>,
}

/// How a query ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// Exact answer; bit-identical to the un-budgeted library search.
    Complete,
    /// The step cap tripped; the hits are the partial answer.
    ExhaustedSteps,
    /// The deadline passed; the hits are the partial answer.
    ExhaustedDeadline,
}

/// One matched database item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Database index of the item.
    pub index: u64,
    /// Rotation-invariant distance to the query.
    pub distance: f64,
    /// The query rotation realising that distance.
    pub shift: u32,
    /// Whether the rotation is taken from the mirrored query.
    pub mirrored: bool,
}

impl From<&Neighbor> for Hit {
    fn from(n: &Neighbor) -> Self {
        Hit {
            index: n.index as u64,
            distance: n.distance,
            shift: u32::try_from(n.rotation.shift).unwrap_or(u32::MAX),
            mirrored: n.rotation.mirrored,
        }
    }
}

impl Hit {
    /// The library-side [`Neighbor`] this hit encodes.
    pub fn to_neighbor(&self) -> Neighbor {
        Neighbor {
            index: self.index as usize,
            distance: self.distance,
            rotation: Rotation {
                shift: self.shift as usize,
                mirrored: self.mirrored,
            },
        }
    }
}

/// A finished query: how it ended, what it cost, what it found.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// Complete, or which budget limit tripped.
    pub status: QueryStatus,
    /// Steps the search charged (the paper's machine-independent cost).
    pub steps: u64,
    /// The answer — exact when complete, the scanned-prefix partial
    /// when exhausted.
    pub hits: Vec<Hit>,
}

/// One server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The query ran (possibly to an exhausted partial).
    Query(QueryResponse),
    /// The request was malformed or the query was rejected.
    Error {
        /// Stable numeric code (see [`error_code`]).
        code: u16,
        /// Human-readable description.
        message: String,
    },
    /// The admission queue was full; retry later.
    Overloaded,
    /// Reply to [`Request::Ping`].
    Pong,
    /// Prometheus exposition text.
    Metrics(String),
}

/// Error codes carried by [`Response::Error`].
pub mod error_code {
    /// The frame payload failed to decode.
    pub const MALFORMED: u16 = 1;
    /// The query series was rejected (wrong length, non-finite, …).
    pub const BAD_QUERY: u16 = 2;
    /// A query parameter was rejected (`k = 0`, bad cache, …).
    pub const BAD_PARAM: u16 = 3;
    /// The server is shutting down; the query was dropped unrun.
    pub const SHUTDOWN: u16 = 4;
}

// --- opcodes and tags -------------------------------------------------

const OP_QUERY: u8 = 1;
const OP_METRICS: u8 = 2;
const OP_PING: u8 = 3;

const ST_COMPLETE: u8 = 0;
const ST_EXHAUSTED_STEPS: u8 = 1;
const ST_EXHAUSTED_DEADLINE: u8 = 2;
const ST_ERROR: u8 = 3;
const ST_OVERLOADED: u8 = 4;
const ST_PONG: u8 = 5;
const ST_METRICS: u8 = 6;

const KIND_NEAREST: u8 = 0;
const KIND_K_NEAREST: u8 = 1;
const KIND_RANGE: u8 = 2;

const INV_ROTATION: u8 = 0;
const INV_ROTATION_MIRROR: u8 = 1;
const INV_LIMITED: u8 = 2;
const INV_LIMITED_MIRROR: u8 = 3;

const MEASURE_EUCLIDEAN: u8 = 0;
const MEASURE_DTW: u8 = 1;
const MEASURE_LCSS: u8 = 2;

// --- framing ----------------------------------------------------------

/// Write one length-prefixed frame.
///
/// The prefix and payload go out in a **single** `write_all`: split
/// writes put the payload behind Nagle's algorithm waiting on the
/// peer's delayed ACK of the 4-byte prefix — a silent ~20 ms floor per
/// message on a loopback request/response stream (`TCP_NODELAY` is
/// also set on both ends, but one syscall per frame is cheaper
/// regardless).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { len: payload.len() }.into());
    }
    let len = payload.len() as u32;
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one length-prefixed frame. An EOF *before the first length
/// byte* surfaces as `ErrorKind::UnexpectedEof` — callers treat that as
/// a clean connection close.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { len }.into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

// --- payload reader ---------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take<const N: usize>(&mut self, field: &'static str) -> Result<[u8; N], WireError> {
        let end = self
            .pos
            .checked_add(N)
            .ok_or(WireError::Truncated { field })?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or(WireError::Truncated { field })?;
        let bytes = <[u8; N]>::try_from(slice).map_err(|_| WireError::Truncated { field })?;
        self.pos = end;
        Ok(bytes)
    }

    fn bytes(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(WireError::Truncated { field })?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or(WireError::Truncated { field })?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, WireError> {
        Ok(u8::from_le_bytes(self.take::<1>(field)?))
    }

    fn u16(&mut self, field: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take::<2>(field)?))
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take::<4>(field)?))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take::<8>(field)?))
    }

    fn f64(&mut self, field: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take::<8>(field)?))
    }

    fn finish(self) -> Result<(), WireError> {
        let left = self.buf.len().saturating_sub(self.pos);
        if left > 0 {
            return Err(WireError::TrailingBytes { len: left });
        }
        Ok(())
    }
}

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

// --- requests ---------------------------------------------------------

/// Encode a request payload (frame it with [`write_frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Metrics => put_u8(&mut out, OP_METRICS),
        Request::Ping => put_u8(&mut out, OP_PING),
        Request::Query(q) => {
            put_u8(&mut out, OP_QUERY);
            let (kind, k, radius) = match q.spec.kind {
                QueryKind::Nearest => (KIND_NEAREST, 0u32, 0.0),
                QueryKind::KNearest(k) => {
                    (KIND_K_NEAREST, u32::try_from(k).unwrap_or(u32::MAX), 0.0)
                }
                QueryKind::Range(r) => (KIND_RANGE, 0u32, r),
            };
            put_u8(&mut out, kind);
            put_u32(&mut out, k);
            put_f64(&mut out, radius);
            let (inv, max_shift) = match q.spec.invariance {
                Invariance::Rotation => (INV_ROTATION, 0usize),
                Invariance::RotationMirror => (INV_ROTATION_MIRROR, 0),
                Invariance::RotationLimited { max_shift } => (INV_LIMITED, max_shift),
                Invariance::RotationLimitedMirror { max_shift } => (INV_LIMITED_MIRROR, max_shift),
            };
            put_u8(&mut out, inv);
            put_u32(&mut out, u32::try_from(max_shift).unwrap_or(u32::MAX));
            let (measure, band, epsilon, delta) = match q.spec.measure {
                Measure::Euclidean => (MEASURE_EUCLIDEAN, 0usize, 0.0, 0usize),
                Measure::Dtw(p) => (MEASURE_DTW, p.band, 0.0, 0),
                Measure::Lcss(p) => (MEASURE_LCSS, 0, p.epsilon, p.delta),
            };
            put_u8(&mut out, measure);
            put_u32(&mut out, u32::try_from(band).unwrap_or(u32::MAX));
            put_f64(&mut out, epsilon);
            put_u32(&mut out, u32::try_from(delta).unwrap_or(u32::MAX));
            put_u64(&mut out, q.max_steps.unwrap_or(0));
            let micros = q
                .deadline
                .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
                .unwrap_or(0);
            put_u64(&mut out, micros);
            put_u32(
                &mut out,
                u32::try_from(q.spec.series.len()).unwrap_or(u32::MAX),
            );
            for &v in &q.spec.series {
                put_f64(&mut out, v);
            }
        }
    }
    out
}

/// Decode a request payload.
pub fn decode_request(buf: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(buf);
    let op = r.u8("opcode")?;
    let req = match op {
        OP_METRICS => Request::Metrics,
        OP_PING => Request::Ping,
        OP_QUERY => {
            let kind_tag = r.u8("kind")?;
            let k = r.u32("k")? as usize;
            let radius = r.f64("radius")?;
            let kind = match kind_tag {
                KIND_NEAREST => QueryKind::Nearest,
                KIND_K_NEAREST => QueryKind::KNearest(k),
                KIND_RANGE => QueryKind::Range(radius),
                v => {
                    return Err(WireError::BadTag {
                        field: "kind",
                        value: v as u64,
                    })
                }
            };
            let inv_tag = r.u8("invariance")?;
            let max_shift = r.u32("max_shift")? as usize;
            let invariance = match inv_tag {
                INV_ROTATION => Invariance::Rotation,
                INV_ROTATION_MIRROR => Invariance::RotationMirror,
                INV_LIMITED => Invariance::RotationLimited { max_shift },
                INV_LIMITED_MIRROR => Invariance::RotationLimitedMirror { max_shift },
                v => {
                    return Err(WireError::BadTag {
                        field: "invariance",
                        value: v as u64,
                    })
                }
            };
            let measure_tag = r.u8("measure")?;
            let band = r.u32("band")? as usize;
            let epsilon = r.f64("epsilon")?;
            let delta = r.u32("delta")? as usize;
            let measure = match measure_tag {
                MEASURE_EUCLIDEAN => Measure::Euclidean,
                MEASURE_DTW => Measure::Dtw(DtwParams { band }),
                MEASURE_LCSS => Measure::Lcss(LcssParams { epsilon, delta }),
                v => {
                    return Err(WireError::BadTag {
                        field: "measure",
                        value: v as u64,
                    })
                }
            };
            let max_steps = match r.u64("max_steps")? {
                0 => None,
                n => Some(n),
            };
            let deadline = match r.u64("deadline_micros")? {
                0 => None,
                us => Some(Duration::from_micros(us)),
            };
            let n = r.u32("series_len")? as usize;
            let mut series = Vec::with_capacity(n.min(MAX_FRAME_LEN / 8));
            for _ in 0..n {
                series.push(r.f64("series")?);
            }
            Request::Query(QueryRequest {
                spec: QuerySpec {
                    series,
                    invariance,
                    measure,
                    kind,
                },
                max_steps,
                deadline,
            })
        }
        v => {
            return Err(WireError::BadTag {
                field: "opcode",
                value: v as u64,
            })
        }
    };
    r.finish()?;
    Ok(req)
}

// --- responses --------------------------------------------------------

/// Encode a response payload (frame it with [`write_frame`]).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Overloaded => put_u8(&mut out, ST_OVERLOADED),
        Response::Pong => put_u8(&mut out, ST_PONG),
        Response::Metrics(text) => {
            put_u8(&mut out, ST_METRICS);
            put_u32(&mut out, u32::try_from(text.len()).unwrap_or(u32::MAX));
            out.extend_from_slice(text.as_bytes());
        }
        Response::Error { code, message } => {
            put_u8(&mut out, ST_ERROR);
            put_u16(&mut out, *code);
            put_u32(&mut out, u32::try_from(message.len()).unwrap_or(u32::MAX));
            out.extend_from_slice(message.as_bytes());
        }
        Response::Query(q) => {
            let status = match q.status {
                QueryStatus::Complete => ST_COMPLETE,
                QueryStatus::ExhaustedSteps => ST_EXHAUSTED_STEPS,
                QueryStatus::ExhaustedDeadline => ST_EXHAUSTED_DEADLINE,
            };
            put_u8(&mut out, status);
            put_u64(&mut out, q.steps);
            put_u32(&mut out, u32::try_from(q.hits.len()).unwrap_or(u32::MAX));
            for hit in &q.hits {
                put_u64(&mut out, hit.index);
                put_f64(&mut out, hit.distance);
                put_u32(&mut out, hit.shift);
                put_u8(&mut out, u8::from(hit.mirrored));
            }
        }
    }
    out
}

/// Decode a response payload.
pub fn decode_response(buf: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(buf);
    let status = r.u8("status")?;
    let resp = match status {
        ST_OVERLOADED => Response::Overloaded,
        ST_PONG => Response::Pong,
        ST_METRICS => {
            let len = r.u32("metrics_len")? as usize;
            let bytes = r.bytes(len, "metrics_text")?;
            let text = std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?;
            Response::Metrics(text.to_string())
        }
        ST_ERROR => {
            let code = r.u16("error_code")?;
            let len = r.u32("error_len")? as usize;
            let bytes = r.bytes(len, "error_message")?;
            let message = std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?;
            Response::Error {
                code,
                message: message.to_string(),
            }
        }
        ST_COMPLETE | ST_EXHAUSTED_STEPS | ST_EXHAUSTED_DEADLINE => {
            let steps = r.u64("steps")?;
            let count = r.u32("hit_count")? as usize;
            let mut hits = Vec::with_capacity(count.min(MAX_FRAME_LEN / 21));
            for _ in 0..count {
                let index = r.u64("hit_index")?;
                let distance = r.f64("hit_distance")?;
                let shift = r.u32("hit_shift")?;
                let mirrored = r.u8("hit_mirrored")? != 0;
                hits.push(Hit {
                    index,
                    distance,
                    shift,
                    mirrored,
                });
            }
            Response::Query(QueryResponse {
                status: match status {
                    ST_EXHAUSTED_STEPS => QueryStatus::ExhaustedSteps,
                    ST_EXHAUSTED_DEADLINE => QueryStatus::ExhaustedDeadline,
                    _ => QueryStatus::Complete,
                },
                steps,
                hits,
            })
        }
        v => {
            return Err(WireError::BadTag {
                field: "status",
                value: v as u64,
            })
        }
    };
    r.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let buf = encode_request(&req);
        assert_eq!(decode_request(&buf).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let buf = encode_response(&resp);
        assert_eq!(decode_response(&buf).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips_every_shape() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Metrics);
        for (kind, invariance, measure) in [
            (QueryKind::Nearest, Invariance::Rotation, Measure::Euclidean),
            (
                QueryKind::KNearest(7),
                Invariance::RotationMirror,
                Measure::Dtw(DtwParams { band: 3 }),
            ),
            (
                QueryKind::Range(2.5),
                Invariance::RotationLimited { max_shift: 4 },
                Measure::Lcss(LcssParams {
                    epsilon: 0.25,
                    delta: 2,
                }),
            ),
            (
                QueryKind::Nearest,
                Invariance::RotationLimitedMirror { max_shift: 9 },
                Measure::Euclidean,
            ),
        ] {
            roundtrip_request(Request::Query(QueryRequest {
                spec: QuerySpec {
                    series: vec![0.5, -1.25, 3.75],
                    invariance,
                    measure,
                    kind,
                },
                max_steps: Some(1000),
                deadline: Some(Duration::from_micros(2500)),
            }));
        }
        roundtrip_request(Request::Query(QueryRequest {
            spec: QuerySpec {
                series: vec![1.0],
                invariance: Invariance::Rotation,
                measure: Measure::Euclidean,
                kind: QueryKind::Nearest,
            },
            max_steps: None,
            deadline: None,
        }));
    }

    #[test]
    fn response_roundtrips_every_shape() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Overloaded);
        roundtrip_response(Response::Metrics("# TYPE x counter\nx 1\n".into()));
        roundtrip_response(Response::Error {
            code: error_code::BAD_QUERY,
            message: "length mismatch".into(),
        });
        for status in [
            QueryStatus::Complete,
            QueryStatus::ExhaustedSteps,
            QueryStatus::ExhaustedDeadline,
        ] {
            roundtrip_response(Response::Query(QueryResponse {
                status,
                steps: 12345,
                hits: vec![
                    Hit {
                        index: 7,
                        distance: 1.5,
                        shift: 3,
                        mirrored: true,
                    },
                    Hit {
                        index: 0,
                        distance: 0.0,
                        shift: 0,
                        mirrored: false,
                    },
                ],
            }));
        }
    }

    #[test]
    fn hit_neighbor_roundtrip() {
        let n = Neighbor {
            index: 42,
            distance: 3.25,
            rotation: Rotation {
                shift: 11,
                mirrored: true,
            },
        };
        assert_eq!(Hit::from(&n).to_neighbor(), n);
    }

    #[test]
    fn framing_roundtrip_and_limits() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");

        // A declared length past the cap is rejected before allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        let err = read_frame(&mut std::io::Cursor::new(huge)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_and_trailing_payloads_are_typed_errors() {
        let req = Request::Query(QueryRequest {
            spec: QuerySpec {
                series: vec![1.0, 2.0],
                invariance: Invariance::Rotation,
                measure: Measure::Euclidean,
                kind: QueryKind::Nearest,
            },
            max_steps: None,
            deadline: None,
        });
        let buf = encode_request(&req);
        let truncated = &buf[..buf.len() - 3];
        assert!(matches!(
            decode_request(truncated),
            Err(WireError::Truncated { .. })
        ));
        let mut trailing = buf.clone();
        trailing.push(0);
        assert!(matches!(
            decode_request(&trailing),
            Err(WireError::TrailingBytes { len: 1 })
        ));
    }

    #[test]
    fn undefined_tags_are_rejected() {
        assert!(matches!(
            decode_request(&[9]),
            Err(WireError::BadTag {
                field: "opcode",
                value: 9
            })
        ));
        assert!(matches!(
            decode_response(&[9]),
            Err(WireError::BadTag {
                field: "status",
                value: 9
            })
        ));
    }

    #[test]
    fn zero_budget_fields_mean_unset() {
        let req = Request::Query(QueryRequest {
            spec: QuerySpec {
                series: vec![1.0],
                invariance: Invariance::Rotation,
                measure: Measure::Euclidean,
                kind: QueryKind::Nearest,
            },
            max_steps: None,
            deadline: None,
        });
        let decoded = decode_request(&encode_request(&req)).unwrap();
        let Request::Query(q) = decoded else {
            panic!("expected query");
        };
        assert_eq!(q.max_steps, None);
        assert_eq!(q.deadline, None);
    }
}
