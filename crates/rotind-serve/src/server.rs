//! The server: acceptor, connection threads, a bounded admission queue
//! and a worker pool over one shared [`IndexSnapshot`].
//!
//! ## Threading model
//!
//! One *acceptor* thread owns the listener and spawns one *connection*
//! thread per client. Connection threads parse frames and answer
//! `Ping`/`Metrics` inline; `Query` requests become [`Job`]s pushed
//! onto a bounded [`sync_channel`](std::sync::mpsc::sync_channel).
//! A fixed pool of *worker* threads drains that queue; each worker
//! owns a persistent [`BatchPaaCache`] so candidate PAA projections
//! are built once per worker and amortized across every query it
//! serves (results stay bit-identical — the cache only removes
//! recharges, see DESIGN.md §15).
//!
//! ## Admission control
//!
//! The queue depth bounds in-flight work. When `try_send` finds the
//! queue full the connection thread replies
//! [`Response::Overloaded`](crate::wire::Response::Overloaded)
//! immediately instead of blocking — backpressure reaches the client
//! as a typed reply, never as an unbounded queue.
//!
//! ## Budgets
//!
//! Each query's [`QueryBudget`] is constructed at *enqueue* time, so a
//! deadline covers queue wait as well as execution: an overloaded
//! server degrades into deadline-exhausted partial answers rather than
//! silently serving stale latencies. Exhausted queries return their
//! scanned-prefix partial with a typed status — they are answers, not
//! errors. A [`ManualClock`] can be injected through
//! [`ServeConfig::clock`] to make deadline trips deterministic in
//! tests.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] (also run on drop) flips the shutdown flag,
//! shuts the client sockets down to unblock their readers, wakes the
//! acceptor with a loop-back connection, joins connection threads,
//! then drops the queue senders so workers drain what was admitted and
//! exit — admitted queries are answered, never abandoned.

use crate::wire::{self, error_code, QueryResponse, QueryStatus, Request, Response};
use rotind_index::cascade::BatchPaaCache;
use rotind_index::error::SearchError;
use rotind_index::snapshot::{IndexSnapshot, QuerySpec};
use rotind_obs::{
    env_positive_usize, BudgetOutcome, BudgetReason, ManualClock, MetricsRegistry, NoopObserver,
    QueryBudget,
};
use rotind_ts::StepCounter;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Server tuning knobs.
///
/// [`ServeConfig::from_env`] reads `ROTIND_SERVE_WORKERS` (default:
/// available parallelism), `ROTIND_SERVE_QUEUE` (default 64) and
/// `ROTIND_SERVE_BATCH` (default 8); unparseable or zero values warn
/// on stderr once and fall back, matching `ROTIND_THREADS`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the admission queue. `0` is permitted
    /// programmatically (queries are admitted but never run — useful
    /// for deterministic backpressure tests) but not via environment.
    pub workers: usize,
    /// Admission queue depth; a full queue answers `Overloaded`.
    pub queue_depth: usize,
    /// Max jobs a worker drains per queue lock (batching amortizes the
    /// lock and keeps its PAA cache hot across consecutive queries).
    pub batch: usize,
    /// When set, query deadlines race this hand-advanced clock instead
    /// of the wall clock — deterministic `ExhaustedDeadline` replies.
    pub clock: Option<ManualClock>,
}

impl ServeConfig {
    /// Defaults, with `ROTIND_SERVE_*` environment overrides.
    pub fn from_env() -> Self {
        let auto = thread::available_parallelism().map_or(1, |n| n.get());
        ServeConfig {
            workers: env_positive_usize("ROTIND_SERVE_WORKERS", auto),
            queue_depth: env_positive_usize("ROTIND_SERVE_QUEUE", 64),
            batch: env_positive_usize("ROTIND_SERVE_BATCH", 8),
            clock: None,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

/// One admitted query: its spec, its enqueue-anchored budget, and the
/// channel its connection thread is blocked on.
struct Job {
    spec: QuerySpec,
    budget: QueryBudget,
    enqueued: Instant,
    reply: mpsc::Sender<Response>,
}

/// State shared by every thread of one server.
struct Shared {
    snapshot: IndexSnapshot,
    metrics: Mutex<MetricsRegistry>,
    shutdown: AtomicBool,
    batch: usize,
    clock: Option<ManualClock>,
}

/// Lock the metrics registry, recovering from poison: metrics are
/// monotonic counters and histograms, safe to keep appending to even
/// if some other thread panicked mid-update.
fn lock_metrics(shared: &Shared) -> MutexGuard<'_, MetricsRegistry> {
    // lint: blocking-allowed(metrics lock is held for counter appends only; no IO or waits ever run under it)
    shared.metrics.lock().unwrap_or_else(|p| p.into_inner())
}

/// A running query service bound to a loop-back port.
///
/// Dropping the server shuts it down; [`Server::shutdown`] does the
/// same explicitly (and is idempotent).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    sender: Option<SyncSender<Job>>,
    queue_rx: Option<Arc<Mutex<Receiver<Job>>>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `127.0.0.1:0` and start serving `snapshot`.
    pub fn start(snapshot: IndexSnapshot, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let (sender, receiver) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
        let queue_rx = Arc::new(Mutex::new(receiver));
        let shared = Arc::new(Shared {
            snapshot,
            metrics: Mutex::new(MetricsRegistry::new()),
            shutdown: AtomicBool::new(false),
            batch: config.batch.max(1),
            clock: config.clock.clone(),
        });
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&queue_rx);
                thread::spawn(move || worker_loop(&shared, &rx))
            })
            .collect();
        let conns = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let sender = sender.clone();
            let conns = Arc::clone(&conns);
            thread::spawn(move || acceptor_loop(&shared, &listener, &sender, &conns))
        };
        Ok(Server {
            addr,
            shared,
            sender: Some(sender),
            queue_rx: Some(queue_rx),
            conns,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the server's metrics registry.
    pub fn metrics(&self) -> MetricsRegistry {
        lock_metrics(&self.shared).clone()
    }

    /// The Prometheus exposition text (same body the HTTP `GET` path
    /// and the binary `Metrics` request serve).
    pub fn metrics_text(&self) -> String {
        lock_metrics(&self.shared).render_prometheus()
    }

    /// Stop accepting, answer or drop what is in flight, join every
    /// thread. Idempotent; also run on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Unblock connection threads stuck reading their sockets.
        {
            let mut conns = self.conns.lock().unwrap_or_else(|p| p.into_inner());
            for stream in conns.drain(..) {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        // With no workers (test configurations) the queued jobs are
        // dropped here, which closes their reply channels and releases
        // the connection threads blocked on them. With workers the
        // queue stays alive through the workers' own handles and is
        // drained normally.
        self.queue_rx = None;
        // Wake the acceptor's blocking `accept`.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // Acceptor and connection threads are gone; dropping the last
        // sender disconnects the queue so workers exit once drained.
        self.sender = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

fn acceptor_loop(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    sender: &SyncSender<Job>,
    conns: &Arc<Mutex<Vec<TcpStream>>>,
) {
    let mut handles = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                // Request/response streams are latency-bound: without
                // this, replies sit in Nagle's buffer waiting for the
                // client's delayed ACK (~20 ms per round trip).
                let _ = stream.set_nodelay(true);
                lock_metrics(shared).counter_add("rotind_serve_connections_total", 1);
                if let Ok(clone) = stream.try_clone() {
                    conns.lock().unwrap_or_else(|p| p.into_inner()).push(clone);
                }
                let shared = Arc::clone(shared);
                let sender = sender.clone();
                handles.push(thread::spawn(move || {
                    connection_loop(&shared, &sender, stream)
                }));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
}

fn connection_loop(shared: &Shared, sender: &SyncSender<Job>, mut stream: TcpStream) {
    // The first four bytes decide the protocol: an HTTP `GET ` (for
    // the /metrics scrape path) or a binary frame length. `"GET "` as
    // a little-endian u32 is far above MAX_FRAME_LEN, so the sniff is
    // unambiguous.
    let mut head = [0u8; 4];
    if stream.read_exact(&mut head).is_err() {
        return;
    }
    if &head == b"GET " {
        serve_http_metrics(shared, stream);
        return;
    }
    let mut pending_head = Some(head);
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let payload = match pending_head.take() {
            Some(head) => {
                let len = u32::from_le_bytes(head) as usize;
                if len > wire::MAX_FRAME_LEN {
                    return;
                }
                let mut payload = vec![0u8; len];
                if stream.read_exact(&mut payload).is_err() {
                    return;
                }
                payload
            }
            None => match wire::read_frame(&mut stream) {
                Ok(payload) => payload,
                Err(_) => return,
            },
        };
        let response = handle_request(shared, sender, &payload);
        if wire::write_frame(&mut stream, &wire::encode_response(&response)).is_err() {
            return;
        }
    }
}

/// Decode one request payload and produce its reply, enqueueing query
/// work and blocking on the worker's answer.
fn handle_request(shared: &Shared, sender: &SyncSender<Job>, payload: &[u8]) -> Response {
    let request = match wire::decode_request(payload) {
        Ok(request) => request,
        Err(e) => {
            lock_metrics(shared).counter_add("rotind_serve_errors_total", 1);
            return Response::Error {
                code: error_code::MALFORMED,
                message: e.to_string(),
            };
        }
    };
    match request {
        Request::Ping => Response::Pong,
        Request::Metrics => Response::Metrics(lock_metrics(shared).render_prometheus()),
        Request::Query(q) => {
            // The budget anchors at enqueue: queue wait counts against
            // the deadline.
            let budget = match &shared.clock {
                Some(clock) => QueryBudget::with_clock(q.max_steps, q.deadline, clock),
                None => QueryBudget::new(q.max_steps, q.deadline),
            };
            let (reply_tx, reply_rx) = mpsc::channel();
            let job = Job {
                spec: q.spec,
                budget,
                enqueued: Instant::now(),
                reply: reply_tx,
            };
            match sender.try_send(job) {
                Ok(()) => {
                    lock_metrics(shared).counter_add("rotind_serve_enqueued_total", 1);
                    match reply_rx.recv() {
                        Ok(response) => response,
                        // The queue was torn down with this job still
                        // queued: shutdown, not an answer.
                        Err(_) => Response::Error {
                            code: error_code::SHUTDOWN,
                            message: "server shutting down".to_string(),
                        },
                    }
                }
                Err(TrySendError::Full(_)) => {
                    lock_metrics(shared).counter_add("rotind_serve_overload_total", 1);
                    Response::Overloaded
                }
                Err(TrySendError::Disconnected(_)) => Response::Error {
                    code: error_code::SHUTDOWN,
                    message: "server shutting down".to_string(),
                },
            }
        }
    }
}

/// Minimal HTTP/1.0 responder for `GET /metrics` scrapes: read the
/// request head (discarded — every path serves the metrics text),
/// write one plain-text response, close.
fn serve_http_metrics(shared: &Shared, mut stream: TcpStream) {
    let mut head = vec![b'G', b'E', b'T', b' '];
    let mut chunk = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => head.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
        }
    }
    let body = lock_metrics(shared).render_prometheus();
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.shutdown(Shutdown::Both);
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<Job>>) {
    let mut cache = shared.snapshot.paa_cache();
    loop {
        let mut batch = Vec::new();
        {
            // lint: blocking-allowed(admission handoff: workers hold the queue lock only to drain one batch)
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            // lint: blocking-allowed(idle wait for the next admitted job is the worker's designed parking point)
            match guard.recv() {
                Ok(job) => batch.push(job),
                // Every sender dropped and the queue drained: done.
                Err(_) => return,
            }
            while batch.len() < shared.batch {
                match guard.try_recv() {
                    Ok(job) => batch.push(job),
                    Err(_) => break,
                }
            }
        }
        lock_metrics(shared).counter_add("rotind_serve_dequeued_total", batch.len() as u64);
        for job in batch {
            run_job(shared, &mut cache, job);
        }
    }
}

/// Execute one admitted query and reply to its connection thread.
fn run_job(shared: &Shared, cache: &mut BatchPaaCache, mut job: Job) {
    let started = Instant::now();
    let queue_wait = started.duration_since(job.enqueued);
    let mut counter = StepCounter::new();
    let result = shared.snapshot.execute(
        &job.spec,
        &mut counter,
        &mut NoopObserver,
        &mut job.budget,
        Some(cache),
    );
    let response = match result {
        Ok(outcome) => {
            let status = match &outcome {
                BudgetOutcome::Complete(_) => QueryStatus::Complete,
                BudgetOutcome::Exhausted(e) => match e.reason {
                    BudgetReason::Steps => QueryStatus::ExhaustedSteps,
                    BudgetReason::Deadline => QueryStatus::ExhaustedDeadline,
                },
            };
            let hits = outcome.into_inner().iter().map(wire::Hit::from).collect();
            Response::Query(QueryResponse {
                status,
                steps: counter.steps(),
                hits,
            })
        }
        Err(e) => Response::Error {
            code: search_error_code(&e),
            message: e.to_string(),
        },
    };
    {
        let mut metrics = lock_metrics(shared);
        metrics.counter_add("rotind_serve_requests_total", 1);
        match &response {
            Response::Query(q) if q.status != QueryStatus::Complete => {
                metrics.counter_add("rotind_serve_exhausted_total", 1);
            }
            Response::Error { .. } => {
                metrics.counter_add("rotind_serve_errors_total", 1);
            }
            _ => {}
        }
        metrics
            .log_histogram("rotind_serve_latency_ns")
            .observe_duration(started.elapsed());
        metrics
            .log_histogram("rotind_serve_queue_wait_ns")
            .observe_duration(queue_wait);
        metrics
            .log_histogram("rotind_serve_steps")
            .observe(counter.steps());
    }
    // The connection may be gone (client hung up, shutdown): the
    // answer is dropped, never a panic.
    // lint: blocking-allowed(std mpsc senders never block: the reply channel is unbounded, and a gone receiver just returns Err)
    let _ = job.reply.send(response);
}

fn search_error_code(e: &SearchError) -> u16 {
    match e {
        SearchError::EmptyDatabase | SearchError::LengthMismatch { .. } => error_code::BAD_QUERY,
        SearchError::InvalidParam { .. } => error_code::BAD_PARAM,
    }
}
