//! Observer neutrality, end-to-end: attaching a recording
//! [`QueryTrace`] to a search must change **nothing** about it — not
//! the answer, and not a single `num_steps` tick. The observer is a
//! read-only tap; these property tests pin that down across measures,
//! query modes and database shapes.

use proptest::prelude::*;
use rotind::distance::{DtwParams, LcssParams, Measure};
use rotind::index::engine::{Invariance, RotationQuery};
use rotind::prelude::{NoopObserver, QueryTrace};
use rotind::ts::StepCounter;

fn series_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0f64..5.0, n)
}

fn db_strategy(n: usize, m: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(series_strategy(n), 1..=m)
}

fn measures() -> Vec<Measure> {
    vec![
        Measure::Euclidean,
        Measure::Dtw(DtwParams::new(2)),
        Measure::Lcss(LcssParams::new(0.5, 2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn recording_observer_is_neutral_for_nearest(
        query in series_strategy(20),
        db in db_strategy(20, 12),
        measure_idx in 0usize..3,
    ) {
        let measure = measures()[measure_idx];
        let engine =
            RotationQuery::with_measure(&query, Invariance::Rotation, measure).unwrap();

        let mut plain_counter = StepCounter::new();
        let plain = engine
            .nearest_observed(&db, &mut plain_counter, &mut NoopObserver)
            .unwrap();

        let mut trace = QueryTrace::new(query.len());
        let mut traced_counter = StepCounter::new();
        let traced = engine
            .nearest_observed(&db, &mut traced_counter, &mut trace)
            .unwrap();

        prop_assert_eq!(plain.index, traced.index);
        prop_assert_eq!(plain.rotation, traced.rotation);
        prop_assert!((plain.distance - traced.distance).abs() < 1e-12);
        prop_assert_eq!(
            plain_counter.steps(),
            traced_counter.steps(),
            "observer changed num_steps"
        );
        // The trace saw the search: every leaf that was admitted paid a
        // full distance, and the engine tested at least the cut wedges.
        prop_assert!(trace.wedges_tested() + trace.leaf_distances() > 0);
    }

    #[test]
    fn recording_observer_is_neutral_for_k_nearest(
        query in series_strategy(16),
        db in db_strategy(16, 10),
        k in 1usize..4,
    ) {
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();

        let mut plain_counter = StepCounter::new();
        let plain = engine
            .k_nearest_observed(&db, k, &mut plain_counter, &mut NoopObserver)
            .unwrap();

        let mut trace = QueryTrace::new(query.len());
        let mut traced_counter = StepCounter::new();
        let traced = engine
            .k_nearest_observed(&db, k, &mut traced_counter, &mut trace)
            .unwrap();

        prop_assert_eq!(plain.len(), traced.len());
        for (a, b) in plain.iter().zip(&traced) {
            prop_assert_eq!(a.index, b.index);
            prop_assert!((a.distance - b.distance).abs() < 1e-12);
        }
        prop_assert_eq!(plain_counter.steps(), traced_counter.steps());
    }

    #[test]
    fn recording_observer_is_neutral_for_range(
        query in series_strategy(16),
        db in db_strategy(16, 10),
        radius in 0.5f64..30.0,
    ) {
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();

        let mut plain_counter = StepCounter::new();
        let plain = engine
            .range_observed(&db, radius, &mut plain_counter, &mut NoopObserver)
            .unwrap();

        let mut trace = QueryTrace::new(query.len());
        let mut traced_counter = StepCounter::new();
        let traced = engine
            .range_observed(&db, radius, &mut traced_counter, &mut trace)
            .unwrap();

        prop_assert_eq!(plain.len(), traced.len());
        for (a, b) in plain.iter().zip(&traced) {
            prop_assert_eq!(a.index, b.index);
            prop_assert!((a.distance - b.distance).abs() < 1e-12);
        }
        prop_assert_eq!(plain_counter.steps(), traced_counter.steps());
    }
}
