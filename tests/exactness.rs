//! The library's headline guarantee, tested end-to-end: the wedge
//! engine returns **exactly** the brute-force answers — "we prove that
//! we will always return the same answer set as the slower methods" —
//! for every measure, invariance mode and wedge-set policy.

use proptest::prelude::*;
use rotind::distance::rotation::{search_database, test_all_rotations};
use rotind::distance::{DtwParams, LcssParams, Measure};
use rotind::index::engine::{Invariance, KPolicy, RotationQuery};
use rotind::ts::rotate::RotationMatrix;
use rotind::ts::StepCounter;

fn series_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0f64..5.0, n)
}

fn db_strategy(n: usize, m: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(series_strategy(n), 1..=m)
}

fn measures() -> Vec<Measure> {
    vec![
        Measure::Euclidean,
        Measure::Dtw(DtwParams::new(2)),
        Measure::Lcss(LcssParams::new(0.5, 2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn nearest_equals_brute_force(
        query in series_strategy(20),
        db in db_strategy(20, 12),
        measure_idx in 0usize..3,
    ) {
        let measure = measures()[measure_idx];
        let engine = RotationQuery::with_measure(&query, Invariance::Rotation, measure).unwrap();
        let hit = engine.nearest(&db).unwrap();
        let matrix = RotationMatrix::full(&query).unwrap();
        let oracle = search_database(&matrix, &db, measure, &mut StepCounter::new()).unwrap();
        prop_assert_eq!(hit.index, oracle.index);
        prop_assert!((hit.distance - oracle.distance).abs() < 1e-9);
    }

    #[test]
    fn every_k_policy_is_exact(
        query in series_strategy(16),
        db in db_strategy(16, 8),
        k in 1usize..40,
    ) {
        let fixed = RotationQuery::new(&query, Invariance::Rotation)
            .unwrap()
            .with_k_policy(KPolicy::Fixed(k));
        let dynamic = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let a = fixed.nearest(&db).unwrap();
        let b = dynamic.nearest(&db).unwrap();
        prop_assert_eq!(a.index, b.index);
        prop_assert!((a.distance - b.distance).abs() < 1e-9);
    }

    #[test]
    fn mirror_invariance_equals_explicit_mirror_scan(
        query in series_strategy(14),
        db in db_strategy(14, 8),
    ) {
        let engine = RotationQuery::new(&query, Invariance::RotationMirror).unwrap();
        let hit = engine.nearest(&db).unwrap();
        let matrix = RotationMatrix::with_mirror(&query).unwrap();
        let oracle =
            search_database(&matrix, &db, Measure::Euclidean, &mut StepCounter::new()).unwrap();
        prop_assert_eq!(hit.index, oracle.index);
        prop_assert!((hit.distance - oracle.distance).abs() < 1e-9);
    }

    #[test]
    fn rotation_limited_equals_limited_scan(
        query in series_strategy(18),
        db in db_strategy(18, 8),
        max_shift in 0usize..9,
    ) {
        let engine =
            RotationQuery::new(&query, Invariance::RotationLimited { max_shift }).unwrap();
        let hit = engine.nearest(&db).unwrap();
        let matrix = RotationMatrix::limited(&query, max_shift).unwrap();
        let oracle =
            search_database(&matrix, &db, Measure::Euclidean, &mut StepCounter::new()).unwrap();
        prop_assert_eq!(hit.index, oracle.index);
        prop_assert!((hit.distance - oracle.distance).abs() < 1e-9);
    }

    #[test]
    fn knn_equals_sorted_oracle(
        query in series_strategy(16),
        db in db_strategy(16, 10),
        k in 1usize..6,
    ) {
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let hits = engine.k_nearest(&db, k).unwrap();
        let matrix = RotationMatrix::full(&query).unwrap();
        let mut oracle: Vec<(usize, f64)> = db
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let d = test_all_rotations(
                    item,
                    &matrix,
                    f64::INFINITY,
                    Measure::Euclidean,
                    &mut StepCounter::new(),
                )
                .unwrap()
                .distance;
                (i, d)
            })
            .collect();
        oracle.sort_by(|a, b| a.1.total_cmp(&b.1));
        prop_assert_eq!(hits.len(), k.min(db.len()));
        for (hit, (_, od)) in hits.iter().zip(&oracle) {
            // Indices can differ under exact ties; distances cannot.
            prop_assert!((hit.distance - od).abs() < 1e-9);
        }
    }

    #[test]
    fn range_equals_filtered_oracle(
        query in series_strategy(14),
        db in db_strategy(14, 10),
        radius in 0.0f64..20.0,
    ) {
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let hits = engine.range(&db, radius).unwrap();
        let matrix = RotationMatrix::full(&query).unwrap();
        let expected: Vec<usize> = db
            .iter()
            .enumerate()
            .filter_map(|(i, item)| {
                let d = test_all_rotations(
                    item,
                    &matrix,
                    f64::INFINITY,
                    Measure::Euclidean,
                    &mut StepCounter::new(),
                )
                .unwrap()
                .distance;
                (d <= radius).then_some(i)
            })
            .collect();
        let mut got: Vec<usize> = hits.iter().map(|h| h.index).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn reported_rotation_reproduces_the_distance(
        query in series_strategy(16),
        db in db_strategy(16, 6),
    ) {
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let hit = engine.nearest(&db).unwrap();
        let rotated = rotind::ts::rotate::rotated(&query, hit.rotation.shift);
        let direct: f64 = db[hit.index]
            .iter()
            .zip(&rotated)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        prop_assert!((direct - hit.distance).abs() < 1e-9);
    }
}
