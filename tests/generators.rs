//! Property tests over the data generators: every synthetic family must
//! produce valid profiles for arbitrary seeds, and the dataset plumbing
//! (subsample, resample, labels) must preserve its invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rotind::lightcurve::dataset::light_curves;
use rotind::shape::dataset as shapes;
use rotind::shape::generators::blade::{blade_profile, BladeClass};
use rotind::shape::generators::butterfly::{butterfly_profile, LEPIDOPTERA};
use rotind::shape::generators::polygon::{regular_polygon, star_polygon};
use rotind::shape::generators::skull::{skull_profile, PRIMATES, REPTILES};
use rotind::shape::generators::superformula::Superformula;

fn valid_profile(p: &[f64]) -> bool {
    !p.is_empty() && p.iter().all(|r| r.is_finite() && *r > 0.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn blade_profiles_always_valid(seed in 0u64..10_000, class_idx in 0usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = blade_profile(BladeClass::ALL[class_idx], 128, &mut rng);
        prop_assert!(valid_profile(&p));
    }

    #[test]
    fn skull_profiles_always_valid(seed in 0u64..10_000, jitter in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        for sp in PRIMATES.iter().chain(REPTILES.iter()) {
            let p = skull_profile(&sp.params, 96, jitter, &mut rng);
            prop_assert!(valid_profile(&p), "{}", sp.name);
        }
    }

    #[test]
    fn butterfly_profiles_always_valid(seed in 0u64..10_000, jitter in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        for sp in &LEPIDOPTERA {
            let p = butterfly_profile(&sp.params, 96, jitter, &mut rng);
            prop_assert!(valid_profile(&p), "{}", sp.name);
        }
    }

    #[test]
    fn superformula_valid_over_parameter_box(
        m in 0.0f64..12.0,
        n1 in 0.1f64..6.0,
        n2 in 0.1f64..8.0,
        n3 in 0.1f64..8.0,
    ) {
        let p = Superformula::new(m, n1, n2, n3).profile(64);
        prop_assert!(valid_profile(&p));
    }

    #[test]
    fn polygons_valid(k in 3usize..24, r in 0.2f64..5.0) {
        prop_assert!(valid_profile(&regular_polygon(k, r, 128)));
        prop_assert!(valid_profile(&star_polygon(k, r, r * 0.5, 128)));
    }

    #[test]
    fn projectile_dataset_invariants(m in 2usize..40, seed in 0u64..500) {
        let ds = shapes::projectile_points(m, 64, seed);
        prop_assert!(ds.validate());
        prop_assert_eq!(ds.len(), m);
        // z-normalised (or degenerate-zero) items.
        for s in &ds.items {
            let mean = rotind::ts::stats::mean(s);
            prop_assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn subsample_preserves_label_semantics(keep in 1usize..60, seed in 0u64..100) {
        let ds = light_curves(60, 32, 5);
        let sub = ds.subsample(keep, seed);
        prop_assert_eq!(sub.len(), keep.min(60));
        prop_assert!(sub.validate());
        // Every subsampled item exists in the original with the same label.
        for (item, &label) in sub.items.iter().zip(&sub.labels) {
            let found = ds
                .items
                .iter()
                .zip(&ds.labels)
                .any(|(orig, &l)| l == label && orig == item);
            prop_assert!(found, "subsampled item lost its identity");
        }
    }

    #[test]
    fn resample_changes_only_length(n in 8usize..200) {
        let ds = shapes::aircraft(3).subsample(14, 1);
        let r = ds.resampled(n);
        prop_assert_eq!(r.series_len(), n);
        prop_assert_eq!(r.len(), ds.len());
        prop_assert_eq!(r.labels, ds.labels);
    }
}
