//! The parallel scan's headline guarantee, tested end-to-end: chunked
//! multi-threaded search with a shared best-so-far returns results
//! **bit-identical** to the sequential scan and the brute-force oracle
//! — same index, same distance bits, same rotation, same tie-break —
//! for every thread count, and its merged telemetry equals the sum of
//! the per-thread parts.

use proptest::prelude::*;
use rotind::distance::measure::Measure;
use rotind::distance::rotation::search_database;
use rotind::index::engine::{Invariance, RotationQuery};
use rotind::index::parallel::nearest_batch;
use rotind::obs::QueryTrace;
use rotind::ts::rotate::{rotated, RotationMatrix};
use rotind::ts::StepCounter;

fn series_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0f64..5.0, n)
}

fn db_strategy(n: usize, m: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(series_strategy(n), 1..=m)
}

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    // ISSUE 3 acceptance: >= 100 randomized databases, identical
    // `Neighbor` results at 2, 4 and 8 threads vs the sequential scan
    // and the brute-force oracle.
    #[test]
    fn nearest_parallel_is_bit_identical_to_sequential_and_oracle(
        query in series_strategy(16),
        db in db_strategy(16, 20),
    ) {
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let sequential = engine.nearest(&db).unwrap();
        let matrix = RotationMatrix::full(&query).unwrap();
        let oracle =
            search_database(&matrix, &db, Measure::Euclidean, &mut StepCounter::new()).unwrap();
        prop_assert_eq!(sequential.index, oracle.index);
        prop_assert!((sequential.distance - oracle.distance).abs() < 1e-9);
        for threads in THREAD_COUNTS {
            let hit = engine.nearest_parallel(&db, threads).unwrap();
            prop_assert_eq!(hit, sequential);
            prop_assert_eq!(
                hit.distance.to_bits(),
                sequential.distance.to_bits(),
                "distance must be bit-identical at {} threads",
                threads
            );
        }
    }

    #[test]
    fn nearest_parallel_preserves_lowest_index_tie_break(
        query in series_strategy(12),
        db in db_strategy(12, 16),
        lo in 0usize..16,
        hi in 0usize..16,
        shift in 0usize..12,
    ) {
        // Plant the same rotation of the query at two positions: exact
        // ties across chunks must resolve to the lower index, exactly
        // as the sequential scan does.
        let mut db = db;
        let planted = rotated(&query, shift);
        let lo = lo % db.len();
        let hi = hi % db.len();
        db[lo] = planted.clone();
        db[hi] = planted;
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let sequential = engine.nearest(&db).unwrap();
        prop_assert_eq!(sequential.index, lo.min(hi));
        for threads in THREAD_COUNTS {
            prop_assert_eq!(engine.nearest_parallel(&db, threads).unwrap(), sequential);
        }
    }

    #[test]
    fn merged_telemetry_equals_per_thread_sum(
        query in series_strategy(16),
        db in db_strategy(16, 20),
    ) {
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        let sequential = engine.nearest(&db).unwrap();
        for threads in THREAD_COUNTS {
            let mut counter = StepCounter::new();
            let mut trace = QueryTrace::new(16);
            let (hit, report) = engine
                .nearest_parallel_observed(&db, threads, &mut counter, &mut trace)
                .unwrap();
            prop_assert_eq!(hit, sequential);
            let sum: u64 = report.per_thread_steps.iter().sum();
            prop_assert_eq!(counter.steps(), sum);
            prop_assert_eq!(report.chunk_lens.iter().sum::<usize>(), db.len());
            prop_assert!(trace.leaf_distances() >= 1, "the winner's leaf was observed");
        }
    }

    #[test]
    fn range_parallel_matches_sequential(
        query in series_strategy(16),
        db in db_strategy(16, 20),
        scale in 0.5f64..3.0,
    ) {
        let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
        // A radius around the nearest distance keeps both empty-ish and
        // full-ish result sets in play across cases.
        let radius = engine.nearest(&db).unwrap().distance * scale;
        prop_assert!(radius.is_finite());
        let sequential = engine.range(&db, radius).unwrap();
        for threads in THREAD_COUNTS {
            let hits = engine.range_parallel(&db, radius, threads).unwrap();
            prop_assert_eq!(&hits, &sequential, "threads = {}", threads);
        }
    }

    #[test]
    fn nearest_batch_matches_per_query_sequential(
        queries in prop::collection::vec(series_strategy(12), 1..6),
        db in db_strategy(12, 10),
    ) {
        let engines: Vec<RotationQuery> = queries
            .iter()
            .map(|q| RotationQuery::new(q, Invariance::Rotation).unwrap())
            .collect();
        let expected: Vec<_> = engines.iter().map(|e| e.nearest(&db).unwrap()).collect();
        for threads in THREAD_COUNTS {
            prop_assert_eq!(&nearest_batch(&engines, &db, threads).unwrap(), &expected);
        }
    }
}
