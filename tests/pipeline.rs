//! End-to-end pipeline tests spanning every crate: bitmap → contour →
//! centroid series → normalisation → rotation-invariant search → disk
//! index, plus the dataset builders the experiments rely on.

use rotind::distance::{DtwParams, Measure};
use rotind::index::disk::{IndexedDatabase, ReducedRepr};
use rotind::index::engine::{Invariance, RotationQuery};
use rotind::lightcurve::dataset::light_curves;
use rotind::shape::bitmap::Bitmap;
use rotind::shape::centroid::shape_to_series;
use rotind::shape::dataset as shapes;
use rotind::shape::poly::{radial_to_polygon, rasterize_polygon};
use rotind::ts::normalize::z_normalize_lossy;
use rotind::ts::rotate::rotated;
use rotind::ts::StepCounter;

/// Rasterise a radial profile and run it through the full Figure-2
/// pipeline.
fn raster_series(radii: &[f64], n: usize) -> Vec<f64> {
    let poly = radial_to_polygon(radii, 220, 0.9);
    let bitmap = rasterize_polygon(&poly, 220, 220);
    z_normalize_lossy(&shape_to_series(&bitmap, n).expect("non-empty shape"))
}

#[test]
fn bitmap_pipeline_retrieves_the_rotated_shape() {
    let n = 96;
    // Database of rasterised superformula shapes.
    let profiles: Vec<Vec<f64>> = (0..12)
        .map(|k| {
            rotind::shape::generators::superformula(
                2.0 + (k % 5) as f64,
                0.8 + 0.17 * (k % 7) as f64,
                2.2,
                1.8,
                256,
            )
        })
        .collect();
    let database: Vec<Vec<f64>> = profiles.iter().map(|p| raster_series(p, n)).collect();

    // The query is shape 7 *physically rotated* before rasterisation —
    // nothing in the pipeline sees the original orientation.
    let rotated_profile = rotated(&profiles[7], 100);
    let query = raster_series(&rotated_profile, n);

    let engine = RotationQuery::new(&query, Invariance::Rotation).expect("valid query");
    let hit = engine.nearest(&database).expect("non-empty database");
    assert_eq!(hit.index, 7, "physical rotation must not change identity");
    assert!(
        hit.distance < 3.0,
        "raster noise only: distance {}",
        hit.distance
    );
}

#[test]
fn bitmap_pipeline_under_dtw() {
    let n = 64;
    let profile = rotind::shape::generators::superformula(4.0, 1.0, 2.0, 2.0, 256);
    let a = raster_series(&profile, n);
    let b = raster_series(&rotated(&profile, 64), n);
    let engine =
        RotationQuery::with_measure(&a, Invariance::Rotation, Measure::Dtw(DtwParams::new(3)))
            .expect("valid");
    let d = engine.distance_to(&b).expect("equal lengths");
    assert!(d < 1.5, "DTW distance between rotated rasters: {d}");
}

#[test]
fn skull_bitmap_roundtrip() {
    // A skull profile survives rasterisation: its raster series matches
    // the direct radial series far better than a different species'.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let n = 96;
    let human = rotind::shape::generators::skull::skull_profile(
        &rotind::shape::generators::skull::PRIMATES[0].params,
        512,
        0.0,
        &mut rng,
    );
    let orang = rotind::shape::generators::skull::skull_profile(
        &rotind::shape::generators::skull::PRIMATES[2].params,
        512,
        0.0,
        &mut rng,
    );
    let human_raster = raster_series(&human, n);
    let human_direct = z_normalize_lossy(
        &rotind::shape::centroid::radial_profile_to_series(&human, n).expect("non-empty"),
    );
    let orang_direct = z_normalize_lossy(
        &rotind::shape::centroid::radial_profile_to_series(&orang, n).expect("non-empty"),
    );
    let engine = RotationQuery::new(&human_raster, Invariance::Rotation).expect("valid");
    let d_same = engine.distance_to(&human_direct).expect("len");
    let d_other = engine.distance_to(&orang_direct).expect("len");
    assert!(
        d_same < d_other,
        "raster/direct mismatch: {d_same} !< {d_other}"
    );
}

#[test]
fn disk_index_agrees_with_engine_on_shapes() {
    let ds = shapes::projectile_points(150, 128, 33);
    let db: Vec<Vec<f64>> = ds.items[..149].to_vec();
    let query = ds.items[149].clone();
    let engine = RotationQuery::new(&query, Invariance::Rotation).expect("valid");
    let direct = engine.nearest(&db).expect("non-empty");
    for d in [4usize, 16] {
        let index =
            IndexedDatabase::build(db.clone(), d, ReducedRepr::FourierMagnitude).expect("valid db");
        let (hit, stats) = index
            .nearest(&query, Measure::Euclidean)
            .expect("valid query");
        assert_eq!(hit.index, direct.index, "D = {d}");
        assert!((hit.distance - direct.distance).abs() < 1e-9);
        assert!(stats.retrieved <= stats.total);
    }
}

#[test]
fn disk_index_agrees_with_engine_on_lightcurves_dtw() {
    let ds = light_curves(80, 128, 21);
    let db: Vec<Vec<f64>> = ds.items[..79].to_vec();
    let query = ds.items[79].clone();
    let measure = Measure::Dtw(DtwParams::new(4));
    let engine = RotationQuery::with_measure(&query, Invariance::Rotation, measure).expect("valid");
    let direct = engine.nearest(&db).expect("non-empty");
    let index = IndexedDatabase::build(db.clone(), 8, ReducedRepr::Paa).expect("valid db");
    let (hit, _) = index.nearest(&query, measure).expect("valid query");
    assert_eq!(hit.index, direct.index);
    assert!((hit.distance - direct.distance).abs() < 1e-9);
}

#[test]
fn classification_beats_chance_on_every_dataset() {
    // Tiny stratified subsamples keep this fast; the full Table 8 runs
    // in the bench harness.
    let sets: Vec<rotind::shape::Dataset> = vec![
        shapes::aircraft(3).subsample(42, 1),
        shapes::mixed_bag(3).subsample(45, 1),
        light_curves(45, 128, 3),
    ];
    for ds in sets {
        let result = rotind::eval::one_nn_error(&ds, Measure::Euclidean);
        let chance = 1.0 - 1.0 / ds.num_classes() as f64;
        assert!(
            result.error_rate() < chance * 0.8,
            "{}: error {} vs chance {}",
            ds.name,
            result.error_rate(),
            chance
        );
    }
}

#[test]
fn glyph_six_and_nine_separate_only_under_limited_rotation() {
    // Condensed version of the shape_retrieval example, as a regression
    // test for the rotation-limited path.
    let n = 96;
    let c = 48.0;
    let six = Bitmap::from_fn(96, 96, |x, y| {
        let (xf, yf) = (x as f64, y as f64);
        let body = (xf - c).powi(2) + (yf - (c + 12.0)).powi(2) <= 20.0 * 20.0;
        let asc = (xf - (c + 9.0)).abs() < 7.0 && (yf - (c - 17.0)).abs() < 21.0;
        body || asc
    });
    let nine = Bitmap::from_fn(96, 96, |x, y| six.get(95 - x as isize, 95 - y as isize));
    let s6 = z_normalize_lossy(&shape_to_series(&six, n).expect("glyph"));
    let s9 = z_normalize_lossy(&shape_to_series(&nine, n).expect("glyph"));

    let full = RotationQuery::new(&s6, Invariance::Rotation).expect("valid");
    let limited =
        RotationQuery::new(&s6, Invariance::RotationLimited { max_shift: n / 24 }).expect("valid");
    let d_full = full.distance_to(&s9).expect("len");
    let d_limited = limited.distance_to(&s9).expect("len");
    assert!(d_full < 2.0, "under full invariance 6 ≈ 9: {d_full}");
    assert!(
        d_limited > d_full + 0.5,
        "limited invariance must separate: {d_limited} vs {d_full}"
    );
}

#[test]
fn step_counts_are_reproducible() {
    // The num_steps metric must be deterministic — figures depend on it.
    let ds = shapes::projectile_points(60, 64, 9);
    let query = ds.items[59].clone();
    let db: Vec<Vec<f64>> = ds.items[..59].to_vec();
    let run = || {
        let engine = RotationQuery::new(&query, Invariance::Rotation).expect("valid");
        let mut counter = StepCounter::new();
        engine
            .nearest_with_steps(&db, &mut counter)
            .expect("non-empty");
        counter.steps()
    };
    assert_eq!(run(), run());
}
