//! Property tests pinning the vectorized bound kernels to their scalar
//! twins (DESIGN.md §17).
//!
//! Three layers of identity are asserted, each against randomized data
//! at lane-straddling lengths (`LANES ± 1` and friends) plus the
//! adversarial all-inside / all-outside envelope regimes:
//!
//! * **`chunked` vs `seq` outcome equivalence** — the chunked canonical
//!   order must dismiss exactly the candidates the historical scalar
//!   loop dismisses, at the same trip position, charging the same step
//!   count (block check + scalar replay, see `rotind_distance::kernels`),
//!   and must agree on completed sums to reassociation rounding.
//! * **`simd` vs `chunked` bit-identity** (compiled only with
//!   `--features simd`) — both express the same canonical order, so
//!   sums, trip positions, and steps match *bitwise*.
//! * **van Herk vs deque bit-identity** — the block sliding-extreme
//!   kernel agrees bit for bit with the monotonic-deque reference.

use proptest::prelude::*;
use rotind::distance::kernels::{self, LANES};
use rotind::envelope::envelope::{
    sliding_max_into, sliding_max_into_seq, sliding_min_into, sliding_min_into_seq, SlidingScratch,
};
use rotind::ts::StepCounter;

/// Lane-straddling lengths: one below, at, and above each chunk and
/// block boundary the canonical schedule cares about.
const SIZES: [usize; 12] = [0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 200];
const MAX_N: usize = 200;

fn pool() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, MAX_N)
}

/// Radius selector: 0 → ∞ (full accumulation), 1 → 0.0 (instant
/// dismissal on any positive term), otherwise the drawn finite value.
fn pick_radius(sel: usize, val: f64) -> f64 {
    match sel {
        0 => f64::INFINITY,
        1 => 0.0,
        _ => val,
    }
}

/// Clamp-kernel query for the adversarial regimes: 0 = mixed (the raw
/// draw), 1 = all inside (every term exactly 0.0), 2 = all outside
/// (every term positive).
fn clamp_query(q: &[f64], mid: &[f64], upper: &[f64], mode: usize) -> Vec<f64> {
    match mode {
        1 => mid.to_vec(),
        2 => upper.iter().map(|u| u + 1.0).collect(),
        _ => q.to_vec(),
    }
}

type KernelOut = (Result<f64, usize>, u64);

fn run<F: FnOnce(&mut StepCounter) -> Result<f64, usize>>(f: F) -> KernelOut {
    let mut counter = StepCounter::new();
    let out = f(&mut counter);
    (out, counter.steps())
}

/// `chunked` must agree with `seq` on the dismissal decision, the trip
/// position, and the step count exactly; completed sums agree to
/// reassociation rounding.
fn assert_outcome_equiv(name: &str, seq: KernelOut, chunked: KernelOut) {
    let ((s, s_steps), (c, c_steps)) = (seq, chunked);
    match (s, c) {
        (Ok(a), Ok(b)) => {
            let tol = 1e-9 * (1.0 + a.abs());
            assert!((a - b).abs() <= tol, "{name}: sum {a} vs {b}");
        }
        (Err(i), Err(j)) => assert_eq!(i, j, "{name}: trip position"),
        (a, b) => panic!("{name}: dismissal disagrees: seq {a:?} chunked {b:?}"),
    }
    assert_eq!(s_steps, c_steps, "{name}: steps");
}

/// The simd backend is the same canonical order; everything is bitwise.
#[cfg(feature = "simd")]
fn assert_bit_identical(name: &str, chunked: KernelOut, simd: KernelOut) {
    let ((c, c_steps), (v, v_steps)) = (chunked, simd);
    match (c, v) {
        (Ok(a), Ok(b)) => assert_eq!(a.to_bits(), b.to_bits(), "{name}: {a} vs {b}"),
        (Err(i), Err(j)) => assert_eq!(i, j, "{name}: trip position"),
        (a, b) => panic!("{name}: dismissal disagrees: chunked {a:?} simd {b:?}"),
    }
    assert_eq!(c_steps, v_steps, "{name}: steps");
}

/// A deterministic permutation of `0..n` (any fixed gather order works;
/// the kernels only require a permutation).
fn permutation(n: usize) -> Vec<u32> {
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.reverse();
    if n > 2 {
        order.swap(0, n / 2);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn euclid_chunked_matches_seq(
        a_pool in pool(),
        b_pool in pool(),
        size_idx in 0usize..SIZES.len(),
        r_sel in 0usize..4,
        r_val in 0.0f64..40.0,
    ) {
        let n = SIZES[size_idx];
        let (a, b) = (&a_pool[..n], &b_pool[..n]);
        let r = pick_radius(r_sel, r_val);
        let seq = run(|c| kernels::seq::sq_dist_abandon(a, b, r, c));
        let chunked = run(|c| kernels::chunked::sq_dist_abandon(a, b, r, c));
        assert_outcome_equiv("euclid", seq, chunked);
        #[cfg(feature = "simd")]
        assert_bit_identical(
            "euclid",
            chunked,
            run(|c| kernels::simd::sq_dist_abandon(a, b, r, c)),
        );
    }

    #[test]
    fn split_euclid_chunked_matches_seq(
        a_pool in pool(),
        b_pool in pool(),
        size_idx in 0usize..SIZES.len(),
        shift_frac in 0.0f64..1.0,
        r_sel in 0usize..4,
        r_val in 0.0f64..40.0,
    ) {
        let n = SIZES[size_idx];
        let (a, base) = (&a_pool[..n], &b_pool[..n]);
        let r = pick_radius(r_sel, r_val);
        let shift = ((n as f64 * shift_frac) as usize).min(n.saturating_sub(1));
        let (head, tail) = base.split_at(shift);
        let seq = run(|c| kernels::seq::sq_dist_abandon_split(a, tail, head, r, c));
        let chunked = run(|c| kernels::chunked::sq_dist_abandon_split(a, tail, head, r, c));
        assert_outcome_equiv("split", seq, chunked);
        #[cfg(feature = "simd")]
        assert_bit_identical(
            "split",
            chunked,
            run(|c| kernels::simd::sq_dist_abandon_split(a, tail, head, r, c)),
        );
    }

    #[test]
    fn clamp_chunked_matches_seq(
        q_pool in pool(),
        mid_pool in pool(),
        size_idx in 0usize..SIZES.len(),
        mode in 0usize..3,
        r_sel in 0usize..4,
        r_val in 0.0f64..40.0,
    ) {
        let n = SIZES[size_idx];
        let mid = &mid_pool[..n];
        let upper: Vec<f64> = mid.iter().map(|x| x + 0.5).collect();
        let lower: Vec<f64> = mid.iter().map(|x| x - 0.5).collect();
        let q = clamp_query(&q_pool[..n], mid, &upper, mode);
        let r = pick_radius(r_sel, r_val);
        let seq = run(|c| kernels::seq::clamp_sq_abandon(&q, &upper, &lower, r, c));
        let chunked = run(|c| kernels::chunked::clamp_sq_abandon(&q, &upper, &lower, r, c));
        assert_outcome_equiv("clamp", seq, chunked);
        // All-inside inputs sum to exactly 0.0 in every backend: each
        // term is 0.0 and float zero-sums are association-free.
        if mode == 1 {
            prop_assert_eq!(chunked.0.map(f64::to_bits), Ok(0.0f64.to_bits()));
        }
        #[cfg(feature = "simd")]
        assert_bit_identical(
            "clamp",
            chunked,
            run(|c| kernels::simd::clamp_sq_abandon(&q, &upper, &lower, r, c)),
        );
    }

    #[test]
    fn ordered_clamp_chunked_matches_seq(
        q_pool in pool(),
        mid_pool in pool(),
        size_idx in 0usize..SIZES.len(),
        mode in 0usize..3,
        r_sel in 0usize..4,
        r_val in 0.0f64..40.0,
    ) {
        let n = SIZES[size_idx];
        let mid = &mid_pool[..n];
        let upper: Vec<f64> = mid.iter().map(|x| x + 0.5).collect();
        let lower: Vec<f64> = mid.iter().map(|x| x - 0.5).collect();
        let q = clamp_query(&q_pool[..n], mid, &upper, mode);
        let r = pick_radius(r_sel, r_val);
        let order = permutation(n);
        let seq =
            run(|c| kernels::seq::clamp_sq_abandon_ordered(&q, &upper, &lower, &order, r, c));
        let chunked =
            run(|c| kernels::chunked::clamp_sq_abandon_ordered(&q, &upper, &lower, &order, r, c));
        assert_outcome_equiv("ordered", seq, chunked);
        #[cfg(feature = "simd")]
        assert_bit_identical(
            "ordered",
            chunked,
            run(|c| kernels::simd::clamp_sq_abandon_ordered(&q, &upper, &lower, &order, r, c)),
        );
    }

    #[test]
    fn interval_gap_chunked_matches_seq(
        q_pool in pool(),
        mid_pool in pool(),
        size_idx in 0usize..SIZES.len(),
        mode in 0usize..3,
        init in 0.0f64..5.0,
        r_sel in 0usize..4,
        r_val in 0.0f64..40.0,
    ) {
        // Reuse the clamp setup: `q ± 0.25` plays the projection
        // envelope, overlapping the wedge envelope in all three regimes.
        let n = SIZES[size_idx];
        let mid = &mid_pool[..n];
        let upper: Vec<f64> = mid.iter().map(|x| x + 0.5).collect();
        let lower: Vec<f64> = mid.iter().map(|x| x - 0.5).collect();
        let q = clamp_query(&q_pool[..n], mid, &upper, mode);
        let proj_up: Vec<f64> = q.iter().map(|x| x + 0.25).collect();
        let proj_lo: Vec<f64> = q.iter().map(|x| x - 0.25).collect();
        let r = pick_radius(r_sel, r_val);
        let seq = run(|c| {
            kernels::seq::interval_gap_sq_abandon(init, &upper, &lower, &proj_up, &proj_lo, r, c)
        });
        let chunked = run(|c| {
            kernels::chunked::interval_gap_sq_abandon(init, &upper, &lower, &proj_up, &proj_lo, r, c)
        });
        assert_outcome_equiv("interval_gap", seq, chunked);
        #[cfg(feature = "simd")]
        assert_bit_identical(
            "interval_gap",
            chunked,
            run(|c| {
                kernels::simd::interval_gap_sq_abandon(
                    init, &upper, &lower, &proj_up, &proj_lo, r, c,
                )
            }),
        );
    }

    #[test]
    fn van_herk_sliding_matches_deque_bitwise(
        xs_pool in pool(),
        size_idx in 0usize..SIZES.len(),
        r in 0usize..70,
    ) {
        let xs = &xs_pool[..SIZES[size_idx]];
        let mut scratch = SlidingScratch::new();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        sliding_max_into(xs, r, &mut scratch, &mut a);
        sliding_max_into_seq(xs, r, &mut scratch, &mut b);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&a), bits(&b), "sliding max, r = {}", r);
        sliding_min_into(xs, r, &mut scratch, &mut a);
        sliding_min_into_seq(xs, r, &mut scratch, &mut b);
        prop_assert_eq!(bits(&a), bits(&b), "sliding min, r = {}", r);
    }
}

/// The engine alias must resolve to the canonical-order backend the
/// build selected: its results are bitwise those of `chunked` whether
/// or not the `simd` feature is on.
#[test]
fn engine_is_bitwise_chunked() {
    let n = 3 * LANES + 5;
    let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).sin() * 4.0).collect();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).cos() * 4.0).collect();
    for r in [f64::INFINITY, 8.0, 2.0, 0.5] {
        let engine = run(|c| kernels::engine::sq_dist_abandon(&a, &b, r, c));
        let chunked = run(|c| kernels::chunked::sq_dist_abandon(&a, &b, r, c));
        assert_eq!(engine.0.map(f64::to_bits), chunked.0.map(f64::to_bits));
        assert_eq!(engine.1, chunked.1);
    }
}

/// Early-abandon trip-point equivalence, stated directly: on a spike
/// series the chunked kernel abandons at exactly the element the scalar
/// loop abandons at — never earlier (that would charge fewer steps than
/// the scalar engine and skew abandon-depth observability) and never
/// later than the replayed block allows.
#[test]
fn trip_points_match_scalar_at_every_spike_position() {
    let n = 130;
    for spike in [0usize, 1, 7, 8, 9, 31, 32, 63, 64, 65, 127, 128, 129] {
        let mut a = vec![0.0f64; n];
        let b = vec![0.0f64; n];
        a[spike] = 100.0;
        let seq = run(|c| kernels::seq::sq_dist_abandon(&a, &b, 1.0, c));
        let chunked = run(|c| kernels::chunked::sq_dist_abandon(&a, &b, 1.0, c));
        assert_eq!(seq.0, Err(spike + 1));
        assert_eq!(chunked.0, Err(spike + 1), "spike at {spike}");
        assert_eq!(seq.1, chunked.1, "steps at spike {spike}");
    }
}
