//! Property and golden-value tests of the substrate crates: the FFT
//! stack against analytically known transforms, the VP-tree against
//! linear scans, clustering determinism, and the resampling/normalising
//! pipeline.

use proptest::prelude::*;
use rotind::cluster::linkage::{cluster_series, Linkage};
use rotind::fft::bluestein::bluestein;
use rotind::fft::fft::fft;
use rotind::fft::Complex;
use rotind::index::stream::StreamFilter;
use rotind::index::vptree::{BoundKind, VpTree};
use rotind::ts::normalize::z_normalize_lossy;
use rotind::ts::resample::resample_circular;
use rotind::ts::StepCounter;

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

// ---------------------------------------------------------------------
// FFT golden values
// ---------------------------------------------------------------------

#[test]
fn fft_golden_values() {
    // DFT([1, 0, 0, 0]) = [1, 1, 1, 1].
    let impulse: Vec<Complex> = [1.0, 0.0, 0.0, 0.0]
        .iter()
        .map(|&x| Complex::real(x))
        .collect();
    for z in fft(&impulse) {
        assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
    }
    // DFT([1, 1, 1, 1]) = [4, 0, 0, 0].
    let dc: Vec<Complex> = vec![Complex::ONE; 4];
    let spec = fft(&dc);
    assert!((spec[0].re - 4.0).abs() < 1e-12);
    for z in &spec[1..] {
        assert!(z.abs() < 1e-12);
    }
    // DFT([0,1,0,-1]) = [0, -2i, 0, 2i] (a pure sine at bin 1).
    let sine: Vec<Complex> = [0.0, 1.0, 0.0, -1.0]
        .iter()
        .map(|&x| Complex::real(x))
        .collect();
    let spec = fft(&sine);
    assert!(spec[0].abs() < 1e-12);
    assert!((spec[1].im + 2.0).abs() < 1e-12 && spec[1].re.abs() < 1e-12);
    assert!(spec[2].abs() < 1e-12);
    assert!((spec[3].im - 2.0).abs() < 1e-12);
    // Bluestein at n = 3: DFT([1, 2, 3]) = [6, -1.5 + 0.866i, -1.5 - 0.866i].
    let x: Vec<Complex> = [1.0, 2.0, 3.0].iter().map(|&v| Complex::real(v)).collect();
    let spec = bluestein(&x);
    assert!((spec[0].re - 6.0).abs() < 1e-9);
    assert!((spec[1].re + 1.5).abs() < 1e-9);
    assert!((spec[1].im - 0.8660254037844386).abs() < 1e-9);
    assert!((spec[2].im + 0.8660254037844386).abs() < 1e-9);
}

// ---------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------

fn points_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 3), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// VP-tree nearest neighbour equals the linear-scan oracle for
    /// arbitrary point sets (duplicates included).
    #[test]
    fn vptree_matches_linear_scan(points in points_strategy(), query in prop::collection::vec(-10.0f64..10.0, 3)) {
        let tree = VpTree::build(points.clone());
        let (best, _) = tree.search(
            BoundKind::MetricToPoint,
            |x| euclid(x, &query),
            |i, _bsf| euclid(&points[i], &query),
            f64::INFINITY,
        );
        let oracle = points
            .iter()
            .map(|p| euclid(p, &query))
            .fold(f64::INFINITY, f64::min);
        let (_, bd) = best.expect("non-empty point set");
        prop_assert!((bd - oracle).abs() < 1e-12);
    }

    /// Circular resampling back and forth returns close to the original
    /// for band-limited (smooth) series.
    #[test]
    fn circular_resample_roundtrip(phase in 0.0f64..6.0, cycles in 1usize..4) {
        let n = 64;
        let xs: Vec<f64> = (0..n)
            .map(|i| (cycles as f64 * std::f64::consts::TAU * i as f64 / n as f64 + phase).sin())
            .collect();
        let up = resample_circular(&xs, 4 * n).unwrap();
        let back = resample_circular(&up, n).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            prop_assert!((a - b).abs() < 0.02, "{a} vs {b}");
        }
    }

    /// z-normalisation is idempotent (up to FP) and shift/scale invariant.
    #[test]
    fn z_normalize_idempotent(xs in prop::collection::vec(-100.0f64..100.0, 4..64)) {
        let z1 = z_normalize_lossy(&xs);
        let z2 = z_normalize_lossy(&z1);
        for (a, b) in z1.iter().zip(&z2) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        let shifted: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        let zs = z_normalize_lossy(&shifted);
        for (a, b) in z1.iter().zip(&zs) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Clustering is deterministic and cutting yields exact partitions at
    /// every K.
    #[test]
    fn clustering_partitions(seed in 0u64..1000) {
        let m = 12;
        let series: Vec<Vec<f64>> = (0..m)
            .map(|k| {
                (0..8)
                    .map(|i| ((k as u64 * 31 + i as u64 * 7 + seed) % 17) as f64)
                    .collect()
            })
            .collect();
        let a = cluster_series(&series, Linkage::Average);
        let b = cluster_series(&series, Linkage::Average);
        prop_assert_eq!(a.merges().len(), b.merges().len());
        for (x, y) in a.merges().iter().zip(b.merges()) {
            prop_assert_eq!(x.left, y.left);
            prop_assert_eq!(x.right, y.right);
        }
        for k in 1..=m {
            let cut = a.cut(k);
            prop_assert_eq!(cut.len(), k);
            let mut all: Vec<usize> = cut.concat();
            all.sort_unstable();
            prop_assert_eq!(all, (0..m).collect::<Vec<_>>());
        }
    }

    /// The stream filter reports exactly the naive sliding-window matches.
    #[test]
    fn stream_filter_equals_naive(
        stream in prop::collection::vec(-3.0f64..3.0, 20..80),
        threshold in 0.5f64..4.0,
    ) {
        let patterns = vec![
            (0..8).map(|i| (i as f64 * 0.9).sin()).collect::<Vec<f64>>(),
            (0..8).map(|i| (i as f64 * 0.3).cos()).collect::<Vec<f64>>(),
        ];
        let mut filter = StreamFilter::new(
            patterns.clone(),
            vec![threshold, threshold],
            rotind::distance::Measure::Euclidean,
        )
        .unwrap();
        let fast = filter.scan(&stream, &mut StepCounter::new());
        let mut naive = Vec::new();
        for end in 7..stream.len() {
            let window = &stream[end - 7..=end];
            for (p, pat) in patterns.iter().enumerate() {
                if euclid(window, pat) <= threshold {
                    naive.push((p, end));
                }
            }
        }
        prop_assert_eq!(fast.len(), naive.len());
        for (m, (p, end)) in fast.iter().zip(&naive) {
            prop_assert_eq!(m.pattern, *p);
            prop_assert_eq!(m.end_position, *end);
        }
    }
}
