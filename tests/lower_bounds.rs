//! Property tests of every admissibility claim in the lower-bound
//! chain (DESIGN.md §6): Proposition 1, Proposition 2, the LCSS
//! envelope bound, the Fourier magnitude bound, the PAA projections and
//! the convolution trick.

use proptest::prelude::*;
use rotind::distance::dtw::{dtw, DtwParams};
use rotind::distance::euclidean::euclidean;
use rotind::distance::lcss::{lcss_distance, LcssParams};
use rotind::envelope::lb_keogh::{lb_keogh, lcss_distance_lower_bound};
use rotind::envelope::{Wedge, WedgeTree};
use rotind::fft::convolution::min_shift_euclidean;
use rotind::fft::lower_bound::fourier_lower_bound;
use rotind::index::reduced::{Paa, PaaWedgeSet};
use rotind::ts::rotate::{rotated, RotationMatrix};
use rotind::ts::StepCounter;

fn series_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-4.0f64..4.0, n)
}

fn rows_strategy(n: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::btree_set(0usize..n, 1..=n).prop_map(|s| s.into_iter().collect())
}

fn min_rotation_ed(q: &[f64], c: &[f64]) -> f64 {
    (0..c.len())
        .map(|s| euclidean(q, &rotated(c, s)))
        .fold(f64::INFINITY, f64::min)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Proposition 1: LB_Keogh lower-bounds ED to every wedge member.
    #[test]
    fn prop1_lb_keogh(
        base in series_strategy(16),
        q in series_strategy(16),
        rows in rows_strategy(16),
    ) {
        let matrix = RotationMatrix::full(&base).unwrap();
        let wedge = Wedge::from_rows(&matrix, &rows);
        let lb = lb_keogh(&q, &wedge, &mut StepCounter::new());
        for &row in &rows {
            let d = euclidean(&q, &matrix.row(row).to_vec());
            prop_assert!(lb <= d + 1e-9, "row {}: {} > {}", row, lb, d);
        }
    }

    /// Proposition 2: the band-widened wedge lower-bounds DTW.
    #[test]
    fn prop2_lb_keogh_dtw(
        base in series_strategy(14),
        q in series_strategy(14),
        rows in rows_strategy(14),
        band in 0usize..6,
    ) {
        let matrix = RotationMatrix::full(&base).unwrap();
        let wedge = Wedge::from_rows(&matrix, &rows).widened(band);
        let lb = lb_keogh(&q, &wedge, &mut StepCounter::new());
        for &row in &rows {
            let d = dtw(
                &q,
                &matrix.row(row).to_vec(),
                DtwParams::new(band),
                &mut StepCounter::new(),
            );
            prop_assert!(lb <= d + 1e-9, "row {}: {} > {}", row, lb, d);
        }
    }

    /// The LCSS envelope bound lower-bounds the LCSS distance form.
    #[test]
    fn lcss_envelope_bound(
        base in series_strategy(12),
        q in series_strategy(12),
        rows in rows_strategy(12),
        eps in 0.01f64..1.5,
        delta in 0usize..5,
    ) {
        let params = LcssParams::new(eps, delta);
        let matrix = RotationMatrix::full(&base).unwrap();
        let wedge = Wedge::from_rows(&matrix, &rows);
        let lb = lcss_distance_lower_bound(&q, &wedge, params, &mut StepCounter::new());
        for &row in &rows {
            let d = lcss_distance(&q, &matrix.row(row).to_vec(), params, &mut StepCounter::new());
            prop_assert!(lb <= d + 1e-9, "row {}: {} > {}", row, lb, d);
        }
    }

    /// LCSS bound edge: δ = 0 removes all temporal slack, so the
    /// matching envelope is the unwidened wedge — the bound must stay
    /// admissible against the δ = 0 distance for every ε, including
    /// ε = 0 (exact-value matching only).
    #[test]
    fn lcss_envelope_bound_delta_zero(
        base in series_strategy(12),
        q in series_strategy(12),
        rows in rows_strategy(12),
        eps in 0.0f64..1.5,
    ) {
        let params = LcssParams::new(eps, 0);
        let matrix = RotationMatrix::full(&base).unwrap();
        let wedge = Wedge::from_rows(&matrix, &rows);
        let lb = lcss_distance_lower_bound(&q, &wedge, params, &mut StepCounter::new());
        for &row in &rows {
            let d = lcss_distance(&q, &matrix.row(row).to_vec(), params, &mut StepCounter::new());
            prop_assert!(lb <= d + 1e-9, "row {}: {} > {}", row, lb, d);
        }
    }

    /// LCSS bound edge: ε wide enough to match any pair of samples. The
    /// true distance collapses to 0 (every position matches), so the
    /// bound must also report 0 — anything positive would be a false
    /// dismissal at radius 0.
    #[test]
    fn lcss_envelope_bound_huge_epsilon(
        base in series_strategy(12),
        q in series_strategy(12),
        rows in rows_strategy(12),
        delta in 0usize..5,
    ) {
        // Samples are drawn from (-4, 4), so ε = 16 covers every pair.
        let params = LcssParams::new(16.0, delta);
        let matrix = RotationMatrix::full(&base).unwrap();
        let wedge = Wedge::from_rows(&matrix, &rows);
        let lb = lcss_distance_lower_bound(&q, &wedge, params, &mut StepCounter::new());
        prop_assert_eq!(lb, 0.0, "all-matching epsilon must give a zero bound");
        for &row in &rows {
            let d = lcss_distance(&q, &matrix.row(row).to_vec(), params, &mut StepCounter::new());
            prop_assert_eq!(d, 0.0, "row {}: everything matches at this epsilon", row);
        }
    }

    /// The Fourier magnitude distance lower-bounds the min-rotation ED.
    #[test]
    fn fourier_bound(q in series_strategy(16), c in series_strategy(16)) {
        let lb = fourier_lower_bound(&q, &c, &mut StepCounter::new());
        let exact = min_rotation_ed(&q, &c);
        prop_assert!(lb <= exact + 1e-7, "{} > {}", lb, exact);
    }

    /// The convolution trick equals the brute-force min-shift distance.
    #[test]
    fn convolution_is_exact(q in series_strategy(20), c in series_strategy(20)) {
        let (fast, shift) = min_shift_euclidean(&q, &c);
        let brute = min_rotation_ed(&q, &c);
        prop_assert!((fast - brute).abs() < 1e-7);
        let at_shift = euclidean(&q, &rotated(&c, shift));
        prop_assert!((at_shift - fast).abs() < 1e-7);
    }

    /// The PAA wedge-set bound lower-bounds the rotation-invariant DTW
    /// distance for every cut size and dimensionality.
    #[test]
    fn paa_wedge_set_bound(
        base in series_strategy(16),
        q in series_strategy(16),
        band in 0usize..4,
        k in 1usize..17,
        d in 1usize..17,
    ) {
        let tree = WedgeTree::new(RotationMatrix::full(&base).unwrap(), band);
        let cut = tree.cut_nodes(k);
        let wedges: Vec<&Wedge> = cut.iter().map(|&node| tree.lb_wedge(node)).collect();
        let set = PaaWedgeSet::new(&wedges, d);
        let lb = set.lower_bound(&Paa::of(&q, d), &mut StepCounter::new());
        let exact = (0..base.len())
            .map(|s| {
                dtw(
                    &q,
                    &rotated(&base, s),
                    DtwParams::new(band),
                    &mut StepCounter::new(),
                )
            })
            .fold(f64::INFINITY, f64::min);
        prop_assert!(lb <= exact + 1e-9, "k={} d={}: {} > {}", k, d, lb, exact);
    }

    /// Envelope containment: every member stays within its wedge, and
    /// within every ancestor wedge of the hierarchy.
    #[test]
    fn hierarchy_containment(base in series_strategy(12), band in 0usize..4) {
        let tree = WedgeTree::new(RotationMatrix::full(&base).unwrap(), band);
        for node in 0..tree.dendrogram().num_nodes() {
            for leaf in tree.dendrogram().members(node) {
                let series = tree.leaf_series(leaf);
                prop_assert!(tree.wedge(node).contains(&series));
                prop_assert!(tree.lb_wedge(node).contains(&series));
            }
        }
    }

    /// DTW sanity chain: banded DTW is monotone in the band and never
    /// exceeds Euclidean distance.
    #[test]
    fn dtw_band_monotonicity(q in series_strategy(14), c in series_strategy(14)) {
        let ed = euclidean(&q, &c);
        let mut last = f64::INFINITY;
        for band in 0..6 {
            let d = dtw(&q, &c, DtwParams::new(band), &mut StepCounter::new());
            prop_assert!(d <= last + 1e-9);
            prop_assert!(d <= ed + 1e-9);
            last = d;
        }
        let d0 = dtw(&q, &c, DtwParams::new(0), &mut StepCounter::new());
        prop_assert!((d0 - ed).abs() < 1e-9, "R = 0 must equal ED");
    }
}
