//! The profiling layer's three contracts, end-to-end:
//!
//! 1. **Mergeability** — [`LogHistogram`] (and therefore
//!    [`MetricsRegistry::merge`]) is exactly associative and
//!    commutative, so per-thread metrics can be folded in any order.
//! 2. **Neutrality** — attaching a [`Profiler`] or threading an unset
//!    budget through the budget-generic scan changes nothing: same
//!    answer, same `num_steps`, same per-tier prune attribution, under
//!    every cascade configuration, sequential and parallel.
//! 3. **Budget semantics** — a tripped [`QueryBudget`] returns a typed
//!    [`Exhausted`] partial whose hits are genuine distances, with the
//!    reason and step spend filled in, sequentially and across a
//!    shared-budget parallel scan.

use std::time::Duration;

use proptest::prelude::*;
use rotind::distance::dtw::DtwParams;
use rotind::distance::measure::Measure;
use rotind::index::engine::{Invariance, RotationQuery};
use rotind::index::CascadeConfig;
use rotind::obs::{
    BudgetHook, CascadeTier, LogHistogram, ManualClock, MetricsRegistry, NoBudget,
    DEADLINE_POLL_STEPS,
};
use rotind::prelude::{
    BudgetOutcome, BudgetReason, NoopObserver, Profiler, QueryBudget, QueryTrace,
};
use rotind::ts::StepCounter;

fn series_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0f64..5.0, n)
}

fn db_strategy(n: usize, m: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(series_strategy(n), 1..=m)
}

/// Every configuration the engine can run under: the `ROTIND_CASCADE`
/// CI matrix plus the tuned default (mirrors `tests/cascade.rs`).
fn configs() -> Vec<(&'static str, CascadeConfig)> {
    let mut out = vec![("legacy", CascadeConfig::legacy())];
    for name in ["kim", "reduced", "keogh", "improved", "all"] {
        out.push((name, CascadeConfig::parse(name).unwrap()));
    }
    out
}

fn hist_of(samples: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &s in samples {
        h.observe(s);
    }
    h
}

// ---------------------------------------------------------------------
// 1. Histogram merge algebra
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn log_histogram_merge_is_commutative(
        a in prop::collection::vec(0u64..u64::MAX, 0..40),
        b in prop::collection::vec(0u64..u64::MAX, 0..40),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        // And merging equals observing the union stream directly.
        let mut union: Vec<u64> = a.clone();
        union.extend_from_slice(&b);
        prop_assert_eq!(&ab, &hist_of(&union));
    }

    #[test]
    fn log_histogram_merge_is_associative(
        a in prop::collection::vec(0u64..u64::MAX, 0..30),
        b in prop::collection::vec(0u64..u64::MAX, 0..30),
        c in prop::collection::vec(0u64..u64::MAX, 0..30),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn registry_merge_is_order_independent(
        a in prop::collection::vec(1u64..1_000_000, 1..20),
        b in prop::collection::vec(1u64..1_000_000, 1..20),
        count_a in 0u64..1000,
        count_b in 0u64..1000,
    ) {
        let make = |samples: &[u64], count: u64| {
            let mut r = MetricsRegistry::new();
            r.counter_add("rotind_test_total", count);
            r.log_histogram("rotind_test_latency_ns").merge(&hist_of(samples));
            r
        };
        let (ra, rb) = (make(&a, count_a), make(&b, count_b));
        let mut ab = ra.clone();
        ab.merge(&rb);
        let mut ba = rb.clone();
        ba.merge(&ra);
        // Rendered exposition is the registry's observable state.
        prop_assert_eq!(ab.render_prometheus(), ba.render_prometheus());
    }

    /// Quantiles are monotone non-decreasing in `q` over the whole real
    /// line, with the edge cases pinned: `q <= 0` is the exact min,
    /// `q >= 1` the exact max, NaN and the empty histogram are `None`.
    #[test]
    fn log_histogram_quantile_is_monotone_in_q(
        samples in prop::collection::vec(0u64..u64::MAX, 1..60),
        qs in prop::collection::vec(-0.5f64..1.5, 2..24),
    ) {
        let h = hist_of(&samples);
        let mut qs = qs;
        qs.sort_by(f64::total_cmp);
        let values: Vec<u64> = qs
            .iter()
            .map(|&q| h.quantile(q).expect("non-empty, non-NaN q"))
            .collect();
        for (pair, q) in values.windows(2).zip(qs.windows(2)) {
            prop_assert!(
                pair[0] <= pair[1],
                "quantile({}) = {} > quantile({}) = {}",
                q[0], pair[0], q[1], pair[1]
            );
        }
        prop_assert_eq!(h.quantile(0.0), samples.iter().min().copied());
        prop_assert_eq!(h.quantile(1.0), samples.iter().max().copied());
        prop_assert_eq!(h.quantile(f64::NAN), None);
        prop_assert_eq!(LogHistogram::new().quantile(0.5), None);
    }
}

// ---------------------------------------------------------------------
// 2. Profiler and budget-plumbing neutrality
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The budget-generic scan with no budget set, the profiler, and the
    /// plain path must agree on the answer, the step count, and the
    /// per-tier prune attribution — for every cascade configuration.
    #[test]
    fn profiler_and_unset_budget_are_neutral_sequential(
        query in series_strategy(18),
        db in db_strategy(18, 10),
        measure_is_dtw in (0u32..2).prop_map(|v| v == 1),
    ) {
        let measure = if measure_is_dtw {
            Measure::Dtw(DtwParams::new(2))
        } else {
            Measure::Euclidean
        };
        for (name, config) in configs() {
            let engine = RotationQuery::with_measure(&query, Invariance::Rotation, measure)
                .unwrap()
                .with_cascade(config);

            let mut plain_counter = StepCounter::new();
            let plain = engine.nearest_with_steps(&db, &mut plain_counter).unwrap();

            // Profiler attached (wall-clock reads, phase events).
            let mut profiler = Profiler::new();
            let mut prof_counter = StepCounter::new();
            let profiled = engine
                .nearest_observed(&db, &mut prof_counter, &mut profiler)
                .unwrap();

            // Budget plumbing engaged with nothing to trip: NoBudget and
            // a limitless QueryBudget must both stay bit-identical.
            let mut nb_counter = StepCounter::new();
            let via_nobudget = engine
                .k_nearest_budgeted(&db, 1, &mut nb_counter, &mut NoopObserver, &mut NoBudget)
                .unwrap();
            let mut qb_counter = StepCounter::new();
            let mut limitless = QueryBudget::new(None, None);
            let via_limitless = engine
                .k_nearest_budgeted(&db, 1, &mut qb_counter, &mut NoopObserver, &mut limitless)
                .unwrap();

            prop_assert_eq!(&plain, &profiled, "profiler changed the answer ({})", name);
            prop_assert_eq!(
                plain_counter.steps(), prof_counter.steps(),
                "profiler changed num_steps ({})", name
            );
            for (tag, outcome, counter) in [
                ("NoBudget", via_nobudget, &nb_counter),
                ("limitless QueryBudget", via_limitless, &qb_counter),
            ] {
                prop_assert!(outcome.is_complete(), "{} tripped ({})", tag, name);
                let hits = outcome.into_inner();
                prop_assert_eq!(hits.len(), 1);
                prop_assert_eq!(&hits[0], &plain, "{} changed the answer ({})", tag, name);
                prop_assert_eq!(
                    plain_counter.steps(), counter.steps(),
                    "{} changed num_steps ({})", tag, name
                );
            }

            // Prune attribution: the profiler's online tier accounting
            // must agree with QueryTrace's aggregate counters.
            let mut trace = QueryTrace::new(query.len());
            let mut trace_counter = StepCounter::new();
            engine
                .nearest_observed(&db, &mut trace_counter, &mut trace)
                .unwrap();
            prop_assert_eq!(trace_counter.steps(), plain_counter.steps());
            for tier in CascadeTier::ALL {
                let cost = &profiler.tier_costs()[tier.index()];
                prop_assert_eq!(
                    cost.tested, trace.tier_tested(tier),
                    "tested mismatch at {:?} ({})", tier, name
                );
                prop_assert_eq!(
                    cost.pruned, trace.tier_pruned(tier),
                    "pruned mismatch at {:?} ({})", tier, name
                );
            }
        }
    }

    /// Parallel: the profiler as a fork/join observer and an unset
    /// shared budget keep the 4-thread scan's answer identical to the
    /// sequential one for every cascade configuration.
    #[test]
    fn profiler_and_unset_budget_are_neutral_parallel(
        query in series_strategy(16),
        db in db_strategy(16, 10),
    ) {
        for (name, config) in configs() {
            let engine = RotationQuery::new(&query, Invariance::Rotation)
                .unwrap()
                .with_cascade(config);
            let sequential = engine.nearest(&db).unwrap();

            let mut profiler = Profiler::new();
            let mut counter = StepCounter::new();
            let (hit, report) = engine
                .nearest_parallel_observed(&db, 4, &mut counter, &mut profiler)
                .unwrap();
            prop_assert_eq!(&hit, &sequential, "profiled parallel diverged ({})", name);
            prop_assert!(report.threads >= 1);

            let mut budget_counter = StepCounter::new();
            let limitless = QueryBudget::new(None, None);
            let (outcome, _) = engine
                .nearest_parallel_budgeted(
                    &db, 4, &mut budget_counter, &mut NoopObserver, &limitless,
                )
                .unwrap();
            prop_assert!(outcome.is_complete(), "limitless budget tripped ({})", name);
            prop_assert_eq!(
                outcome.into_inner().as_ref(), Some(&sequential),
                "budgeted parallel diverged ({})", name
            );
        }
    }
}

// ---------------------------------------------------------------------
// 3. Budget exhaustion semantics
// ---------------------------------------------------------------------

fn workload(m: usize, n: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let db: Vec<Vec<f64>> = (0..m)
        .map(|k| {
            (0..n)
                .map(|i| ((i + 3 * k) as f64 * 0.21).sin() + 0.1 * k as f64)
                .collect()
        })
        .collect();
    let query = db[m / 2].iter().map(|v| v + 0.05).collect();
    (query, db)
}

#[test]
fn step_budget_trips_with_valid_partial() {
    let (query, db) = workload(40, 32);
    let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();

    let mut full_counter = StepCounter::new();
    let full = engine.nearest_with_steps(&db, &mut full_counter).unwrap();
    let limit = full_counter.steps() / 4;

    let mut counter = StepCounter::new();
    let mut budget = QueryBudget::max_steps(limit);
    let outcome = engine
        .k_nearest_budgeted(&db, 1, &mut counter, &mut NoopObserver, &mut budget)
        .unwrap();
    match outcome {
        BudgetOutcome::Complete(_) => panic!("a quarter-step budget must trip"),
        BudgetOutcome::Exhausted(ex) => {
            assert_eq!(ex.reason, BudgetReason::Steps);
            assert!(
                ex.steps_spent >= limit,
                "spend {} below the inclusive limit {limit}",
                ex.steps_spent
            );
            assert_eq!(ex.steps_spent, counter.steps());
            // The partial result is a genuine neighbor: its reported
            // distance must be the exact rotation-invariant distance.
            for hit in &ex.partial {
                let exact = engine.distance_to(&db[hit.index]).unwrap();
                assert!(
                    (hit.distance - exact).abs() < 1e-9,
                    "partial hit is not a real distance"
                );
            }
        }
    }
    // A roomy budget never trips and returns the full answer.
    let mut counter = StepCounter::new();
    let mut roomy = QueryBudget::max_steps(full_counter.steps() * 2);
    let outcome = engine
        .k_nearest_budgeted(&db, 1, &mut counter, &mut NoopObserver, &mut roomy)
        .unwrap();
    assert!(outcome.is_complete());
    assert_eq!(outcome.into_inner()[0], full);
}

#[test]
fn zero_deadline_trips_immediately() {
    let (query, db) = workload(20, 24);
    let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
    let mut counter = StepCounter::new();
    let mut budget = QueryBudget::deadline(Duration::ZERO);
    let outcome = engine
        .k_nearest_budgeted(&db, 1, &mut counter, &mut NoopObserver, &mut budget)
        .unwrap();
    match outcome {
        BudgetOutcome::Complete(_) => panic!("an already-expired deadline must trip"),
        BudgetOutcome::Exhausted(ex) => {
            assert_eq!(ex.reason, BudgetReason::Deadline);
            assert!(
                ex.partial.is_empty(),
                "no item was admitted before the first check"
            );
        }
    }
}

/// A [`BudgetHook`] that delegates to a clock-driven [`QueryBudget`]
/// but advances the [`ManualClock`] past the deadline once the scan
/// reaches `advance_at` steps — so the deadline trip point is a pure
/// function of step progress, never of scheduler timing.
struct AdvanceClockAt<'a> {
    inner: QueryBudget,
    clock: &'a ManualClock,
    advance_at: u64,
    advanced: bool,
}

impl BudgetHook for AdvanceClockAt<'_> {
    fn check(&mut self, steps_now: u64) -> bool {
        if !self.advanced && steps_now >= self.advance_at {
            self.clock.advance(Duration::from_secs(3600));
            self.advanced = true;
        }
        self.inner.check(steps_now)
    }

    fn trip_reason(&self) -> Option<BudgetReason> {
        self.inner.trip_reason()
    }
}

#[test]
fn manual_clock_deadline_trips_deterministically_mid_scan() {
    let (query, db) = workload(80, 32);
    let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
    let mut full_counter = StepCounter::new();
    let full = engine.nearest_with_steps(&db, &mut full_counter).unwrap();

    // Expire the deadline at one third of the full scan: the trip must
    // land within one poll window of that point, every run.
    let advance_at = full_counter.steps() / 3;
    let clock = ManualClock::new();
    let mut budget = AdvanceClockAt {
        inner: QueryBudget::with_clock(None, Some(Duration::from_secs(1)), &clock),
        clock: &clock,
        advance_at,
        advanced: false,
    };
    let mut counter = StepCounter::new();
    let outcome = engine
        .k_nearest_budgeted(&db, 1, &mut counter, &mut NoopObserver, &mut budget)
        .unwrap();
    match outcome {
        BudgetOutcome::Complete(_) => panic!("a mid-scan deadline expiry must trip"),
        BudgetOutcome::Exhausted(ex) => {
            assert_eq!(ex.reason, BudgetReason::Deadline);
            assert!(
                ex.steps_spent >= advance_at,
                "tripped at {} steps, before the clock advanced at {advance_at}",
                ex.steps_spent
            );
            // Amortized polling bounds the trip latency: at most one
            // poll window plus one dismissal boundary past the expiry.
            assert!(
                ex.steps_spent < full_counter.steps(),
                "deadline trip must cut the scan short"
            );
            assert_eq!(ex.steps_spent, counter.steps());
            // The partial is still a genuine prefix answer. At most one
            // candidate's wedge walk ran after the trip, so at most one
            // hit may carry a truncated-walk distance — an exact
            // distance at *some* rotation, an admissible upper bound on
            // the true rotation-invariant minimum. Every other hit is
            // exact.
            let mut truncated = 0;
            for hit in &ex.partial {
                let exact = engine.distance_to(&db[hit.index]).unwrap();
                assert!(
                    hit.distance >= exact - 1e-9,
                    "a partial hit must never understate its distance"
                );
                if (hit.distance - exact).abs() > 1e-9 {
                    truncated += 1;
                }
            }
            assert!(
                truncated <= 1,
                "only the tripped candidate's walk may be truncated, got {truncated}"
            );
        }
    }

    // Re-running with the same advance point reproduces the same trip:
    // the whole point of the injectable clock.
    let clock2 = ManualClock::new();
    let mut budget2 = AdvanceClockAt {
        inner: QueryBudget::with_clock(None, Some(Duration::from_secs(1)), &clock2),
        clock: &clock2,
        advance_at,
        advanced: false,
    };
    let mut counter2 = StepCounter::new();
    let outcome2 = engine
        .k_nearest_budgeted(&db, 1, &mut counter2, &mut NoopObserver, &mut budget2)
        .unwrap();
    match outcome2 {
        BudgetOutcome::Complete(_) => panic!("second run must trip too"),
        BudgetOutcome::Exhausted(ex) => assert_eq!(
            ex.steps_spent,
            counter.steps(),
            "step-driven deadline trips are exactly reproducible"
        ),
    }

    // An un-advanced clock never trips: the budgeted path returns the
    // full answer with the full step count (amortization must not have
    // changed the scan).
    let idle_clock = ManualClock::new();
    let mut idle = QueryBudget::with_clock(None, Some(Duration::from_secs(1)), &idle_clock);
    let mut idle_counter = StepCounter::new();
    let outcome = engine
        .k_nearest_budgeted(&db, 1, &mut idle_counter, &mut NoopObserver, &mut idle)
        .unwrap();
    assert!(outcome.is_complete());
    assert_eq!(outcome.into_inner()[0], full);
    assert_eq!(
        idle_counter.steps(),
        full_counter.steps(),
        "deadline polling must not change the scanned step count"
    );
    // And the amortization is real: the clock was read roughly once per
    // poll window, not once per dismissal boundary.
    let expected_polls = full_counter.steps() / DEADLINE_POLL_STEPS + 2;
    assert!(
        idle_clock.reads() <= expected_polls,
        "{} clock reads over {} steps breaks the {}-step amortization",
        idle_clock.reads(),
        full_counter.steps(),
        DEADLINE_POLL_STEPS
    );
}

#[test]
fn range_budget_returns_prefix_hits() {
    let (query, db) = workload(40, 32);
    let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
    let radius = engine.distance_to(&db[0]).unwrap() * 2.0 + 1.0;

    let mut full_counter = StepCounter::new();
    let all = engine.range(&db, radius).unwrap();
    engine
        .range_budgeted(
            &db,
            radius,
            &mut full_counter,
            &mut NoopObserver,
            &mut NoBudget,
        )
        .unwrap();
    assert!(!all.is_empty());

    let mut counter = StepCounter::new();
    let mut budget = QueryBudget::max_steps(full_counter.steps() / 3);
    let outcome = engine
        .range_budgeted(&db, radius, &mut counter, &mut NoopObserver, &mut budget)
        .unwrap();
    match outcome {
        BudgetOutcome::Complete(_) => panic!("a third-step budget must trip"),
        BudgetOutcome::Exhausted(ex) => {
            assert_eq!(ex.reason, BudgetReason::Steps);
            assert!(ex.partial.len() < all.len());
            // Dismissal-boundary checks scan items in database order,
            // so the partial is a prefix of the full hit list.
            for (got, want) in ex.partial.iter().zip(&all) {
                assert_eq!(got, want, "partial hits must be a prefix of the full scan");
            }
        }
    }
}

#[test]
fn parallel_shared_budget_trips_and_reports_spend() {
    let (query, db) = workload(60, 32);
    let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();

    let mut full_counter = StepCounter::new();
    let sequential = engine.nearest_with_steps(&db, &mut full_counter).unwrap();

    let tight = QueryBudget::max_steps(full_counter.steps() / 8);
    let mut counter = StepCounter::new();
    let (outcome, _) = engine
        .nearest_parallel_budgeted(&db, 4, &mut counter, &mut NoopObserver, &tight)
        .unwrap();
    match outcome {
        BudgetOutcome::Complete(_) => panic!("an eighth-step shared budget must trip"),
        BudgetOutcome::Exhausted(ex) => {
            assert_eq!(ex.reason, BudgetReason::Steps);
            assert!(ex.steps_spent > 0, "the pool must account spent steps");
            if let Some(hit) = ex.partial {
                let exact = engine.distance_to(&db[hit.index]).unwrap();
                assert!((hit.distance - exact).abs() < 1e-9);
            }
        }
    }

    let roomy = QueryBudget::max_steps(full_counter.steps() * 4);
    let mut counter = StepCounter::new();
    let (outcome, _) = engine
        .nearest_parallel_budgeted(&db, 4, &mut counter, &mut NoopObserver, &roomy)
        .unwrap();
    assert!(outcome.is_complete());
    assert_eq!(outcome.into_inner(), Some(sequential));
}

// ---------------------------------------------------------------------
// Profiler tree shape on a real query
// ---------------------------------------------------------------------

#[test]
fn profiler_builds_the_expected_span_tree() {
    let (query, db) = workload(30, 24);
    let engine = RotationQuery::new(&query, Invariance::Rotation).unwrap();
    let mut profiler = Profiler::new();
    let mut counter = StepCounter::new();
    engine
        .nearest_observed(&db, &mut counter, &mut profiler)
        .unwrap();

    let tree = profiler.tree();
    let root = tree.root("query").expect("a query span");
    assert_eq!(root.count(), 1);
    assert_eq!(
        root.total_steps(),
        counter.steps(),
        "the query span covers the whole scan"
    );
    let merge = root.child("wedge_merge").expect("a wedge_merge span");
    assert!(merge.count() >= 1);
    assert!(merge.total_steps() <= root.total_steps());

    assert_eq!(profiler.query_latency_ns().count(), 1);
    assert_eq!(profiler.query_steps().count(), 1);

    let chrome = tree.to_chrome_trace();
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("\"query\""));
    let folded = tree.to_folded();
    assert!(folded.contains("query;wedge_merge"));
}
