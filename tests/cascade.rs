//! The bound cascade's two contracts, tested end-to-end (DESIGN.md §12):
//! every tier is **admissible** against the exact rotation-invariant
//! distance, and — because every dismissal is strict — the cascaded scan
//! is **bit-identical** to the legacy single-bound scan for every
//! configuration, invariance mode and thread count.

use proptest::prelude::*;
use rotind::distance::dtw::{dtw, DtwParams};
use rotind::distance::euclidean::euclidean;
use rotind::distance::lcss::LcssParams;
use rotind::distance::measure::Measure;
use rotind::distance::rotation::search_database;
use rotind::envelope::lb_keogh::{
    lb_improved, lb_keogh, lb_keogh_reordered_early_abandon_at, lb_kim,
};
use rotind::envelope::Wedge;
use rotind::index::engine::{Invariance, RotationQuery};
use rotind::index::reduced::{Paa, PaaEnvelope};
use rotind::index::CascadeConfig;
use rotind::obs::{CascadeTier, QueryTrace};
use rotind::ts::rotate::{rotated, RotationMatrix};
use rotind::ts::StepCounter;

fn series_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0f64..5.0, n)
}

fn db_strategy(n: usize, m: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(series_strategy(n), 1..=m)
}

fn rows_strategy(n: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::btree_set(0usize..n, 1..=n).prop_map(|s| s.into_iter().collect())
}

fn measures() -> Vec<Measure> {
    vec![
        Measure::Euclidean,
        Measure::Dtw(DtwParams::new(2)),
        Measure::Lcss(LcssParams::new(0.5, 2)),
    ]
}

/// Every configuration the engine can run under: the `ROTIND_CASCADE`
/// CI matrix plus the tuned default.
fn configs() -> Vec<(&'static str, CascadeConfig)> {
    let mut out = vec![("legacy", CascadeConfig::legacy())];
    for name in ["kim", "reduced", "keogh", "improved", "all"] {
        out.push((name, CascadeConfig::parse(name).unwrap()));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tier 4 dominates tier 3 (its first pass) and still lower-bounds
    /// the banded DTW distance to every wedge member.
    #[test]
    fn lb_improved_dominates_lb_keogh_and_stays_admissible(
        base in series_strategy(14),
        q in series_strategy(14),
        rows in rows_strategy(14),
        band in 1usize..5,
    ) {
        let matrix = RotationMatrix::full(&base).unwrap();
        let plain = Wedge::from_rows(&matrix, &rows);
        let lb_wedge = plain.widened(band);
        let first = lb_keogh(&q, &lb_wedge, &mut StepCounter::new());
        let improved = lb_improved(&q, &plain, &lb_wedge, band, &mut StepCounter::new());
        prop_assert!(improved >= first - 1e-9, "{} < {}", improved, first);
        for &row in &rows {
            let d = dtw(
                &q,
                &matrix.row(row).to_vec(),
                DtwParams::new(band),
                &mut StepCounter::new(),
            );
            prop_assert!(improved <= d + 1e-9, "row {}: {} > {}", row, improved, d);
        }
    }

    /// Tier 1 lower-bounds ED through the plain wedge and banded DTW
    /// through the widened wedge.
    #[test]
    fn lb_kim_is_admissible(
        base in series_strategy(14),
        q in series_strategy(14),
        rows in rows_strategy(14),
        band in 0usize..5,
    ) {
        let matrix = RotationMatrix::full(&base).unwrap();
        let plain = Wedge::from_rows(&matrix, &rows);
        let widened = plain.widened(band);
        let kim_ed = lb_kim(&q, &plain, &mut StepCounter::new());
        let kim_dtw = lb_kim(&q, &widened, &mut StepCounter::new());
        for &row in &rows {
            let series = matrix.row(row).to_vec();
            let ed = euclidean(&q, &series);
            prop_assert!(kim_ed <= ed + 1e-9, "row {}: {} > {}", row, kim_ed, ed);
            let d = dtw(&q, &series, DtwParams::new(band), &mut StepCounter::new());
            prop_assert!(kim_dtw <= d + 1e-9, "row {}: {} > {}", row, kim_dtw, d);
        }
    }

    /// Tier 2 (PAA projections of the wedge envelope) lower-bounds ED
    /// through the plain wedge and banded DTW through the widened
    /// wedge, for every dimensionality.
    #[test]
    fn reduced_space_tier_is_admissible(
        base in series_strategy(14),
        q in series_strategy(14),
        rows in rows_strategy(14),
        band in 0usize..5,
        dims in 1usize..17,
    ) {
        let matrix = RotationMatrix::full(&base).unwrap();
        let plain = Wedge::from_rows(&matrix, &rows);
        let widened = plain.widened(band);
        let paa = Paa::of(&q, dims);
        let lb_ed = PaaEnvelope::of_wedge(&plain, dims).min_dist(&paa, &mut StepCounter::new());
        let lb_dtw =
            PaaEnvelope::of_wedge(&widened, dims).min_dist(&paa, &mut StepCounter::new());
        for &row in &rows {
            let series = matrix.row(row).to_vec();
            let ed = euclidean(&q, &series);
            prop_assert!(lb_ed <= ed + 1e-9, "row {}: {} > {}", row, lb_ed, ed);
            let d = dtw(&q, &series, DtwParams::new(band), &mut StepCounter::new());
            prop_assert!(lb_dtw <= d + 1e-9, "row {}: {} > {}", row, lb_dtw, d);
        }
    }

    /// Tier 3 reordering is a pure permutation of the accumulation: with
    /// an infinite threshold the reordered scan never abandons and
    /// returns the same bound as natural-order LB_Keogh.
    #[test]
    fn reordered_keogh_equals_natural_order(
        base in series_strategy(14),
        q in series_strategy(14),
        rows in rows_strategy(14),
        band in 0usize..5,
    ) {
        let matrix = RotationMatrix::full(&base).unwrap();
        let wedge = Wedge::from_rows(&matrix, &rows).widened(band);
        let natural = lb_keogh(&q, &wedge, &mut StepCounter::new());
        let reordered =
            lb_keogh_reordered_early_abandon_at(&q, &wedge, f64::INFINITY, &mut StepCounter::new())
                .expect("infinite threshold never abandons");
        prop_assert!((natural - reordered).abs() < 1e-9, "{} != {}", natural, reordered);
    }

    /// The headline guarantee: every cascade configuration — each CI
    /// single-tier rung, the tuned default and the legacy scan — returns
    /// the **same** neighbour (index, distance and reported rotation,
    /// compared exactly) for every measure and invariance mode, both
    /// sequentially and across thread counts; and that answer matches
    /// the brute-force oracle.
    #[test]
    fn every_cascade_config_is_bit_identical(
        query in series_strategy(16),
        db in db_strategy(16, 8),
        measure_idx in 0usize..3,
        invariance_idx in 0usize..4,
        max_shift in 0usize..8,
    ) {
        let measure = measures()[measure_idx];
        let invariance = match invariance_idx {
            0 => Invariance::Rotation,
            1 => Invariance::RotationMirror,
            2 => Invariance::RotationLimited { max_shift },
            _ => Invariance::RotationLimitedMirror { max_shift },
        };
        let legacy = RotationQuery::with_measure(&query, invariance, measure)
            .unwrap()
            .with_cascade(CascadeConfig::legacy())
            .nearest(&db)
            .unwrap();

        // `max_shift < 8 < n`, so the limited windows never saturate.
        let matrix = match invariance {
            Invariance::Rotation => RotationMatrix::full(&query).unwrap(),
            Invariance::RotationMirror => RotationMatrix::with_mirror(&query).unwrap(),
            Invariance::RotationLimited { max_shift } => {
                RotationMatrix::limited(&query, max_shift).unwrap()
            }
            Invariance::RotationLimitedMirror { max_shift } => {
                RotationMatrix::limited_with_mirror(&query, max_shift).unwrap()
            }
        };
        let oracle = search_database(&matrix, &db, measure, &mut StepCounter::new()).unwrap();
        prop_assert_eq!(legacy.index, oracle.index);
        prop_assert!((legacy.distance - oracle.distance).abs() < 1e-9);

        for (name, config) in configs() {
            let engine = RotationQuery::with_measure(&query, invariance, measure)
                .unwrap()
                .with_cascade(config);
            let hit = engine.nearest(&db).unwrap();
            prop_assert_eq!(&hit, &legacy, "config {} diverged sequentially", name);
            for threads in [1usize, 4] {
                let hit = engine.nearest_parallel(&db, threads).unwrap();
                prop_assert_eq!(
                    &hit, &legacy,
                    "config {} diverged at {} threads", name, threads
                );
            }
        }
    }
}

/// A small structured workload where pruning actually happens: shifted
/// sinusoids plus a query that is a rotation of one of them.
fn sine_db(m: usize, n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let db: Vec<Vec<f64>> = (0..m)
        .map(|k| {
            (0..n)
                .map(|i| ((i + 3 * k) as f64 * 0.3).sin() + 0.05 * (k as f64))
                .collect()
        })
        .collect();
    let query = rotated(&db[m / 2], n / 3);
    (db, query)
}

/// Every pruned wedge is attributed to exactly one cascade tier: under
/// ED and DTW the per-tier prune counts sum to the per-level prune
/// counts, for the tuned default and for every CI rung.
#[test]
fn tier_attribution_accounts_for_every_pruned_wedge() {
    let (db, query) = sine_db(32, 64);
    let measures: [Measure; 2] = [Measure::Euclidean, Measure::Dtw(DtwParams::new(5))];
    for measure in measures {
        for (name, config) in configs() {
            let engine = RotationQuery::with_measure(&query, Invariance::Rotation, measure)
                .unwrap()
                .with_cascade(config);
            let mut trace = QueryTrace::new(query.len());
            engine
                .nearest_observed(&db, &mut StepCounter::new(), &mut trace)
                .unwrap();
            let by_level: u64 = (0..trace.levels()).map(|l| trace.pruned(l)).sum();
            assert_eq!(
                trace.tier_pruned_total(),
                by_level,
                "{measure:?}/{name}: tier attribution does not cover every pruned wedge"
            );
            assert!(
                by_level > 0,
                "{measure:?}/{name}: workload produced no prunes — test is vacuous"
            );
        }
    }
}

/// LCSS keeps its own single envelope bound outside the cascade and
/// fires no tier events at all.
#[test]
fn lcss_stays_outside_the_cascade() {
    let (db, query) = sine_db(16, 48);
    let engine = RotationQuery::with_measure(
        &query,
        Invariance::Rotation,
        Measure::Lcss(LcssParams::new(0.5, 2)),
    )
    .unwrap()
    .with_cascade(CascadeConfig::all());
    let mut trace = QueryTrace::new(query.len());
    engine
        .nearest_observed(&db, &mut StepCounter::new(), &mut trace)
        .unwrap();
    for tier in CascadeTier::ALL {
        assert_eq!(trace.tier_tested(tier), 0, "{tier:?} fired under LCSS");
    }
}
