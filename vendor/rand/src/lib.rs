//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to the crates-io registry, so the
//! workspace vendors the *subset* of the `rand 0.9` API it actually
//! uses: [`RngCore`], [`Rng::random_range`], [`SeedableRng`] and
//! [`rngs::StdRng`]. The generator is xoshiro256** seeded through
//! SplitMix64 — high-quality, deterministic per seed, and entirely
//! self-contained. Streams differ from upstream `rand`, which only
//! shifts which synthetic specimens a seed produces; nothing in the
//! workspace depends on upstream byte-for-byte streams.

#![forbid(unsafe_code)]

/// The core of a random number generator: object-safe raw output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A scalar type with a uniform sampler. The single blanket
/// [`SampleRange`] impl below unifies `Range<T> → T` during inference,
/// matching upstream `rand`'s behaviour for unsuffixed literals.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(unused_comparisons)]
            fn sample_in<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let (lo128, hi128) = (lo as i128, hi as i128);
                let span = (hi128 - lo128 + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "empty range");
                (lo128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_uniform_float {
    ($($t:ty : $bits:expr),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo < hi, "empty range");
                // 53 (resp. 24) uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_uniform_float!(f64: 53, f32: 24);

/// A range that values can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value from `range` (half-open or inclusive).
    fn random_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample_single(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform boolean with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` convenience seed (SplitMix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** (Blackman & Vigna).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3]; // all-zero state is absorbing
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.random_range(0usize..=5);
            assert!(y <= 5);
            let f = rng.random_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let u = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn dyn_rng_core_object_safe() {
        let mut rng = StdRng::seed_from_u64(1);
        let dynref: &mut dyn RngCore = &mut rng;
        let v = dynref.random_range(-1.0f64..1.0);
        assert!((-1.0..1.0).contains(&v));
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }
}
