//! Offline stand-in for the `loom` permutation-testing crate.
//!
//! The build container has no crates-io access, so this crate provides
//! the subset of loom's API that rotind's concurrency model tests use,
//! backed by a real (if much simpler) interleaving explorer:
//!
//! * [`model`] runs a closure repeatedly under a **cooperative
//!   scheduler**. Exactly one model thread runs at a time; every
//!   instrumented operation (each atomic access, spawn, join and
//!   [`thread::yield_now`]) is a scheduling point where the scheduler
//!   may switch threads. The set of runnable threads at each point is
//!   a branching decision, and the explorer enumerates decision
//!   sequences depth-first — recording the choices taken, then
//!   backtracking to the deepest decision with an untried alternative —
//!   until the schedule tree is exhausted (or a safety cap is hit).
//! * [`sync::atomic`] atomics have **sequential-consistency
//!   semantics**: the `Ordering` argument is accepted for API
//!   compatibility but every access is executed `SeqCst` under the
//!   scheduler, so the explorer covers thread *interleavings*, not
//!   weak-memory reorderings. (Real loom also models the C11 weak
//!   memory orders; for the CAS-retry loops rotind checks, lost
//!   updates and stale reads are interleaving bugs and are visible at
//!   SeqCst.)
//! * Outside a [`model`] call the same types are transparent
//!   **passthroughs** to `std` — a crate compiled against these
//!   atomics (rotind's `loom-tests` feature) still runs its ordinary
//!   tests unchanged.
//!
//! Differences from real loom, beyond the memory model: no
//! partial-order reduction (the tree is enumerated naively, so keep
//! models to 2–3 threads and a handful of operations), no spurious
//! `compare_exchange_weak` failures, and no `UnsafeCell`/lazy-static
//! modelling. Exploration is capped at [`MAX_EXECUTIONS`] schedules as
//! a safety net; the models in-tree explore far fewer.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Hard cap on explored schedules per [`model`] call. A branching
/// factor of three threads over ~10 operations stays well below this;
/// the cap only guards against accidentally huge models.
pub const MAX_EXECUTIONS: usize = 50_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// May be chosen by the scheduler.
    Runnable,
    /// Waiting for the thread with this id to finish (a model `join`).
    Blocked(usize),
    /// Ran to completion.
    Finished,
}

/// One scheduling decision: which of the runnable threads ran, out of
/// how many candidates. `chosen + 1 < options` means an untried
/// alternative remains for backtracking.
#[derive(Debug, Clone, Copy)]
struct Decision {
    chosen: usize,
    options: usize,
}

struct ExecState {
    status: Vec<Status>,
    /// The one thread allowed to run right now.
    active: usize,
    /// Decision sequence replayed from the previous execution.
    prefix: Vec<usize>,
    /// Decisions actually taken this execution.
    decisions: Vec<Decision>,
    /// A model thread panicked: release every waiter so the execution
    /// can unwind instead of deadlocking.
    panicked: bool,
    /// All threads blocked with none runnable.
    deadlocked: bool,
}

struct Execution {
    state: Mutex<ExecState>,
    cond: Condvar,
    /// OS handles of spawned model threads, joined by the controller
    /// after the root closure returns.
    real: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    /// The execution this OS thread belongs to, and its model-thread id.
    /// `None` means "not inside a model": atomics pass through.
    static CONTEXT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

fn context() -> Option<(Arc<Execution>, usize)> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// Lock that survives poisoning: a panicking model thread must not
/// wedge the other threads' teardown.
fn lock(exec: &Execution) -> MutexGuard<'_, ExecState> {
    exec.state.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a>(exec: &'a Execution, guard: MutexGuard<'a, ExecState>) -> MutexGuard<'a, ExecState> {
    exec.cond.wait(guard).unwrap_or_else(|e| e.into_inner())
}

/// Pick the next thread to run. Replays the prefix while it lasts,
/// then defaults to the first runnable thread; every choice is
/// recorded so the controller can backtrack.
fn schedule_next(st: &mut ExecState) {
    let options: Vec<usize> = st
        .status
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, Status::Runnable))
        .map(|(i, _)| i)
        .collect();
    if options.is_empty() {
        if st.status.iter().any(|s| matches!(s, Status::Blocked(_))) {
            st.deadlocked = true;
            st.panicked = true; // release waiters so the run can end
        }
        return;
    }
    let di = st.decisions.len();
    let chosen = match st.prefix.get(di) {
        Some(&c) => c.min(options.len() - 1),
        None => 0,
    };
    st.decisions.push(Decision {
        chosen,
        options: options.len(),
    });
    st.active = options[chosen];
}

/// A scheduling point: offer the scheduler the chance to switch to any
/// other runnable thread, then block until this thread is scheduled
/// again. No-op outside a model.
pub(crate) fn yield_point() {
    let Some((exec, me)) = context() else { return };
    let mut st = lock(&exec);
    if st.panicked {
        return; // free-run so the execution can unwind
    }
    schedule_next(&mut st);
    exec.cond.notify_all();
    while st.active != me && !st.panicked {
        st = wait(&exec, st);
    }
}

/// Mark a model thread finished, wake its joiners, hand the schedule
/// to the next runnable thread.
fn finish(exec: &Execution, me: usize, panicked: bool) {
    let mut st = lock(exec);
    if let Some(slot) = st.status.get_mut(me) {
        *slot = Status::Finished;
    }
    if panicked {
        st.panicked = true;
    }
    for s in st.status.iter_mut() {
        if *s == Status::Blocked(me) {
            *s = Status::Runnable;
        }
    }
    schedule_next(&mut st);
    exec.cond.notify_all();
}

/// Model-checked threads.
pub mod thread {
    use super::*;

    /// Handle to a model (or, outside a model, plain OS) thread.
    pub struct JoinHandle<T> {
        model: Option<(Arc<Execution>, usize)>,
        real: Option<std::thread::JoinHandle<()>>,
        slot: Arc<Mutex<Option<std::thread::Result<T>>>>,
    }

    /// Spawn a thread. Inside a model the child becomes a new model
    /// thread that runs only when scheduled; outside it is a plain
    /// `std::thread::spawn`.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let slot: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
        let out = slot.clone();
        let Some((exec, _)) = context() else {
            let real = std::thread::spawn(move || {
                let r = catch_unwind(AssertUnwindSafe(f));
                *out.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            });
            return JoinHandle {
                model: None,
                real: Some(real),
                slot,
            };
        };
        let tid = {
            let mut st = lock(&exec);
            st.status.push(Status::Runnable);
            st.status.len() - 1
        };
        let child_exec = exec.clone();
        let real = std::thread::spawn(move || {
            CONTEXT.with(|c| *c.borrow_mut() = Some((child_exec.clone(), tid)));
            {
                // Wait to be scheduled for the first time.
                let mut st = lock(&child_exec);
                while st.active != tid && !st.panicked {
                    st = wait(&child_exec, st);
                }
            }
            let r = catch_unwind(AssertUnwindSafe(f));
            let panicked = r.is_err();
            *out.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            finish(&child_exec, tid, panicked);
        });
        exec.real
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(real);
        // Spawning is itself a scheduling point: the child may run
        // immediately or arbitrarily later.
        yield_point();
        JoinHandle {
            model: Some((exec, tid)),
            real: None,
            slot,
        }
    }

    /// A bare scheduling point, mirroring `std::thread::yield_now`.
    pub fn yield_now() {
        yield_point();
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish; returns `Err` with the panic
        /// payload if it panicked, like `std::thread::JoinHandle::join`.
        #[allow(clippy::missing_panics_doc)] // result slot is filled before finish()
        pub fn join(self) -> std::thread::Result<T> {
            match self.model {
                None => {
                    if let Some(real) = self.real {
                        let _ = real.join();
                    }
                }
                Some((exec, target)) => {
                    let me = context().map(|(_, id)| id);
                    let mut st = lock(&exec);
                    if let Some(me) = me {
                        if !st.panicked && !matches!(st.status.get(target), Some(Status::Finished))
                        {
                            if let Some(slot) = st.status.get_mut(me) {
                                *slot = Status::Blocked(target);
                            }
                            schedule_next(&mut st);
                            exec.cond.notify_all();
                            while matches!(st.status.get(me), Some(Status::Blocked(_)))
                                && !st.panicked
                            {
                                st = wait(&exec, st);
                            }
                        }
                        // Unblocked (target finished); wait to be scheduled.
                        while st.active != me && !st.panicked {
                            st = wait(&exec, st);
                        }
                    } else {
                        // Joining from outside the model (controller
                        // teardown): wait for the plain status flag.
                        while !matches!(st.status.get(target), Some(Status::Finished))
                            && !st.panicked
                        {
                            st = wait(&exec, st);
                        }
                    }
                }
            }
            self.slot
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("loom: joined thread left no result")
        }
    }
}

/// `std::sync` mirrors used by model code.
pub mod sync {
    pub use std::sync::Arc;

    /// Scheduler-instrumented atomics with SeqCst semantics.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        macro_rules! passthrough_atomic {
            ($(#[$meta:meta])* $name:ident, $inner:ident, $ty:ty) => {
                $(#[$meta])*
                #[derive(Debug, Default)]
                pub struct $name(std::sync::atomic::$inner);

                impl $name {
                    /// Create the atomic with an initial value.
                    pub fn new(v: $ty) -> Self {
                        Self(std::sync::atomic::$inner::new(v))
                    }

                    /// Scheduler-instrumented load (SeqCst under a model).
                    pub fn load(&self, _order: Ordering) -> $ty {
                        crate::yield_point();
                        self.0.load(Ordering::SeqCst)
                    }

                    /// Scheduler-instrumented store (SeqCst under a model).
                    pub fn store(&self, v: $ty, _order: Ordering) {
                        crate::yield_point();
                        self.0.store(v, Ordering::SeqCst)
                    }

                    /// Scheduler-instrumented swap (SeqCst under a model).
                    pub fn swap(&self, v: $ty, _order: Ordering) -> $ty {
                        crate::yield_point();
                        self.0.swap(v, Ordering::SeqCst)
                    }

                    /// Scheduler-instrumented compare-exchange.
                    pub fn compare_exchange(
                        &self,
                        current: $ty,
                        new: $ty,
                        _success: Ordering,
                        _failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        crate::yield_point();
                        self.0
                            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                    }

                    /// Like [`Self::compare_exchange`]; the stand-in
                    /// never fails spuriously, which only *shrinks* the
                    /// schedule space a retry loop generates.
                    pub fn compare_exchange_weak(
                        &self,
                        current: $ty,
                        new: $ty,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        self.compare_exchange(current, new, success, failure)
                    }

                    /// Consume the atomic, returning the value.
                    pub fn into_inner(self) -> $ty {
                        self.0.into_inner()
                    }
                }
            };
        }

        passthrough_atomic!(
            /// Model-checked `AtomicBool`.
            AtomicBool,
            AtomicBool,
            bool
        );
        passthrough_atomic!(
            /// Model-checked `AtomicU64`.
            AtomicU64,
            AtomicU64,
            u64
        );
        passthrough_atomic!(
            /// Model-checked `AtomicUsize`.
            AtomicUsize,
            AtomicUsize,
            usize
        );

        macro_rules! fetch_ops {
            ($name:ident, $ty:ty) => {
                impl $name {
                    /// Scheduler-instrumented fetch-add (wrapping, SeqCst
                    /// under a model).
                    pub fn fetch_add(&self, v: $ty, _order: Ordering) -> $ty {
                        crate::yield_point();
                        self.0.fetch_add(v, Ordering::SeqCst)
                    }

                    /// Scheduler-instrumented fetch-max (SeqCst under a
                    /// model).
                    pub fn fetch_max(&self, v: $ty, _order: Ordering) -> $ty {
                        crate::yield_point();
                        self.0.fetch_max(v, Ordering::SeqCst)
                    }
                }
            };
        }

        fetch_ops!(AtomicU64, u64);
        fetch_ops!(AtomicUsize, usize);
    }
}

/// Run `f` under the model scheduler, exploring thread interleavings
/// depth-first until the schedule tree is exhausted (or the
/// [`MAX_EXECUTIONS`] safety cap is reached).
///
/// Panics propagate out of `model` exactly as they surfaced inside the
/// failing execution, so `#[should_panic]` negative controls work: a
/// buggy protocol whose assertion fails under *some* interleaving makes
/// `model` panic on the first schedule that reaches it.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    for _ in 0..MAX_EXECUTIONS {
        let (decisions, panicked, deadlocked, payload) = run_once(f.clone(), prefix.clone());
        if deadlocked {
            panic!("loom model: deadlock — every live thread is blocked on a join");
        }
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
        if panicked {
            // A spawned model thread panicked and the closure never
            // joined it; surface the failure rather than losing it.
            panic!("loom model: a model thread panicked (join its handle for the payload)");
        }
        // Backtrack: deepest decision with an untried alternative.
        let back = decisions.iter().rposition(|d| d.chosen + 1 < d.options);
        match back {
            Some(i) => {
                prefix = decisions[..i].iter().map(|d| d.chosen).collect();
                prefix.push(decisions[i].chosen + 1);
            }
            None => return, // schedule tree fully explored
        }
    }
}

type RunOutcome = (
    Vec<Decision>,
    bool,
    bool,
    Option<Box<dyn Any + Send + 'static>>,
);

/// One execution of the closure under one decision prefix.
fn run_once(f: Arc<dyn Fn() + Send + Sync>, prefix: Vec<usize>) -> RunOutcome {
    let exec = Arc::new(Execution {
        state: Mutex::new(ExecState {
            status: vec![Status::Runnable],
            active: 0,
            prefix,
            decisions: Vec::new(),
            panicked: false,
            deadlocked: false,
        }),
        cond: Condvar::new(),
        real: Mutex::new(Vec::new()),
    });
    let root_exec = exec.clone();
    let root = std::thread::spawn(move || {
        CONTEXT.with(|c| *c.borrow_mut() = Some((root_exec.clone(), 0)));
        let r = catch_unwind(AssertUnwindSafe(|| f()));
        finish(&root_exec, 0, r.is_err());
        r
    });
    let root_result = root.join().unwrap_or_else(|_| {
        // The root OS thread itself died outside catch_unwind; treat it
        // as a root panic with an opaque payload.
        Err(Box::new("loom model: root thread died") as Box<dyn Any + Send>)
    });
    // Join every spawned model thread; children may spawn more, so
    // drain until the list stays empty.
    loop {
        let handles = std::mem::take(&mut *exec.real.lock().unwrap_or_else(|e| e.into_inner()));
        if handles.is_empty() {
            break;
        }
        for h in handles {
            let _ = h.join();
        }
    }
    let st = lock(&exec);
    (
        st.decisions.clone(),
        st.panicked,
        st.deadlocked,
        root_result.err(),
    )
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use super::sync::Arc;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::atomic::Ordering as StdOrdering;

    #[test]
    fn passthrough_outside_model() {
        let a = AtomicU64::new(1);
        assert_eq!(a.load(Ordering::SeqCst), 1);
        a.store(7, Ordering::Relaxed);
        assert_eq!(a.swap(9, Ordering::AcqRel), 7);
        assert_eq!(
            a.compare_exchange(9, 11, Ordering::SeqCst, Ordering::SeqCst),
            Ok(9)
        );
        assert_eq!(a.into_inner(), 11);
    }

    #[test]
    fn model_explores_more_than_one_schedule() {
        // Two threads each incrementing via load+store WILL lose an
        // update under some interleaving; count distinct outcomes over
        // the exploration to prove multiple schedules actually ran.
        let outcomes = std::sync::Arc::new(StdAtomicUsize::new(0));
        let seen_lost = std::sync::Arc::new(StdAtomicUsize::new(0));
        let o2 = outcomes.clone();
        let l2 = seen_lost.clone();
        super::model(move || {
            o2.fetch_add(1, StdOrdering::SeqCst);
            let v = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let v = v.clone();
                    super::thread::spawn(move || {
                        let cur = v.load(Ordering::SeqCst);
                        v.store(cur + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            if v.load(Ordering::SeqCst) == 1 {
                l2.fetch_add(1, StdOrdering::SeqCst);
            }
        });
        assert!(
            outcomes.load(StdOrdering::SeqCst) > 1,
            "only one schedule ran"
        );
        assert!(
            seen_lost.load(StdOrdering::SeqCst) > 0,
            "exploration never found the lost-update interleaving"
        );
    }

    #[test]
    fn cas_retry_loop_is_sound_in_every_schedule() {
        super::model(|| {
            let v = Arc::new(AtomicU64::new(u64::MAX));
            let handles: Vec<_> = [5u64, 3u64]
                .into_iter()
                .map(|mine| {
                    let v = v.clone();
                    super::thread::spawn(move || {
                        let mut cur = v.load(Ordering::Acquire);
                        loop {
                            if cur <= mine {
                                return;
                            }
                            match v.compare_exchange_weak(
                                cur,
                                mine,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            ) {
                                Ok(_) => return,
                                Err(seen) => cur = seen,
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(v.load(Ordering::SeqCst), 3, "CAS-min lost an update");
        });
    }

    #[test]
    #[should_panic(expected = "lost an update")]
    fn racy_read_modify_write_is_caught() {
        super::model(|| {
            let v = Arc::new(AtomicU64::new(u64::MAX));
            let handles: Vec<_> = [5u64, 3u64]
                .into_iter()
                .map(|mine| {
                    let v = v.clone();
                    super::thread::spawn(move || {
                        // BROKEN on purpose: unconditional store after a
                        // stale load, no CAS.
                        let cur = v.load(Ordering::SeqCst);
                        if mine < cur {
                            v.store(mine, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(v.load(Ordering::SeqCst), 3, "store/store lost an update");
        });
    }
}
