//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates-io access, so the workspace vendors
//! a minimal timing harness with criterion's API shape: [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `Bencher::iter` and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! warmed up, then timed over enough iterations to fill the group's
//! measurement window; mean/min wall-clock per iteration is printed as
//! one line. There are no statistical reports, plots or baselines —
//! numbers are indicative, while the `num_steps` metrics reported by the
//! `fig*` binaries remain the paper-faithful cost measure.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measures one benchmark body.
pub struct Bencher {
    warmup: u32,
    window: Duration,
    /// (iterations, total elapsed) recorded by the last `iter` call.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Time `f`, repeatedly, until the measurement window is filled.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            std::hint::black_box(f());
            iters += 1;
            if start.elapsed() >= self.window {
                break;
            }
        }
        self.result = Some((iters, start.elapsed()));
    }
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Anything usable as a benchmark identifier (strings or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group_name: String,
    sample_size: u32,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sample-count knob (kept for API compatibility; scales the window).
    pub fn sample_size(&mut self, n: u32) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement window for each benchmark in the group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.group_name, id.into_id());
        self.criterion.run_one(&full, self.window(), &mut f);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.group_name, id.into_id());
        self.criterion
            .run_one(&full, self.window(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}

    fn window(&self) -> Duration {
        // Cap the window by the nominal sample count (5 ms a sample) so
        // long criterion measurement times don't inflate wall time in
        // this stand-in.
        self.measurement_time
            .min(Duration::from_millis(5 * self.sample_size as u64))
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirror criterion's CLI shape loosely: a bare positional arg
        // filters benchmarks by substring; everything else is ignored.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            group_name: group_name.into(),
            sample_size: 100,
            measurement_time: default_window(),
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_id();
        self.run_one(&name, default_window(), &mut f);
        self
    }

    fn run_one(&mut self, name: &str, window: Duration, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warmup: 3,
            window,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((iters, elapsed)) => {
                let per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
                println!(
                    "{name:<48} {:>14} /iter ({iters} iters)",
                    fmt_nanos(per_iter)
                );
            }
            None => println!("{name:<48} [no measurement]"),
        }
    }
}

fn default_window() -> Duration {
    match std::env::var("CRITERION_MEASUREMENT_MS") {
        Ok(ms) => Duration::from_millis(ms.parse().unwrap_or(300)),
        Err(_) => Duration::from_millis(300),
    }
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion { filter: None };
        let mut ran = 0u64;
        c.run_one(
            "unit/tiny",
            Duration::from_millis(5),
            &mut |b: &mut Bencher| {
                b.iter(|| ran += 1);
            },
        );
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).into_id(), "f/32");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nope".into()),
        };
        let mut ran = false;
        c.run_one("unit/other", Duration::from_millis(5), &mut |b| {
            b.iter(|| ran = true);
        });
        assert!(!ran, "filtered benchmark must not run");
    }

    #[test]
    fn nanos_formatting() {
        assert_eq!(fmt_nanos(12.0), "12.0 ns");
        assert!(fmt_nanos(2_500.0).contains("µs"));
        assert!(fmt_nanos(3_000_000.0).contains("ms"));
    }
}
