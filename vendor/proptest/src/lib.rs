//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest 1.x API the workspace's property
//! tests use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`, range strategies, `prop::collection::{vec, btree_set}`,
//! [`ProptestConfig::with_cases`] and the `prop_assert*` macros.
//!
//! Semantics: each test runs `cases` iterations with inputs drawn from a
//! deterministic per-test RNG (seeded from the test name, perturbed by
//! `PROPTEST_SEED` if set). There is **no shrinking** — a failing case
//! panics with the standard assertion message, which is sufficient for
//! CI-style regression detection and keeps the stand-in dependency-free.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32, f64, f32);

    macro_rules! impl_range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_inclusive_strategy!(usize, u64, u32, u16, u8);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// A size specification: an exact length or a length range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of `size` values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` of roughly `size` distinct values drawn from `element`.
    /// When the element domain is smaller than the requested size, the
    /// set saturates at the reachable distinct values (at least one).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng).max(1);
            let mut set = BTreeSet::new();
            // Bounded draw budget: small domains saturate gracefully.
            for _ in 0..target.saturating_mul(16).max(32) {
                set.insert(self.element.generate(rng));
                if set.len() >= target {
                    break;
                }
            }
            set
        }
    }
}

pub mod test_runner {
    //! Per-test deterministic execution support used by [`proptest!`].

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration (only the `cases` knob is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` iterations.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Deterministic RNG for one named test: FNV-1a over the test name,
    /// perturbed by `PROPTEST_SEED` when present.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = seed.parse::<u64>() {
                hash = hash.wrapping_add(extra.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
        }
        StdRng::seed_from_u64(hash)
    }
}

/// Assert a condition inside a `proptest!` body (panics on failure;
/// this stand-in performs no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` iterations over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::rng_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    (@cfg($cfg:expr)) => {};
}

pub mod prelude {
    //! The customary glob import.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// `prop::collection::vec(...)`-style paths.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn series(n: usize) -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(-1.0f64..1.0, n)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_lengths_respected(xs in series(10), m in 2usize..5) {
            prop_assert_eq!(xs.len(), 10);
            prop_assert!(xs.iter().all(|x| (-1.0..1.0).contains(x)));
            prop_assert!((2..5).contains(&m));
        }

        #[test]
        fn btree_set_distinct(s in prop::collection::btree_set(0usize..8, 1..=8)) {
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.iter().all(|&x| x < 8));
        }

        #[test]
        fn prop_map_applies(v in (0usize..5).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 10);
        }
    }

    #[test]
    fn deterministic_reruns() {
        let mut a = crate::test_runner::rng_for("x");
        let mut b = crate::test_runner::rng_for("x");
        let s = series(6);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
